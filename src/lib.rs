//! # HypDB-rs
//!
//! A from-scratch Rust reproduction of *"Bias in OLAP Queries: Detection,
//! Explanation, and Removal"* (Salimi, Gehrke, Suciu — SIGMOD 2018).
//!
//! HypDB takes a group-by-average OLAP query over observational data and
//!
//! 1. **detects** whether the query is *biased* — whether its answer is a
//!    confounded estimate of the causal effect the analyst intended,
//! 2. **explains** the bias by ranking covariates and mediators by
//!    *responsibility* and ground-level value triples by *contribution*,
//! 3. **resolves** the bias by rewriting the query into an unbiased
//!    estimator of the average treatment effect (ATE) or the natural
//!    direct effect (NDE).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`exec`] — the deterministic parallel execution layer: scoped
//!   worker pool, per-chunk seed derivation, sharded caches,
//! * [`table`] — columnar categorical storage, contingency tables, cubes,
//!   and the [`Scan`](table::Scan) storage trait all kernels run on,
//! * [`store`] — the sharded columnar store: partitioned tables with
//!   per-shard parallel scan and streaming CSV ingest, byte-identical
//!   to the monolithic encoding,
//! * [`stats`] — entropy estimators, χ²/G tests, the MIT permutation test,
//! * [`graph`] — causal DAGs, d-separation, Bayesian-network sampling,
//! * [`causal`] — Markov-boundary discovery, the CD covariate-discovery
//!   algorithm, and the baseline structure learners (FGS, IAMB, HC),
//! * [`sql`] — the mini OLAP SQL dialect of the paper,
//! * [`core`] — the HypDB pipeline: detect / explain / resolve,
//! * [`serve`] — the concurrent HTTP serving front-end: shared
//!   `Arc<ShardedTable>` registry, bounded admission queue, report
//!   cache, and byte-reproducible `/analyze`–`/detect` endpoints,
//! * [`datasets`] — the paper's five datasets (real or faithfully
//!   simulated) plus the RandomData ground-truth generator.
//!
//! ## Quickstart
//!
//! ```
//! use hypdb::prelude::*;
//!
//! // A tiny observational dataset with a confounder Z -> {T, Y}.
//! let mut b = TableBuilder::new(["T", "Y", "Z"]);
//! for (t, y, z, copies) in [
//!     ("t1", "1", "a", 30u32), ("t1", "0", "a", 10),
//!     ("t0", "1", "a", 5),     ("t0", "0", "a", 5),
//!     ("t1", "1", "b", 5),     ("t1", "0", "b", 10),
//!     ("t0", "1", "b", 10),    ("t0", "0", "b", 40),
//! ] {
//!     for _ in 0..copies { b.push_row([t, y, z]).unwrap(); }
//! }
//! let table = b.finish();
//!
//! let query = QueryBuilder::new("T")
//!     .outcome("Y")
//!     .build(&table)
//!     .unwrap();
//! let report = HypDb::new(&table)
//!     .with_covariates(["Z"])
//!     .unwrap()
//!     .analyze(&query)
//!     .unwrap();
//! println!("{report}");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hypdb_causal as causal;
pub use hypdb_core as core;
pub use hypdb_datasets as datasets;
pub use hypdb_exec as exec;
pub use hypdb_graph as graph;
pub use hypdb_serve as serve;
pub use hypdb_sql as sql;
pub use hypdb_stats as stats;
pub use hypdb_store as store;
pub use hypdb_table as table;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use hypdb_causal::{
        CdConfig, CiConfig, CiOracle, CovariateDiscovery, IndependenceTestKind,
    };
    pub use hypdb_core::{
        AnalysisReport, AnalyzeRequest, BiasReport, DetectReport, EffectKind, HypDb, Query,
        QueryBuilder, RewriteResult,
    };
    pub use hypdb_datasets as datasets;
    pub use hypdb_serve::{Registry, ServeConfig, Server};
    pub use hypdb_sql::{parse_query, Statement};
    pub use hypdb_stats::TestOutcome;
    pub use hypdb_store::{read_csv_shards, ShardedTable, ShardedTableBuilder};
    pub use hypdb_table::{AttrId, Predicate, Scan, Table, TableBuilder};
}
