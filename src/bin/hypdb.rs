//! The `hypdb` command-line front end.
//!
//! ```sh
//! hypdb serve [--addr HOST:PORT] [--rows N]       # run the server
//! hypdb analyze --dataset D --sql 'SELECT …'      # offline report
//! hypdb analyze --dataset D --sql '…' --detect    # detection only
//! ```
//!
//! `serve` and `analyze` share the wire layer and the built-in dataset
//! registry, so for any request the offline `analyze` output is
//! **byte-identical** to the running server's `/analyze` body — the
//! property the CI smoke test diffs.

use hypdb::core::wire;
use hypdb::core::{HypDbConfig, OracleCache};
use hypdb::serve::{sig, OracleSnapshot, Registry, ServeConfig, Server};
use std::sync::Arc;

const USAGE: &str = "\
usage:
  hypdb serve [--addr HOST:PORT] [--rows N]
      Serve the built-in datasets over HTTP. Knobs: HYPDB_SERVE_ADDR,
      HYPDB_SERVE_WORKERS, HYPDB_SERVE_QUEUE, HYPDB_SERVE_MAX_BODY,
      HYPDB_SERVE_TIMEOUT_MS, HYPDB_SERVE_CACHE_BYTES (report-cache
      budget), HYPDB_SERVE_ROWS (dataset size), HYPDB_THREADS,
      HYPDB_SHARD_ROWS. Shuts down gracefully on SIGINT/SIGTERM or a
      `quit` line on stdin.
  hypdb analyze --dataset NAME --sql SQL
               [--treatment T] [--covariates A,B] [--seed N]
               [--detect] [--explain] [--pretty] [--rows N]
      Run the same analysis offline and print the wire response body
      (or, with --pretty, the human-readable report). --explain wraps
      the report with the planner's deterministic EXPLAIN document —
      the same bytes a served request with \"explain\": true returns.
      An oracle-work footer (scans, cache hits, batched statements)
      goes to stderr. HYPDB_TRACE=<ms> dumps the span tree of any run
      at least that slow to stderr (0 = always).
";

fn fail(msg: &str) -> ! {
    eprintln!("hypdb: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Dataset size for the built-in registry: `--rows`, else
/// `HYPDB_SERVE_ROWS`, else 2000 (small enough for sub-second smoke
/// tests, large enough for stable discovery).
fn builtin_rows(flag: Option<usize>) -> usize {
    flag.or_else(|| {
        std::env::var("HYPDB_SERVE_ROWS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
    .unwrap_or(2000)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("--help" | "-h" | "help") => print!("{USAGE}"),
        Some(other) => fail(&format!("unknown command `{other}`")),
        None => fail("missing command"),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
}

fn cmd_serve(args: &[String]) {
    let mut cfg = ServeConfig::from_env();
    let mut rows_flag = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = take_value(args, &mut i, "--addr").to_string(),
            "--rows" => {
                rows_flag = Some(
                    take_value(args, &mut i, "--rows")
                        .parse()
                        .unwrap_or_else(|_| fail("--rows needs an integer")),
                )
            }
            other => fail(&format!("unknown serve flag `{other}`")),
        }
        i += 1;
    }

    let rows = builtin_rows(rows_flag);
    eprintln!("loading built-in datasets ({rows} rows each)…");
    let registry = Registry::builtin(rows);
    for info in registry.infos() {
        eprintln!(
            "  {:<10} {:>7} rows × {:>3} attrs, {} shard(s)",
            info.name,
            info.rows,
            info.attrs.len(),
            info.shards
        );
    }

    sig::install();
    let workers = cfg.workers;
    let handle = match Server::start(cfg, registry) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hypdb: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "hypdb-serve listening on http://{} ({} worker(s)) — \
         POST /analyze | POST /detect | GET /datasets | /healthz | /metrics",
        handle.addr(),
        workers
    );

    // `quit` on stdin also shuts down (useful without a signal-capable
    // shell); plain EOF does **not**, so running detached with stdin on
    // /dev/null keeps serving.
    std::thread::spawn(|| {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) if matches!(line.trim(), "quit" | "exit" | "shutdown") => {
                    sig::request_shutdown();
                    return;
                }
                Ok(_) => {}
            }
        }
    });

    while !sig::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining in-flight requests…");
    let metrics = handle.shutdown();
    eprintln!(
        "drained. served {} request(s), cache {} hit(s) / {} miss(es), {} rejected",
        metrics.requests, metrics.cache_hits, metrics.cache_misses, metrics.rejected
    );
}

fn cmd_analyze(args: &[String]) {
    let mut dataset: Option<String> = None;
    let mut sql: Option<String> = None;
    let mut req_treatment: Option<String> = None;
    let mut covariates: Option<Vec<String>> = None;
    let mut seed: Option<u64> = None;
    let mut rows_flag: Option<usize> = None;
    let mut detect = false;
    let mut explain = false;
    let mut pretty = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => dataset = Some(take_value(args, &mut i, "--dataset").to_string()),
            "--sql" => sql = Some(take_value(args, &mut i, "--sql").to_string()),
            "--treatment" => {
                req_treatment = Some(take_value(args, &mut i, "--treatment").to_string())
            }
            "--covariates" => {
                covariates = Some(
                    take_value(args, &mut i, "--covariates")
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--seed" => {
                seed = Some(
                    take_value(args, &mut i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed needs an integer")),
                )
            }
            "--rows" => {
                rows_flag = Some(
                    take_value(args, &mut i, "--rows")
                        .parse()
                        .unwrap_or_else(|_| fail("--rows needs an integer")),
                )
            }
            "--detect" => detect = true,
            "--explain" => explain = true,
            "--pretty" => pretty = true,
            other => fail(&format!("unknown analyze flag `{other}`")),
        }
        i += 1;
    }
    let dataset = dataset.unwrap_or_else(|| fail("analyze needs --dataset"));
    let sql = sql.unwrap_or_else(|| fail("analyze needs --sql"));

    // Build only the dataset being analyzed (sharded at the ambient
    // shard size, exactly as the server registers it).
    let Some(mono) = Registry::builtin_dataset(&dataset, builtin_rows(rows_flag)) else {
        eprintln!(
            "hypdb: unknown dataset `{dataset}` (available: {:?})",
            Registry::BUILTIN_NAMES
        );
        std::process::exit(1);
    };
    let mut registry = Registry::new();
    registry.insert(&dataset, &mono);
    let table = registry.get(&dataset).expect("just inserted");

    if detect && explain {
        fail("--explain applies to the analyze lane, not --detect");
    }
    let mut req = wire::AnalyzeRequest::new(dataset, sql);
    req.treatment = req_treatment;
    req.covariates = covariates;
    req.seed = seed;
    req.explain = explain;
    let base = HypDbConfig::default();

    // One oracle cache for the run, so the discovery work counters
    // (scans, cache hits, batching) can be reported afterwards.
    let cache = Arc::new(OracleCache::new());
    let tick = hypdb_obs::Tick::now();
    let traced = hypdb_obs::trace_threshold().map(|_| {
        // Explain-capable when --explain is set, so the explain sink and
        // the slow-run span dump share one tracer.
        if explain {
            hypdb_obs::Tracer::with_explain()
        } else {
            hypdb_obs::Tracer::new()
        }
    });
    let compute = || {
        if detect {
            wire::detect_cached(&*table, &req, &base, Some(&cache)).map(|r| wire::detect_body(&r))
        } else if explain {
            wire::analyze_explained(&*table, &req, &base, Some(&cache))
                .map(|(r, e)| wire::explain_body(&r, &e))
        } else if pretty {
            wire::analyze_cached(&*table, &req, &base, Some(&cache)).map(|r| r.to_string())
        } else {
            wire::analyze_cached(&*table, &req, &base, Some(&cache)).map(|r| wire::report_body(&r))
        }
    };
    let outcome = match &traced {
        Some(tracer) => {
            let out = hypdb_obs::with_request(tracer, compute);
            hypdb_obs::maybe_dump("analyze", tick.elapsed(), &tracer.finish());
            out
        }
        None => compute(),
    };
    match outcome {
        Ok(body) => {
            println!("{body}");
            // The oracle-work footer goes to stderr: stdout stays
            // byte-identical to the server's response body (the CI
            // smoke test diffs the two). It renders the same snapshot
            // the server's `/metrics` oracle section renders.
            eprintln!("{}", OracleSnapshot::from_cache(&cache).footer());
        }
        Err(e) => {
            eprintln!("hypdb: {e}");
            std::process::exit(1);
        }
    }
}
