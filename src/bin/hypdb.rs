//! The `hypdb` command-line front end.
//!
//! ```sh
//! hypdb serve [--addr HOST:PORT] [--rows N] [--journal PATH]  # run the server
//! hypdb analyze --dataset D --sql 'SELECT …'      # offline report
//! hypdb analyze --dataset D --sql '…' --detect    # detection only
//! hypdb replay journal.jsonl [--addr HOST:PORT]   # re-issue a journal
//! ```
//!
//! `serve` and `analyze` share the wire layer and the built-in dataset
//! registry, so for any request the offline `analyze` output is
//! **byte-identical** to the running server's `/analyze` body — the
//! property the CI smoke test diffs. `replay` closes the loop: a
//! journal captured with `--journal` (or `HYPDB_JOURNAL`) is re-issued
//! and every response body is diffed against its recorded fingerprint.

use hypdb::core::wire;
use hypdb::core::{HypDbConfig, OracleCache};
use hypdb::serve::{replay, sig, OracleSnapshot, Registry, ServeConfig, Server};
use std::sync::Arc;

const USAGE: &str = "\
usage:
  hypdb serve [--addr HOST:PORT] [--rows N] [--journal PATH]
              [--debug-traces N]
      Serve the built-in datasets over HTTP. Knobs: HYPDB_SERVE_ADDR,
      HYPDB_SERVE_WORKERS, HYPDB_SERVE_QUEUE, HYPDB_SERVE_MAX_BODY,
      HYPDB_SERVE_TIMEOUT_MS, HYPDB_SERVE_CACHE_BYTES (report-cache
      budget), HYPDB_SERVE_ROWS (dataset size), HYPDB_THREADS,
      HYPDB_SHARD_ROWS. Flight recorder: --journal / HYPDB_JOURNAL
      writes one hypdb-journal/v1 JSONL record per request;
      --debug-traces / HYPDB_DEBUG_TRACES sizes the retained-trace
      ring behind GET /debug/traces (default 16, 0 disables). Shuts
      down gracefully on SIGINT/SIGTERM or a `quit` line on stdin.
  hypdb analyze --dataset NAME --sql SQL
               [--treatment T] [--covariates A,B] [--seed N]
               [--detect] [--explain] [--pretty] [--rows N]
      Run the same analysis offline and print the wire response body
      (or, with --pretty, the human-readable report). --explain wraps
      the report with the planner's deterministic EXPLAIN document —
      the same bytes a served request with \"explain\": true returns.
      An oracle-work footer (scans, cache hits, batched statements)
      goes to stderr. HYPDB_TRACE=<ms> dumps the span tree of any run
      at least that slow to stderr (0 = always).
  hypdb replay JOURNAL [--addr HOST:PORT] [--concurrency C]
               [--speed X | --max-rate] [--rows N]
      Re-issue the report requests recorded in a hypdb-journal/v1 file
      and verify byte-identical response bodies (FNV-1a fingerprints).
      With --addr the requests go to a running server; without it a
      fresh in-process server over the built-in datasets (--rows, as
      recorded) is booted on an ephemeral port. --speed X paces
      requests at X× the recorded spacing; --max-rate (default)
      replays as fast as --concurrency (default 4) allows. Prints a
      latency/throughput JSON summary to stdout and exits nonzero on
      any body mismatch.
";

fn fail(msg: &str) -> ! {
    eprintln!("hypdb: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Dataset size for the built-in registry: `--rows`, else
/// `HYPDB_SERVE_ROWS`, else 2000 (small enough for sub-second smoke
/// tests, large enough for stable discovery).
fn builtin_rows(flag: Option<usize>) -> usize {
    flag.or_else(|| {
        std::env::var("HYPDB_SERVE_ROWS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
    .unwrap_or(2000)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help" | "-h" | "help") => print!("{USAGE}"),
        Some(other) => fail(&format!("unknown command `{other}`")),
        None => fail("missing command"),
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
}

fn cmd_serve(args: &[String]) {
    let mut cfg = ServeConfig::from_env();
    let mut rows_flag = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = take_value(args, &mut i, "--addr").to_string(),
            "--rows" => {
                rows_flag = Some(
                    take_value(args, &mut i, "--rows")
                        .parse()
                        .unwrap_or_else(|_| fail("--rows needs an integer")),
                )
            }
            "--journal" => cfg.journal = Some(take_value(args, &mut i, "--journal").to_string()),
            "--debug-traces" => {
                cfg.debug_traces = take_value(args, &mut i, "--debug-traces")
                    .parse()
                    .unwrap_or_else(|_| fail("--debug-traces needs an integer"))
            }
            other => fail(&format!("unknown serve flag `{other}`")),
        }
        i += 1;
    }

    let rows = builtin_rows(rows_flag);
    eprintln!("loading built-in datasets ({rows} rows each)…");
    let registry = Registry::builtin(rows);
    for info in registry.infos() {
        eprintln!(
            "  {:<10} {:>7} rows × {:>3} attrs, {} shard(s)",
            info.name,
            info.rows,
            info.attrs.len(),
            info.shards
        );
    }

    sig::install();
    let workers = cfg.workers;
    let handle = match Server::start(cfg, registry) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hypdb: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "hypdb-serve listening on http://{} ({} worker(s)) — \
         POST /analyze | POST /detect | GET /datasets | /healthz | /metrics | \
         /debug/traces | /debug/requests | /debug/config",
        handle.addr(),
        workers
    );

    // `quit` on stdin also shuts down (useful without a signal-capable
    // shell); plain EOF does **not**, so running detached with stdin on
    // /dev/null keeps serving.
    std::thread::spawn(|| {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) if matches!(line.trim(), "quit" | "exit" | "shutdown") => {
                    sig::request_shutdown();
                    return;
                }
                Ok(_) => {}
            }
        }
    });

    while !sig::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining in-flight requests…");
    let metrics = handle.shutdown();
    eprintln!(
        "drained. served {} request(s), cache {} hit(s) / {} miss(es), {} rejected",
        metrics.requests, metrics.cache_hits, metrics.cache_misses, metrics.rejected
    );
}

fn cmd_replay(args: &[String]) {
    let mut journal_path: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut concurrency: usize = 4;
    let mut pace = replay::Pace::MaxRate;
    let mut rows_flag: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr").to_string()),
            "--concurrency" => {
                concurrency = take_value(args, &mut i, "--concurrency")
                    .parse()
                    .unwrap_or_else(|_| fail("--concurrency needs an integer"))
            }
            "--speed" => {
                pace = replay::Pace::Speed(
                    take_value(args, &mut i, "--speed")
                        .parse()
                        .unwrap_or_else(|_| fail("--speed needs a number")),
                )
            }
            "--max-rate" => pace = replay::Pace::MaxRate,
            "--rows" => {
                rows_flag = Some(
                    take_value(args, &mut i, "--rows")
                        .parse()
                        .unwrap_or_else(|_| fail("--rows needs an integer")),
                )
            }
            other if other.starts_with("--") => fail(&format!("unknown replay flag `{other}`")),
            other if journal_path.is_none() => journal_path = Some(other.to_string()),
            other => fail(&format!("unexpected replay argument `{other}`")),
        }
        i += 1;
    }
    let journal_path = journal_path.unwrap_or_else(|| fail("replay needs a journal path"));
    let text = match std::fs::read_to_string(&journal_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hypdb: cannot read journal `{journal_path}`: {e}");
            std::process::exit(1);
        }
    };
    let parsed = replay::parse_journal(&text);
    eprintln!(
        "parsed {} journal line(s): {} replayable, {} skipped",
        parsed.lines,
        parsed.items.len(),
        parsed.skipped
    );

    // A given --addr targets a running server; otherwise boot a fresh
    // in-process server over the built-in datasets on an ephemeral
    // port, with the flight recorder off so the replay run measures
    // the same serving path the recording did (minus recording cost).
    let (outcome, handle) = match addr {
        Some(addr) => {
            let addr = addr
                .parse()
                .unwrap_or_else(|_| fail("--addr needs HOST:PORT"));
            (replay::replay(addr, &parsed, concurrency, pace), None)
        }
        None => {
            let rows = builtin_rows(rows_flag);
            eprintln!("booting in-process server ({rows} rows per dataset)…");
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                journal: None,
                debug_traces: 0,
                ..ServeConfig::from_env()
            };
            let handle = match Server::start(cfg, Registry::builtin(rows)) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("hypdb: cannot start in-process server: {e}");
                    std::process::exit(1);
                }
            };
            let addr = handle.addr();
            (
                replay::replay(addr, &parsed, concurrency, pace),
                Some(handle),
            )
        }
    };
    if let Some(handle) = handle {
        handle.shutdown();
    }
    println!("{}", outcome.to_json());
    if outcome.passed() {
        eprintln!(
            "replay PASS: {} request(s) reproduced byte-identical bodies \
             ({:.1} req/s, p50 {:.3} ms)",
            outcome.replayed,
            outcome.requests_per_second,
            outcome.latency.0 * 1e3
        );
    } else {
        eprintln!(
            "replay FAIL: {} mismatch(es), {} transport error(s) out of {} replayed",
            outcome.mismatches.len(),
            outcome.errors,
            outcome.replayed
        );
        std::process::exit(1);
    }
}

fn cmd_analyze(args: &[String]) {
    let mut dataset: Option<String> = None;
    let mut sql: Option<String> = None;
    let mut req_treatment: Option<String> = None;
    let mut covariates: Option<Vec<String>> = None;
    let mut seed: Option<u64> = None;
    let mut rows_flag: Option<usize> = None;
    let mut detect = false;
    let mut explain = false;
    let mut pretty = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => dataset = Some(take_value(args, &mut i, "--dataset").to_string()),
            "--sql" => sql = Some(take_value(args, &mut i, "--sql").to_string()),
            "--treatment" => {
                req_treatment = Some(take_value(args, &mut i, "--treatment").to_string())
            }
            "--covariates" => {
                covariates = Some(
                    take_value(args, &mut i, "--covariates")
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--seed" => {
                seed = Some(
                    take_value(args, &mut i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed needs an integer")),
                )
            }
            "--rows" => {
                rows_flag = Some(
                    take_value(args, &mut i, "--rows")
                        .parse()
                        .unwrap_or_else(|_| fail("--rows needs an integer")),
                )
            }
            "--detect" => detect = true,
            "--explain" => explain = true,
            "--pretty" => pretty = true,
            other => fail(&format!("unknown analyze flag `{other}`")),
        }
        i += 1;
    }
    let dataset = dataset.unwrap_or_else(|| fail("analyze needs --dataset"));
    let sql = sql.unwrap_or_else(|| fail("analyze needs --sql"));

    // Build only the dataset being analyzed (sharded at the ambient
    // shard size, exactly as the server registers it).
    let Some(mono) = Registry::builtin_dataset(&dataset, builtin_rows(rows_flag)) else {
        eprintln!(
            "hypdb: unknown dataset `{dataset}` (available: {:?})",
            Registry::BUILTIN_NAMES
        );
        std::process::exit(1);
    };
    let mut registry = Registry::new();
    registry.insert(&dataset, &mono);
    let table = registry.get(&dataset).expect("just inserted");

    if detect && explain {
        fail("--explain applies to the analyze lane, not --detect");
    }
    let mut req = wire::AnalyzeRequest::new(dataset, sql);
    req.treatment = req_treatment;
    req.covariates = covariates;
    req.seed = seed;
    req.explain = explain;
    let base = HypDbConfig::default();

    // One oracle cache for the run, so the discovery work counters
    // (scans, cache hits, batching) can be reported afterwards.
    let cache = Arc::new(OracleCache::new());
    let tick = hypdb_obs::Tick::now();
    let traced = hypdb_obs::trace_threshold().map(|_| {
        // Explain-capable when --explain is set, so the explain sink and
        // the slow-run span dump share one tracer.
        if explain {
            hypdb_obs::Tracer::with_explain()
        } else {
            hypdb_obs::Tracer::new()
        }
    });
    let compute = || {
        if detect {
            wire::detect_cached(&*table, &req, &base, Some(&cache)).map(|r| wire::detect_body(&r))
        } else if explain {
            wire::analyze_explained(&*table, &req, &base, Some(&cache))
                .map(|(r, e)| wire::explain_body(&r, &e))
        } else if pretty {
            wire::analyze_cached(&*table, &req, &base, Some(&cache)).map(|r| r.to_string())
        } else {
            wire::analyze_cached(&*table, &req, &base, Some(&cache)).map(|r| wire::report_body(&r))
        }
    };
    let outcome = match &traced {
        Some(tracer) => {
            let out = hypdb_obs::with_request(tracer, compute);
            hypdb_obs::maybe_dump(0, "analyze", tick.elapsed(), &tracer.finish());
            out
        }
        None => compute(),
    };
    match outcome {
        Ok(body) => {
            println!("{body}");
            // The oracle-work footer goes to stderr: stdout stays
            // byte-identical to the server's response body (the CI
            // smoke test diffs the two). It renders the same snapshot
            // the server's `/metrics` oracle section renders.
            eprintln!("{}", OracleSnapshot::from_cache(&cache).footer());
        }
        Err(e) => {
            eprintln!("hypdb: {e}");
            std::process::exit(1);
        }
    }
}
