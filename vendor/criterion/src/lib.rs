//! Minimal, self-contained stand-in for the slice of the `criterion` API
//! used by this workspace's benches: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The build environment has no registry access, so the workspace vendors
//! this crate by path. Measurement is deliberately simple — a warm-up
//! pass, then `sample_size` timed samples of an adaptively-chosen batch
//! size — and results are printed as median ns/iter with min/max spread.
//! Good enough for A/B comparisons within one machine, not for
//! statistics-grade reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the workload size (printed, not otherwise used).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (what, n) = match t {
            Throughput::Elements(n) => ("elements", n),
            Throughput::Bytes(n) => ("bytes", n),
        };
        println!("# {}: throughput {} {}", self.name, n, what);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Workload size declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id (mirrors criterion's
/// `IntoBenchmarkId` so both `&str` and [`BenchmarkId`] are accepted).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, discarding a warm-up pass and printing median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & batch sizing: aim for samples of >= ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let (lo, hi) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        self.report(median, lo, hi);
    }

    fn report(&mut self, median: f64, lo: f64, hi: f64) {
        println!("  time: [{} {} {}]", fmt_ns(lo), fmt_ns(median), fmt_ns(hi));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    println!("{label}");
    let mut b = Bencher { sample_size };
    f(&mut b);
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("f", 10), &10usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
