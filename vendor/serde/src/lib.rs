//! Minimal, self-contained stand-in for the slice of `serde` this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain
//! (non-generic) structs and enums, round-tripped through JSON by the
//! sibling `serde_json` stub.
//!
//! The build environment has no registry access, so the workspace vendors
//! this crate by path. The data model is a single [`Value`] tree;
//! [`Serialize`] lowers into it and [`Deserialize`] lifts out of it. The
//! derive macro (in `serde_derive`) generates externally-tagged enum
//! representations and field-name-keyed struct objects, matching real
//! serde's default JSON layout for the shapes used here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Object fields are kept in insertion order so serialized output is
/// deterministic and mirrors struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object fields if this is an [`Value::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the elements if this is an [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field by key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced by [`Deserialize`] (and re-used by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Fetches a required object field, with a descriptive error when missing.
/// Used by derive-generated `Deserialize` impls.
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{key}`")))
}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Lifts a value out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

fn int_from(v: &Value) -> Result<i128, Error> {
    match *v {
        Value::Int(i) => Ok(i128::from(i)),
        Value::UInt(u) => Ok(i128::from(u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(f as i128),
        _ => Err(Error::new("expected an integer")),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(int_from(v)?)
                    .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(int_from(v)?)
                    .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        usize::try_from(int_from(v)?).map_err(|_| Error::new("integer out of range for usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        isize::try_from(int_from(v)?).map_err(|_| Error::new("integer out of range for isize"))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // serde_json has no NaN/inf literal; they round-trip as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::new("expected a number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected a string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected a single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::new("expected null")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::new("expected a tuple array"))?;
                let expected = [$($idx,)+].len();
                if arr.len() != expected {
                    return Err(Error::new(format!(
                        "expected a tuple of {expected} elements, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort(); // deterministic output
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected an object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, val)| (k.clone(), val.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::new("expected an object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort(); // deterministic output
        Value::Arr(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
