//! Minimal JSON serialization over the in-repo `serde` stub: compact
//! writer + recursive-descent parser, enough for `to_string`/`from_str`
//! round-trips of derived types. Matches real `serde_json` conventions
//! for the shapes used here: compact output (no spaces), struct fields in
//! declaration order, floats printed shortest-round-trip, non-finite
//! floats as `null`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest string that round-trips, and
                // always keeps a `.0` on integral values, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            *pos += 1;
                            if bytes.get(*pos) != Some(&b'\\') {
                                return Err(Error::new("missing low surrogate"));
                            }
                            *pos += 1;
                            if bytes.get(*pos) != Some(&b'u') {
                                return Err(Error::new("missing low surrogate"));
                            }
                            let lo = parse_hex4(bytes, pos)?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| Error::new("invalid utf-8"))?;
                out.push_str(s);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let end = *pos + 5; // `u` + 4 hex digits
    if end > bytes.len() {
        return Err(Error::new("truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[*pos + 1..end]).map_err(|_| Error::new("bad escape"))?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
    *pos = end - 1;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null", "true", "false", "42", "-7", "3.25", "\"hi\"", "[1,2]", "{}",
        ] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\u{1}é😀".to_string());
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn object_preserves_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
    }

    #[test]
    fn floats_keep_point() {
        let mut out = String::new();
        write_value(&mut out, &Value::Float(1.0));
        assert_eq!(out, "1.0");
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".to_string()));
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }
}
