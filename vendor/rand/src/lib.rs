//! Minimal, self-contained stand-in for the slice of the `rand` 0.8 API
//! used by this workspace: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no registry access, so the workspace vendors
//! this crate by path. [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for the permutation tests and
//! forward-sampling this project does, and deterministic for a given seed
//! (though the streams differ from the real `rand::rngs::StdRng`, which is
//! ChaCha12-based).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// domain; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`). Panics if the
    /// range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample of `bound` values in `[0, bound)` via Lemire's method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Guard against end being reached through rounding.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f32::sample(rng) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Randomization methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_range_uniform_enough() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from 10_000");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            match r.gen_range(0..=3u32) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
