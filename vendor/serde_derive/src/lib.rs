//! `#[derive(Serialize, Deserialize)]` for the in-repo `serde` stub.
//!
//! Written against `proc_macro` directly because `syn`/`quote` are not
//! available in the offline build environment. Supports exactly the item
//! shapes this workspace derives on: non-generic structs (unit, tuple,
//! named) and non-generic enums whose variants are unit, tuple, or named.
//!
//! Representation matches real serde's default (externally-tagged) JSON
//! layout: named structs become objects keyed by field name, newtype
//! structs are transparent, tuple structs/variants become arrays, unit
//! enum variants become bare strings, and data-carrying variants become
//! single-field `{"Variant": ...}` objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments, and visibility to reach `struct`/`enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, possibly followed by `(crate)` etc.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stub");
        }
    }
    let shape = if kind == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde_derive: malformed struct body: {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        }
    };
    Item { name, shape }
}

/// Parses `field: Type, ...` pairs, skipping attributes and visibility.
/// Commas inside angle brackets (e.g. `HashMap<K, V>`) are not separators;
/// parens/brackets/braces arrive pre-grouped from `proc_macro`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
                None => return fields,
            }
        };
        fields.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Counts top-level fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1; // no trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in enum: {other}"),
                None => return variants,
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant, then the separating comma.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => return variants,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------
//
// Generated code uses absolute paths (`::serde::...`, `::core::...`,
// `::std::...`) throughout: deriving modules may shadow `Result`, `Error`,
// or `String` with their own types.

fn obj_pair(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Arr(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| obj_pair(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!(
                "::serde::Value::Obj(::std::vec::Vec::from([{}]))",
                pairs.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Arr(::std::vec::Vec::from([{}]))",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Obj(::std::vec::Vec::from([{pair}])),",
                                binds = binds.join(", "),
                                pair = obj_pair(vname, &payload),
                            )
                        }
                        Fields::Named(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| obj_pair(f, &format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            let payload = format!(
                                "::serde::Value::Obj(::std::vec::Vec::from([{}]))",
                                pairs.join(", ")
                            );
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Obj(::std::vec::Vec::from([{pair}])),",
                                fields = fields.join(", "),
                                pair = obj_pair(vname, &payload),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("::core::result::Result::Ok({name})"),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_arr().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::new(\"wrong tuple arity for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_get(obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_obj().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let arr = inner.as_arr().ok_or_else(|| ::serde::Error::new(\"expected array for {name}::{vname}\"))?;\n\
                                     if arr.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::new(\"wrong arity for {name}::{vname}\")); }}\n\
                                     ::core::result::Result::Ok({name}::{vname}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::obj_get(obj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let obj = inner.as_obj().ok_or_else(|| ::serde::Error::new(\"expected object for {name}::{vname}\"))?;\n\
                                     ::core::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         _ => ::core::result::Result::Err(::serde::Error::new(\"unknown variant of {name}\")),\n\
                     }},\n\
                     ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             _ => ::core::result::Result::Err(::serde::Error::new(\"unknown variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::Error::new(\"expected string or 1-field object for {name}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
