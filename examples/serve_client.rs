//! Living API documentation for `hypdb-serve`: start a server on an
//! ephemeral port, audit a cancer-dataset query over HTTP, and
//! pretty-print the report.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! The request/response bodies are the `hypdb-core` wire schema — the
//! same JSON the CLI (`hypdb analyze`) and a production deployment
//! (`hypdb serve`) speak. Responses zero the wall-clock timings, so a
//! body is byte-identical run to run; the second request below is
//! served from the report cache and must match the first bit for bit.

use hypdb::core::wire;
use hypdb::prelude::*;
use hypdb::serve::{client, Registry, ServeConfig, Server};

fn main() {
    // A server over a shared, immutable sharded table. Port 0 picks an
    // ephemeral port — same as a test or notebook would.
    let mut registry = Registry::new();
    registry.insert("cancer", &datasets::cancer_data(2_000, 1));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::from_env()
    };
    let handle = Server::start(cfg, registry).expect("server starts");
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    let listing = client::get(addr, "/datasets").expect("GET /datasets");
    println!("GET /datasets → {}\n  {}\n", listing.status, listing.body);

    // The request is plain JSON; only `dataset` and `sql` are required.
    let request = AnalyzeRequest::new(
        "cancer",
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
    );
    let body = request.canonical_json();
    println!("POST /analyze\n  {body}\n");

    let first = client::post_json(addr, "/analyze", &body).expect("POST /analyze");
    assert_eq!(first.status, 200, "{}", first.body);
    println!(
        "→ 200, cache {} (fingerprint {})",
        first.header("X-Hypdb-Cache").unwrap_or("?"),
        first.header("X-Hypdb-Fingerprint").unwrap_or("?"),
    );

    let again = client::post_json(addr, "/analyze", &body).expect("POST /analyze");
    assert_eq!(again.header("X-Hypdb-Cache"), Some("hit"));
    assert_eq!(again.body, first.body, "cached bytes are identical");
    println!("→ repeat served from cache, byte-identical\n");

    // The cheap detection-only lane.
    let det = client::post_json(addr, "/detect", &body).expect("POST /detect");
    let verdict: DetectReport = serde_json::from_str(&det.body).expect("detect report");
    println!(
        "POST /detect → biased: {} (covariates {:?})\n",
        verdict.biased(),
        verdict.covariates
    );

    // The served bytes are exactly what the offline pipeline produces:
    // CLI, tests, and server share the one wire entry point.
    let table = datasets::cancer_data(2_000, 1);
    let base = hypdb::core::HypDbConfig::default();
    let offline = wire::report_body(&wire::analyze(&table, &request, &base).expect("analysis"));
    assert_eq!(offline, first.body, "served == offline, byte for byte");
    println!("offline wire::analyze produced the same bytes\n");

    // The body is a full AnalysisReport; render it for humans.
    let report: AnalysisReport = serde_json::from_str(&first.body).expect("report parses");
    println!("{report}");

    let metrics = handle.metrics();
    println!(
        "served {} request(s): cache {} hit(s), {} miss(es)",
        metrics.requests, metrics.cache_hits, metrics.cache_misses
    );
    handle.shutdown();
    println!("server drained and shut down cleanly");
}
