//! The paper's running example (Fig 1): Simpson's paradox in flight
//! delays.
//!
//! A company compares carriers AA and UA at four airports with a
//! group-by query. AA looks better overall, yet is worse at every
//! single airport — because AA concentrates its flights at airports
//! with few delays. HypDB detects the bias, explains it (Airport is
//! responsible, with (UA, ROC, delayed) the top triple), and rewrites
//! the query so the per-airport truth prevails.
//!
//! ```sh
//! cargo run --release --example flight_simpson
//! ```

use hypdb::datasets::flight::{flight_data, FlightConfig};
use hypdb::prelude::*;
use hypdb::table::groupby::group_average;

fn main() {
    let cfg = FlightConfig {
        rows: 43_853,
        total_attrs: 101,
        ..FlightConfig::default()
    };
    println!(
        "generating FlightData-like table ({} rows x {} attrs)…",
        cfg.rows, cfg.total_attrs
    );
    let table = flight_data(&cfg);

    let sql = "SELECT Carrier, avg(Delayed) FROM FlightData \
               WHERE Carrier IN ('AA','UA') \
               AND Airport IN ('COS','MFE','MTJ','ROC') \
               GROUP BY Carrier";
    println!("\nanalyst's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    // Show the paradox first: per-airport averages.
    let carrier = table.attr("Carrier").expect("attr");
    let delayed = table.attr("Delayed").expect("attr");
    println!("ground truth per airport (delay rate):");
    println!("{:<10} {:>8} {:>8}", "airport", "AA", "UA");
    for airport in ["COS", "MFE", "MTJ", "ROC"] {
        let pred = Predicate::and([
            Predicate::is_in(&table, "Carrier", ["AA", "UA"]).expect("attr"),
            Predicate::eq(&table, "Airport", airport).expect("attr"),
        ]);
        let rows = pred.select(&table);
        let g = group_average(&table, &rows, &[carrier], &[delayed]).expect("avg");
        let rate = |name: &str| {
            g.iter()
                .find(|r| table.column(carrier).dict().value(r.key[0]) == name)
                .map(|r| r.averages[0])
                .unwrap_or(f64::NAN)
        };
        println!("{:<10} {:>8.3} {:>8.3}", airport, rate("AA"), rate("UA"));
    }

    // Full pipeline: discovery runs on the 101-attribute schema and must
    // drop the FD (AirportWAC) and key columns before finding Airport
    // (and Year) as covariates.
    let report = HypDb::new(&table).analyze(&query).expect("analysis");
    println!("\n{report}");
    println!("rewritten query:\n{}", report.rewritten.total_sql);
}
