//! Algorithmic-fairness audit on AdultData (Fig 3 top): does gender
//! directly affect income?
//!
//! FairTest-style analyses report a strong association (30% of men vs
//! 11% of women earn >50K). HypDB goes further: it discovers that
//! MaritalStatus and Education mediate most of the gap, reveals the
//! census artefact (income is *household* income on joint filings),
//! and reports total and direct effects separately.
//!
//! ```sh
//! cargo run --release --example adult_fairness
//! ```

use hypdb::datasets::adult::{adult_data, AdultConfig};
use hypdb::prelude::*;

fn main() {
    let cfg = AdultConfig::default();
    println!("generating AdultData-like table ({} rows)…", cfg.rows);
    let table = adult_data(&cfg);

    let sql = "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender";
    println!("\nauditor's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    // Fully automatic: discovery must (a) drop the EducationNum ⇒
    // Education FD and the key-like Fnlwgt, (b) find the mediators.
    let report = HypDb::new(&table).analyze(&query).expect("analysis");
    println!("{report}");

    let ctx = &report.contexts[0];
    if let (Some(naive), Some(total)) = (
        ctx.sql_diff.as_ref().and_then(|d| d.first()),
        ctx.total_effect
            .as_ref()
            .and_then(|e| e.diff.as_ref())
            .and_then(|d| d.first()),
    ) {
        println!(
            "\nverdict: naive gap {:+.3} vs adjusted (total) gap {:+.3}",
            naive, total
        );
        if let Some(direct) = ctx
            .direct_effects
            .first()
            .and_then(|e| e.diff.as_ref())
            .and_then(|d| d.first())
        {
            println!(
                "direct (gender -> income, mediators fixed) gap: {:+.3} — \
                 the dataset cannot substantiate a direct effect",
                direct
            );
        }
    }
}
