//! The 1973 Berkeley discrimination case (Fig 4 bottom) on the *real*
//! admission counts of Bickel, Hammel & O'Connell (1975).
//!
//! The naive group-by query shows men admitted at 44.5% vs women at
//! 30.4% — apparently damning. HypDB detects that the query is biased
//! w.r.t. Department, explains it (women applied to the competitive
//! departments), and the rewritten query shows the gap essentially
//! vanishes — the insight that made the case famous.
//!
//! ```sh
//! cargo run --release --example berkeley_1973
//! ```

use hypdb::datasets::berkeley::berkeley_data;
use hypdb::prelude::*;

fn main() {
    let table = berkeley_data();
    println!(
        "real 1973 Berkeley admissions: {} applicants, 6 departments\n",
        table.nrows()
    );

    let sql = "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender";
    println!("analyst's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    // Department is the (known) covariate here; with only 3 attributes
    // the parents of Gender cannot be learned (Gender is a root), so we
    // supply the adjustment set the way the paper's analysis does.
    let report = HypDb::new(&table)
        .with_covariates(["Department"])
        .expect("attr")
        .with_mediators(["Department"])
        .expect("attr")
        .analyze(&query)
        .expect("analysis");
    println!("{report}");
    println!("rewritten query:\n{}", report.rewritten.total_sql);
}
