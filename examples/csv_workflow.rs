//! Bring-your-own-data workflow: load a CSV, audit a group-by query,
//! and export the de-biased SQL.
//!
//! ```sh
//! cargo run --release --example csv_workflow [path/to/data.csv]
//! HYPDB_SHARD_ROWS=4096 cargo run --release --example csv_workflow
//! ```
//!
//! Without an argument, the example writes a small demo CSV to a temp
//! directory first, so it is runnable out of the box. When
//! `HYPDB_SHARD_ROWS` is set (> 0), the CSV is ingested **streaming**
//! into a sharded table (`hypdb-store`) instead of a monolithic one;
//! the analysis report is byte-identical either way.

use hypdb::prelude::*;
use hypdb::store::{env_shard_rows, read_csv_shards_path};
use hypdb::table::csv::{read_csv_path, write_csv_path};

fn demo_csv() -> std::path::PathBuf {
    // Same confounded population as `quickstart`, serialised to disk.
    let mut b = TableBuilder::new(["treatment", "outcome", "region"]);
    for (t, y, z, copies) in [
        ("new", "1", "north", 30u32),
        ("new", "0", "north", 10),
        ("old", "1", "north", 6),
        ("old", "0", "north", 2),
        ("new", "1", "south", 2),
        ("new", "0", "south", 8),
        ("old", "1", "south", 10),
        ("old", "0", "south", 40),
    ] {
        for _ in 0..copies {
            b.push_row([t, y, z]).expect("row arity");
        }
    }
    let table = b.finish();
    let dir = std::env::temp_dir().join("hypdb_csv_workflow");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("demo.csv");
    write_csv_path(&table, &path).expect("write csv");
    path
}

/// Audits the first-column-vs-second-column group-by on any storage
/// (or adapt the SQL to your schema).
fn audit<S: Scan>(table: &S) {
    let treatment = table.schema().name(AttrId(0)).to_string();
    let outcome = table.schema().name(AttrId(1)).to_string();
    let sql = format!("SELECT {treatment}, avg({outcome}) FROM csv GROUP BY {treatment}");
    println!("\nauditing:\n  {sql}\n");
    let query = Query::from_sql(&sql, table).expect("valid query");
    match HypDb::new(table).analyze(&query) {
        Ok(report) => {
            println!("{report}");
            println!("de-biased SQL:\n{}", report.rewritten.total_sql);
        }
        Err(e) => eprintln!("analysis failed: {e}"),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(demo_csv);
    println!("loading {}", path.display());

    match env_shard_rows() {
        Some(shard_rows) => {
            // Streaming sharded ingest: record by record into
            // fixed-size shards, never holding the file in memory.
            let table = read_csv_shards_path(&path, shard_rows).expect("readable CSV");
            println!(
                "loaded {} rows x {} attributes into {} shards of {} rows",
                table.nrows(),
                table.nattrs(),
                table.n_shards(),
                shard_rows,
            );
            audit(&table);
        }
        None => {
            let table = read_csv_path(&path).expect("readable CSV");
            println!(
                "loaded {} rows x {} attributes (monolithic; set HYPDB_SHARD_ROWS for sharded ingest)",
                table.nrows(),
                table.nattrs(),
            );
            audit(&table);
        }
    }
}
