//! CancerData (Fig 4 top): validating HypDB against known ground truth.
//!
//! The LUCAS network (Fig 7) has no direct edge Lung_Cancer →
//! Car_Accident, but an indirect path through Fatigue. So the correct
//! answers are: significant total effect, null direct effect, Fatigue
//! the most responsible mediator. Because the generating DAG is known,
//! this example double-checks HypDB's discovered covariates/mediators
//! against d-separation.
//!
//! ```sh
//! cargo run --release --example cancer_ground_truth
//! ```

use hypdb::datasets::cancer::{cancer_dag, cancer_data};
use hypdb::prelude::*;

fn main() {
    // Seed 1, matching tests/end_to_end.rs: the vendored RNG's streams
    // differ from upstream rand's, and under the old seed (2018) CD hit
    // a Berkson false positive (Fatigue flagged as a covariate).
    let table = cancer_data(2_000, 1);
    let dag = cancer_dag();
    println!(
        "CancerData: {} rows sampled from the Fig 7 DAG",
        table.nrows()
    );
    println!("{dag}");

    let sql = "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer";
    println!("analyst's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    let report = HypDb::new(&table).analyze(&query).expect("analysis");
    println!("{report}");

    // Ground truth from the DAG.
    let t = dag.node("Lung_Cancer").expect("node");
    let y = dag.node("Car_Accident").expect("node");
    let true_mediators: Vec<&str> = dag
        .mediators(t, y)
        .into_iter()
        .map(|v| dag.name(v))
        .collect();
    println!("ground-truth mediators on Lung_Cancer ⇝ Car_Accident: {true_mediators:?}");
    println!(
        "ground truth: no direct edge, so the direct effect must be \
         statistically indistinguishable from zero — check the \
         rewritten(dir) column above."
    );
}
