//! Quickstart: detect, explain, and remove bias in a tiny confounded
//! dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hypdb::prelude::*;

fn main() {
    // A small observational dataset with a confounder Z that influences
    // both the treatment T and the outcome Y. Within each Z group the
    // outcome rate is identical for both treatments — any difference a
    // group-by query reports is pure confounding.
    let mut b = TableBuilder::new(["T", "Y", "Z"]);
    for (t, y, z, copies) in [
        ("t1", "1", "a", 30u32),
        ("t1", "0", "a", 10),
        ("t0", "1", "a", 6),
        ("t0", "0", "a", 2),
        ("t1", "1", "b", 2),
        ("t1", "0", "b", 8),
        ("t0", "1", "b", 10),
        ("t0", "0", "b", 40),
    ] {
        for _ in 0..copies {
            b.push_row([t, y, z]).expect("row arity");
        }
    }
    let table = b.finish();

    // The analyst's naive query.
    let sql = "SELECT T, avg(Y) FROM D GROUP BY T";
    println!("analyst's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    // Run the full HypDB pipeline: covariate discovery, bias detection,
    // explanation, and rewriting.
    let report = HypDb::new(&table).analyze(&query).expect("analysis");
    println!("{report}");

    println!(
        "rewritten query (total effect):\n{}",
        report.rewritten.total_sql
    );
}
