//! The Staples online-pricing investigation (Fig 3 bottom): is the
//! price discrimination against low-income customers *intended*?
//!
//! HypDB separates the total effect of Income on Price (significant —
//! low-income users do see higher prices) from the direct effect
//! (null — the algorithm keys on Distance to a competitor, and income
//! only enters through where people live). That distinction is exactly
//! what the "unintended consequence" defence rests on.
//!
//! ```sh
//! cargo run --release --example staples_pricing
//! ```

use hypdb::datasets::staples::{staples_data, StaplesConfig};
use hypdb::prelude::*;

fn main() {
    // 200k rows keeps the example snappy; pass the paper-sized 988_871
    // via StaplesConfig::default() if you want Table 1's scale.
    let cfg = StaplesConfig {
        rows: 200_000,
        ..StaplesConfig::default()
    };
    println!("generating StaplesData-like table ({} rows)…", cfg.rows);
    let table = staples_data(&cfg);

    let sql = "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income";
    println!("\ninvestigator's query:\n  {sql}\n");
    let query = Query::from_sql(sql, &table).expect("valid query");

    let report = HypDb::new(&table).analyze(&query).expect("analysis");
    println!("{report}");

    let ctx = &report.contexts[0];
    let direct_p = ctx
        .direct_effects
        .first()
        .map(|e| e.significance[0].p_value);
    let total_p = ctx.total_effect.as_ref().map(|e| e.significance[0].p_value);
    println!(
        "\nverdict: total effect p = {:?}, direct effect p = {:?}",
        total_p, direct_p
    );
    println!(
        "=> the income-price association is real but flows through \
         Distance; no evidence of direct income-based pricing."
    );
}
