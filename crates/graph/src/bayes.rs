//! Categorical Bayesian networks: CPTs + forward sampling.
//!
//! This is the repo's substitute for the `catnet` R package the paper
//! uses to draw RandomData samples (§7.1): causal DAGs admit the same
//! factorised distribution as Bayesian networks, so sampling the network
//! forward in topological order produces data whose independence
//! structure is exactly the DAG's d-separations (up to faithfulness
//! violations from unlucky CPTs, which low Dirichlet concentration makes
//! rare).

use crate::dag::Dag;
use hypdb_stats::random::{categorical, dirichlet_symmetric};
use hypdb_table::{Column, Schema, Table};
use rand::Rng;

/// A Bayesian network over categorical variables.
#[derive(Debug, Clone)]
pub struct BayesNet {
    dag: Dag,
    cards: Vec<usize>,
    /// `cpts[v][config * card_v + value]` = `Pr(v = value | parents =
    /// config)`, where `config` is the mixed-radix index of the parent
    /// values in [`Dag::parent_set`] order.
    cpts: Vec<Vec<f64>>,
    order: Vec<usize>,
}

impl BayesNet {
    /// A network with uniform CPTs.
    pub fn uniform(dag: Dag, cards: Vec<usize>) -> Self {
        assert_eq!(dag.len(), cards.len(), "one cardinality per node");
        assert!(cards.iter().all(|&k| k >= 1), "cardinalities must be >= 1");
        let cpts = (0..dag.len())
            .map(|v| {
                let rows = parent_configs(&dag, &cards, v);
                let k = cards[v];
                vec![1.0 / k as f64; rows * k]
            })
            .collect();
        let order = dag.topological_order();
        BayesNet {
            dag,
            cards,
            cpts,
            order,
        }
    }

    /// A network with CPT rows drawn i.i.d. from a symmetric
    /// `Dirichlet(alpha)`. Small `alpha` (≈0.3–0.8) yields skewed,
    /// strongly-informative rows; large `alpha` approaches uniform.
    pub fn random(rng: &mut impl Rng, dag: Dag, cards: Vec<f64>, alpha: f64) -> Self {
        let cards: Vec<usize> = cards.iter().map(|&k| k as usize).collect();
        let mut net = BayesNet::uniform(dag, cards);
        for v in 0..net.dag.len() {
            let k = net.cards[v];
            let rows = net.cpts[v].len() / k;
            for r in 0..rows {
                let row = dirichlet_symmetric(rng, alpha, k);
                net.cpts[v][r * k..(r + 1) * k].copy_from_slice(&row);
            }
        }
        net
    }

    /// Overrides one node's CPT. `table[config * card + value]` must be
    /// row-stochastic; panics otherwise.
    pub fn set_cpt(&mut self, v: usize, table: Vec<f64>) {
        let rows = parent_configs(&self.dag, &self.cards, v);
        let k = self.cards[v];
        assert_eq!(table.len(), rows * k, "CPT shape mismatch for node {v}");
        for r in 0..rows {
            let s: f64 = table[r * k..(r + 1) * k].iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-9,
                "CPT row {r} of node {v} sums to {s}"
            );
            assert!(
                table[r * k..(r + 1) * k].iter().all(|&p| p >= 0.0),
                "negative probability in CPT of node {v}"
            );
        }
        self.cpts[v] = table;
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Cardinalities per node.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The CPT row `Pr(v | parents = parent_values)`.
    pub fn cpt_row(&self, v: usize, parent_values: &[usize]) -> &[f64] {
        let parents = self.dag.parent_set(v);
        assert_eq!(parent_values.len(), parents.len());
        let mut config = 0usize;
        for (&p, &val) in parents.iter().zip(parent_values) {
            debug_assert!(val < self.cards[p]);
            config = config * self.cards[p] + val;
        }
        let k = self.cards[v];
        &self.cpts[v][config * k..(config + 1) * k]
    }

    /// Samples one joint assignment into `row` (length = #nodes).
    pub fn sample_row(&self, rng: &mut impl Rng, row: &mut [usize]) {
        debug_assert_eq!(row.len(), self.dag.len());
        for &v in &self.order {
            let parents = self.dag.parent_set(v);
            let mut config = 0usize;
            for &p in &parents {
                config = config * self.cards[p] + row[p];
            }
            let k = self.cards[v];
            let probs = &self.cpts[v][config * k..(config + 1) * k];
            row[v] = categorical(rng, probs);
        }
    }

    /// Forward-samples `n` rows into a categorical [`Table`] whose
    /// columns carry the DAG's node names and whose dictionaries are
    /// pre-interned with the *full* domain `0..card`, so global
    /// cardinalities are correct even when rare categories go unsampled.
    pub fn sample_table(&self, rng: &mut impl Rng, n: usize) -> Table {
        let nv = self.dag.len();
        let mut schema = Schema::default();
        let mut columns: Vec<Column> = Vec::with_capacity(nv);
        for v in 0..nv {
            schema.push(self.dag.name(v).to_string());
            let mut col = Column::new();
            for code in 0..self.cards[v] {
                col.dict_mut().intern(&code.to_string());
            }
            columns.push(col);
        }
        let mut row = vec![0usize; nv];
        for _ in 0..n {
            self.sample_row(rng, &mut row);
            for (col, &val) in columns.iter_mut().zip(&row) {
                col.push_code(val as u32);
            }
        }
        Table::from_columns(schema, columns).expect("schema/columns constructed consistently")
    }

    /// Exact marginal probability of a full joint assignment.
    pub fn joint_probability(&self, row: &[usize]) -> f64 {
        let mut p = 1.0;
        for v in 0..self.dag.len() {
            let parents = self.dag.parent_set(v);
            let vals: Vec<usize> = parents.iter().map(|&q| row[q]).collect();
            p *= self.cpt_row(v, &vals)[row[v]];
        }
        p
    }
}

/// Number of parent configurations of node `v`.
fn parent_configs(dag: &Dag, cards: &[usize], v: usize) -> usize {
    dag.parents(v).map(|p| cards[p]).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    /// Z -> T -> Y with binary nodes.
    fn chain_net() -> BayesNet {
        let mut dag = Dag::with_names(["Z", "T", "Y"]);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(0, vec![0.3, 0.7]);
        // T | Z: strongly follows Z.
        net.set_cpt(1, vec![0.9, 0.1, 0.1, 0.9]);
        // Y | T: strongly follows T.
        net.set_cpt(2, vec![0.8, 0.2, 0.2, 0.8]);
        net
    }

    #[test]
    fn uniform_cpts_are_uniform() {
        let dag = Dag::new(2);
        let net = BayesNet::uniform(dag, vec![4, 2]);
        assert_eq!(net.cpt_row(0, &[]), &[0.25; 4]);
    }

    #[test]
    fn cpt_indexing_by_parent_config() {
        let net = chain_net();
        assert_eq!(net.cpt_row(1, &[0]), &[0.9, 0.1]);
        assert_eq!(net.cpt_row(1, &[1]), &[0.1, 0.9]);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn non_stochastic_cpt_rejected() {
        let mut net = chain_net();
        net.set_cpt(0, vec![0.5, 0.6]);
    }

    #[test]
    fn joint_probability_factorises() {
        let net = chain_net();
        // P(Z=1,T=1,Y=0) = 0.7 * 0.9 * 0.2
        let p = net.joint_probability(&[1, 1, 0]);
        assert!((p - 0.7 * 0.9 * 0.2).abs() < 1e-12);
        // Joint sums to 1.
        let mut total = 0.0;
        for z in 0..2 {
            for t in 0..2 {
                for y in 0..2 {
                    total += net.joint_probability(&[z, t, y]);
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_frequencies_match_cpts() {
        let net = chain_net();
        let mut r = rng();
        let n = 40_000;
        let t = net.sample_table(&mut r, n);
        assert_eq!(t.nrows(), n);
        let z = t.attr("Z").unwrap();
        let ones = t
            .column(z)
            .codes()
            .iter()
            .filter(|&&c| t.column(z).dict().value(c) == "1")
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "P(Z=1) ≈ {frac}");
    }

    #[test]
    fn sampled_table_has_full_domains() {
        // Card 3 with a near-impossible category: dictionary still has 3.
        let dag = Dag::new(1);
        let mut net = BayesNet::uniform(dag, vec![3]);
        net.set_cpt(0, vec![0.999999, 0.000001, 0.0]);
        let t = net.sample_table(&mut rng(), 100);
        assert_eq!(t.cardinality(t.attr("X0").unwrap()), 3);
    }

    #[test]
    fn random_cpts_are_stochastic() {
        let mut r = rng();
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2);
        dag.add_edge(1, 2);
        let net = BayesNet::random(&mut r, dag, vec![3.0, 2.0, 4.0], 0.5);
        for cfg in 0..6 {
            let k = 4;
            let row = &net.cpts[2][cfg * k..(cfg + 1) * k];
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dsep_reflected_in_samples() {
        // In the chain, Z ⊥ Y | T should hold in data; Z ⊥ Y should not.
        use hypdb_stats::independence::chi2_test;
        use hypdb_table::Stratified;
        let net = chain_net();
        let mut r = rng();
        let tab = net.sample_table(&mut r, 20_000);
        let (z, t, y) = (
            tab.attr("Z").unwrap(),
            tab.attr("T").unwrap(),
            tab.attr("Y").unwrap(),
        );
        let rows = tab.all_rows();
        let marg = chi2_test(&Stratified::build(&tab, &rows, z, y, &[]));
        assert!(marg.p_value < 0.001, "Z, Y dependent, p={}", marg.p_value);
        let cond = chi2_test(&Stratified::build(&tab, &rows, z, y, &[t]));
        assert!(cond.p_value > 0.01, "Z ⊥ Y | T, p={}", cond.p_value);
    }
}
