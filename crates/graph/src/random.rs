//! Erdős–Rényi random DAGs (§7.1): the ground-truth graphs behind
//! RandomData.
//!
//! Nodes are ordered `0..n`; each forward pair `(i, j)`, `i < j`, is an
//! edge with probability `p`, which guarantees acyclicity. The paper
//! generates DAGs with 8/16/32 nodes and expected edge counts scaled to
//! keep fan-ins bounded.

use crate::dag::Dag;
use rand::Rng;

/// Samples an Erdős–Rényi DAG with `n` nodes and expected number of
/// edges `expected_edges` (clamped to the feasible range).
pub fn random_dag(rng: &mut impl Rng, n: usize, expected_edges: f64) -> Dag {
    let max_edges = (n * n.saturating_sub(1) / 2) as f64;
    let p = if max_edges == 0.0 {
        0.0
    } else {
        (expected_edges / max_edges).clamp(0.0, 1.0)
    };
    random_dag_with_density(rng, n, p)
}

/// Samples an Erdős–Rényi DAG with per-pair edge probability `p`.
pub fn random_dag_with_density(rng: &mut impl Rng, n: usize, p: f64) -> Dag {
    let mut g = Dag::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Samples a DAG whose in-degrees are capped at `max_parents`, retrying
/// edges that would exceed the cap. Used when the discovery experiments
/// require "bounded fan-in" DAGs (§4's complexity discussion).
pub fn random_dag_bounded_fanin(
    rng: &mut impl Rng,
    n: usize,
    expected_edges: f64,
    max_parents: usize,
) -> Dag {
    let max_edges = (n * n.saturating_sub(1) / 2) as f64;
    let p = if max_edges == 0.0 {
        0.0
    } else {
        (expected_edges / max_edges).clamp(0.0, 1.0)
    };
    let mut g = Dag::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if g.in_degree(j) < max_parents && rng.gen::<f64>() < p {
                g.add_edge(i, j);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn acyclic_by_construction() {
        let mut r = rng();
        for _ in 0..20 {
            let g = random_dag_with_density(&mut r, 12, 0.5);
            // topological_order asserts acyclicity in debug builds; also
            // verify every edge goes forward in index order.
            for (u, v) in g.edges() {
                assert!(u < v);
            }
            assert_eq!(g.topological_order().len(), 12);
        }
    }

    #[test]
    fn expected_edge_count_respected() {
        let mut r = rng();
        let trials = 200;
        let target = 20.0;
        let total: usize = (0..trials)
            .map(|_| random_dag(&mut r, 16, target).num_edges())
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - target).abs() < 2.0, "mean edges {mean}");
    }

    #[test]
    fn degenerate_sizes() {
        let mut r = rng();
        assert_eq!(random_dag(&mut r, 0, 5.0).len(), 0);
        assert_eq!(random_dag(&mut r, 1, 5.0).num_edges(), 0);
        // p clamps at 1: complete DAG.
        let g = random_dag(&mut r, 5, 1e9);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn fanin_cap_holds() {
        let mut r = rng();
        for _ in 0..20 {
            let g = random_dag_bounded_fanin(&mut r, 16, 60.0, 3);
            for v in 0..g.len() {
                assert!(g.in_degree(v) <= 3);
            }
        }
    }
}
