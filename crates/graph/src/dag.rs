//! Directed acyclic graphs over named nodes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A DAG with `n` nodes identified by index, plus optional names.
///
/// Edges `u → v` read "u is a potential cause of v" (§2). Acyclicity is
/// an invariant: [`Dag::add_edge`] refuses edges that would close a
/// cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    names: Vec<String>,
    parents: Vec<BTreeSet<usize>>,
    children: Vec<BTreeSet<usize>>,
}

impl Dag {
    /// An edgeless DAG with `n` nodes named `X0..X{n-1}`.
    pub fn new(n: usize) -> Self {
        Dag {
            names: (0..n).map(|i| format!("X{i}")).collect(),
            parents: vec![BTreeSet::new(); n],
            children: vec![BTreeSet::new(); n],
        }
    }

    /// A DAG with explicit node names.
    pub fn with_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let n = names.len();
        Dag {
            names,
            parents: vec![BTreeSet::new(); n],
            children: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Node name.
    pub fn name(&self, v: usize) -> &str {
        &self.names[v]
    }

    /// Finds a node by name.
    pub fn node(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Adds `u → v`. Returns `false` (and leaves the graph unchanged) if
    /// the edge would create a cycle or is a self-loop; `true` otherwise
    /// (including when the edge already existed).
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.len() && v < self.len(), "node out of range");
        if u == v || self.reaches(v, u) {
            return false;
        }
        self.children[u].insert(v);
        self.parents[v].insert(u);
        true
    }

    /// Removes `u → v` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        self.children[u].remove(&v);
        self.parents[v].remove(&u);
    }

    /// True when the edge `u → v` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.children[u].contains(&v)
    }

    /// True when `u` and `v` are adjacent in either direction.
    #[inline]
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        self.has_edge(u, v) || self.has_edge(v, u)
    }

    /// Parents `PA_v`.
    pub fn parents(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.parents[v].iter().copied()
    }

    /// Children of `v`.
    pub fn children(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.children[v].iter().copied()
    }

    /// Parent set as a sorted vec.
    pub fn parent_set(&self, v: usize) -> Vec<usize> {
        self.parents[v].iter().copied().collect()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.parents[v].len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(BTreeSet::len).sum()
    }

    /// All edges as `(u, v)` pairs, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (u, ch) in self.children.iter().enumerate() {
            for &v in ch {
                out.push((u, v));
            }
        }
        out
    }

    /// True when `to` is reachable from `from` along directed edges.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &c in &self.children[u] {
                if c == to {
                    return true;
                }
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Descendants of `v` (excluding `v`).
    pub fn descendants(&self, v: usize) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.children[v].iter().copied().collect();
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if !seen[u] {
                seen[u] = true;
                out.push(u);
                stack.extend(self.children[u].iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Ancestors of `v` (excluding `v`).
    pub fn ancestors(&self, v: usize) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.parents[v].iter().copied().collect();
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if !seen[u] {
                seen[u] = true;
                out.push(u);
                stack.extend(self.parents[u].iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// The (graph-side) Markov boundary of `v`: parents, children, and
    /// parents of children (spouses) — Prop 2.5 / Neapolitan Thm 2.14.
    pub fn markov_boundary(&self, v: usize) -> Vec<usize> {
        let mut mb = BTreeSet::new();
        mb.extend(self.parents[v].iter().copied());
        for &c in &self.children[v] {
            mb.insert(c);
            mb.extend(self.parents[c].iter().copied());
        }
        mb.remove(&v);
        mb.into_iter().collect()
    }

    /// One topological order (stable: among ready nodes, lowest index
    /// first).
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.parents[v].len()).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            out.push(v);
            for &c in &self.children[v] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    ready.insert(c);
                }
            }
        }
        debug_assert_eq!(out.len(), n, "graph invariant violated: cycle");
        out
    }

    /// Mediator set for the direct effect of `t` on `y`: every node that
    /// lies on a directed path `t ⇝ y` excluding the endpoints (App
    /// 10.1). The paper's NDE computation uses `M = PA_Y − {T}`; this
    /// path-based set is exposed for diagnostics.
    pub fn mediators(&self, t: usize, y: usize) -> Vec<usize> {
        let desc_t: BTreeSet<usize> = self.descendants(t).into_iter().collect();
        let anc_y: BTreeSet<usize> = self.ancestors(y).into_iter().collect();
        desc_t
            .intersection(&anc_y)
            .copied()
            .filter(|&v| v != t && v != y)
            .collect()
    }
}

impl fmt::Display for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DAG({} nodes, {} edges)", self.len(), self.num_edges())?;
        for (u, v) in self.edges() {
            writeln!(f, "  {} -> {}", self.names[u], self.names[v])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of §4 / Fig 2: W -> T <- Z, T -> C <- D,
    /// plus Y as a child of T.
    pub(crate) fn fig2() -> Dag {
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D", "Y"]);
        let (z, w, t, c, d, y) = (0, 1, 2, 3, 4, 5);
        assert!(g.add_edge(z, t));
        assert!(g.add_edge(w, t));
        assert!(g.add_edge(t, c));
        assert!(g.add_edge(d, c));
        assert!(g.add_edge(t, y));
        g
    }

    #[test]
    fn add_edge_rejects_cycles() {
        let mut g = Dag::new(3);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 0)); // closes a cycle
        assert!(!g.add_edge(1, 1)); // self loop
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parents_children_queries() {
        let g = fig2();
        assert_eq!(g.parent_set(2), vec![0, 1]); // T <- {Z, W}
        assert_eq!(g.children(2).collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(g.in_degree(3), 2);
        assert!(g.adjacent(0, 2));
        assert!(!g.adjacent(0, 1));
    }

    #[test]
    fn markov_boundary_includes_spouses() {
        let g = fig2();
        // MB(T) = parents {Z,W} + children {C,Y} + spouses {D}.
        assert_eq!(g.markov_boundary(2), vec![0, 1, 3, 4, 5]);
        // MB(Z) = child T + spouse W.
        assert_eq!(g.markov_boundary(0), vec![1, 2]);
        // MB(D) = child C + spouse T.
        assert_eq!(g.markov_boundary(4), vec![2, 3]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = fig2();
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v], "{u} before {v}");
        }
    }

    #[test]
    fn ancestors_descendants() {
        let g = fig2();
        assert_eq!(g.ancestors(3), vec![0, 1, 2, 4]);
        assert_eq!(g.descendants(0), vec![2, 3, 5]);
        assert!(g.reaches(0, 5));
        assert!(!g.reaches(5, 0));
    }

    #[test]
    fn mediators_on_paths() {
        let mut g = Dag::new(4);
        // T -> M -> Y, T -> Y, plus off-path node 3.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(3, 2);
        assert_eq!(g.mediators(0, 2), vec![1]);
        assert!(g.mediators(3, 0).is_empty());
    }

    #[test]
    fn name_lookup() {
        let g = fig2();
        assert_eq!(g.node("T"), Some(2));
        assert_eq!(g.node("nope"), None);
        assert_eq!(g.name(4), "D");
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1);
        assert!(g.has_edge(0, 1));
        g.remove_edge(0, 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
        // After removal the reverse edge becomes legal.
        assert!(g.add_edge(1, 0));
    }

    #[test]
    fn display_lists_edges() {
        let g = fig2();
        let s = g.to_string();
        assert!(s.contains("Z -> T"));
        assert!(s.contains("6 nodes"));
    }
}
