//! d-separation (Appendix 10.1): the graphical criterion characterising
//! the conditional independences of a DAG-isomorphic distribution.
//!
//! Implemented with the linear-time "reachable" procedure (Bayes-ball /
//! Koller & Friedman Alg 3.1) rather than path enumeration: a node is
//! d-connected to the sources iff a ball starting at the sources can
//! reach it under the traversal rules, where colliders pass the ball
//! only when they (or a descendant) are observed.

use crate::dag::Dag;

/// Returns every node d-connected to any node of `x` given evidence `z`
/// (excluding the evidence nodes themselves).
pub fn reachable(g: &Dag, x: &[usize], z: &[usize]) -> Vec<usize> {
    let n = g.len();
    let mut in_z = vec![false; n];
    for &v in z {
        in_z[v] = true;
    }
    // Phase 1: the set of nodes that are in Z or have a descendant in Z
    // (= ancestors of Z, inclusive). A collider passes the ball exactly
    // when it belongs to this set.
    let mut anc_z = vec![false; n];
    {
        let mut stack: Vec<usize> = z.to_vec();
        for &v in z {
            anc_z[v] = true;
        }
        while let Some(v) = stack.pop() {
            for p in g.parents(v) {
                if !anc_z[p] {
                    anc_z[p] = true;
                    stack.push(p);
                }
            }
        }
    }

    // Phase 2: BFS over (node, direction) states. Direction `Up` means
    // the ball arrived from a child (travelling towards parents);
    // `Down` means it arrived from a parent.
    #[derive(Clone, Copy, PartialEq)]
    enum Dir {
        Up,
        Down,
    }
    let mut visited_up = vec![false; n];
    let mut visited_down = vec![false; n];
    let mut result = vec![false; n];
    let mut queue: Vec<(usize, Dir)> = x.iter().map(|&v| (v, Dir::Up)).collect();

    while let Some((v, dir)) = queue.pop() {
        let seen = match dir {
            Dir::Up => &mut visited_up[v],
            Dir::Down => &mut visited_down[v],
        };
        if *seen {
            continue;
        }
        *seen = true;
        if !in_z[v] {
            result[v] = true;
        }
        match dir {
            Dir::Up => {
                if !in_z[v] {
                    for p in g.parents(v) {
                        queue.push((p, Dir::Up));
                    }
                    for c in g.children(v) {
                        queue.push((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                if !in_z[v] {
                    for c in g.children(v) {
                        queue.push((c, Dir::Down));
                    }
                }
                if anc_z[v] {
                    // v is (an ancestor of) evidence: the collider at v
                    // is active, pass the ball back up.
                    for p in g.parents(v) {
                        queue.push((p, Dir::Up));
                    }
                }
            }
        }
    }
    (0..n).filter(|&v| result[v]).collect()
}

/// True when `x` and `y` are d-separated by `z` in `g`
/// (`X ⊥⊥_d Y | Z`). Source/target overlap with the evidence set is
/// allowed; evidence nodes are never reported reachable.
pub fn d_separated(g: &Dag, x: &[usize], y: &[usize], z: &[usize]) -> bool {
    let reach = reachable(g, x, z);
    !y.iter()
        .any(|t| reach.binary_search(t).is_ok() && !x.contains(t))
}

/// Pairwise convenience wrapper: `X ⊥⊥_d Y | Z` for single nodes.
pub fn d_separated_pair(g: &Dag, x: usize, y: usize, z: &[usize]) -> bool {
    d_separated(g, &[x], &[y], z)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain X -> M -> Y.
    fn chain() -> Dag {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    /// Fork X <- Z -> Y.
    fn fork() -> Dag {
        let mut g = Dag::new(3);
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        g
    }

    /// Collider X -> C <- Y, C -> D.
    fn collider() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn chain_blocks_on_mediator() {
        let g = chain();
        assert!(!d_separated_pair(&g, 0, 2, &[]));
        assert!(d_separated_pair(&g, 0, 2, &[1]));
    }

    #[test]
    fn fork_blocks_on_common_cause() {
        let g = fork();
        assert!(!d_separated_pair(&g, 0, 1, &[]));
        assert!(d_separated_pair(&g, 0, 1, &[2]));
    }

    #[test]
    fn collider_opens_on_conditioning() {
        let g = collider();
        // Marginally independent.
        assert!(d_separated_pair(&g, 0, 1, &[]));
        // Conditioning on the collider opens the path (Berkson).
        assert!(!d_separated_pair(&g, 0, 1, &[2]));
        // Conditioning on a *descendant* of the collider also opens it.
        assert!(!d_separated_pair(&g, 0, 1, &[3]));
    }

    #[test]
    fn lucas_anxiety_peer_pressure() {
        // The paper's Ex 10.1: Anxiety -> Smoking <- Peer_Pressure;
        // marginally independent, dependent given Smoking.
        let mut g = Dag::with_names(["Anxiety", "PeerPressure", "Smoking"]);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert!(d_separated_pair(&g, 0, 1, &[]));
        assert!(!d_separated_pair(&g, 0, 1, &[2]));
    }

    #[test]
    fn backdoor_blocking() {
        // Confounded treatment: Z -> T, Z -> Y, T -> Y.
        let mut g = Dag::new(3);
        let (z, t, y) = (0, 1, 2);
        g.add_edge(z, t);
        g.add_edge(z, y);
        g.add_edge(t, y);
        // T and Y always dependent (direct edge).
        assert!(!d_separated_pair(&g, t, y, &[z]));
        // But Z blocks the back-door: (Y(t) ⊥ T | Z) corresponds to
        // removing T -> Y; check on the surgically cut graph.
        let mut cut = g.clone();
        cut.remove_edge(t, y);
        assert!(d_separated_pair(&cut, t, y, &[z]));
        assert!(!d_separated_pair(&cut, t, y, &[]));
    }

    #[test]
    fn set_valued_arguments() {
        let g = collider();
        assert!(d_separated(&g, &[0], &[1], &[]));
        assert!(!d_separated(&g, &[0, 2], &[1], &[]));
        // Evidence nodes are never "reachable".
        assert!(d_separated(&g, &[0], &[2], &[2]));
    }

    #[test]
    fn markov_boundary_shields_node() {
        // Prop 2.5: X ⊥ everything-else | MB(X), on a small dag.
        let mut g = Dag::new(6);
        g.add_edge(0, 2); // 0 -> 2
        g.add_edge(1, 2); // 1 -> 2
        g.add_edge(2, 3); // 2 -> 3
        g.add_edge(4, 3); // 4 -> 3 (spouse of 2)
        g.add_edge(3, 5); // 3 -> 5
        let x = 2;
        let mb = g.markov_boundary(x); // {0,1,3,4}
        let rest: Vec<usize> = (0..6).filter(|v| *v != x && !mb.contains(v)).collect();
        assert!(d_separated(&g, &[x], &rest, &mb));
        // And no strict subset of MB suffices (minimality).
        for drop in &mb {
            let sub: Vec<usize> = mb.iter().copied().filter(|v| v != drop).collect();
            let rest_plus: Vec<usize> = (0..6).filter(|v| *v != x && !sub.contains(v)).collect();
            assert!(
                !d_separated(&g, &[x], &rest_plus, &sub),
                "dropping {drop} should break the blanket"
            );
        }
    }

    #[test]
    fn reachable_excludes_evidence() {
        let g = chain();
        let r = reachable(&g, &[0], &[1]);
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn disconnected_nodes_always_separated() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(d_separated_pair(&g, 0, 2, &[]));
        assert!(d_separated_pair(&g, 1, 3, &[0, 2]));
    }
}
