//! Causal-graph substrate (§2 and Appendix 10.1 of the paper).
//!
//! * [`dag`] — directed acyclic graphs with parent/child/Markov-boundary
//!   queries and topological sorting,
//! * [`dsep`] — d-separation (the reachability formulation), giving an
//!   *exact* conditional-independence oracle for DAG-isomorphic
//!   distributions — invaluable for testing discovery algorithms without
//!   sampling noise,
//! * [`random`] — Erdős–Rényi random DAGs (§7.1's RandomData DAGs),
//! * [`bayes`] — categorical Bayesian networks with Dirichlet-random
//!   CPTs and forward sampling; our substitute for the `catnet` R
//!   package the paper samples RandomData with.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod dag;
pub mod dsep;
pub mod random;

pub use bayes::BayesNet;
pub use dag::Dag;
pub use dsep::d_separated;
pub use random::random_dag;
