//! Relational schema: named attributes with discrete domains.

use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an attribute (a column position in the schema).
///
/// `AttrId` is the coin of the realm throughout HypDB: covariate sets,
/// Markov boundaries, group-by keys and cube subsets are all sets of
/// `AttrId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's position as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Metadata of one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrMeta {
    /// Attribute name as it appears in queries.
    pub name: String,
}

/// An ordered list of named attributes with a name → id index.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    attrs: Vec<AttrMeta>,
    by_name: FxHashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from attribute names. Duplicate names keep the
    /// first id (lookups resolve to the first occurrence).
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut schema = Schema::default();
        for name in names {
            schema.push(name.into());
        }
        schema
    }

    /// Appends an attribute and returns its id.
    pub fn push(&mut self, name: String) -> AttrId {
        let id = AttrId(self.attrs.len() as u32);
        self.by_name.entry(name.clone()).or_insert(id);
        self.attrs.push(AttrMeta { name });
        id
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Resolves an attribute name to its id.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// Name of an attribute.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Iterates over all attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Checks an id is in range.
    pub fn check(&self, id: AttrId) -> Result<()> {
        if id.index() < self.attrs.len() {
            Ok(())
        } else {
            Err(Error::InvalidAttrId(id.0))
        }
    }

    /// All attribute metadata in schema order.
    pub fn attrs(&self) -> &[AttrMeta] {
        &self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_resolution() {
        let s = Schema::new(["a", "b", "c"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr("b").unwrap(), AttrId(1));
        assert_eq!(s.name(AttrId(2)), "c");
        assert!(s.attr("missing").is_err());
    }

    #[test]
    fn duplicate_names_resolve_to_first() {
        let s = Schema::new(["x", "x"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attr("x").unwrap(), AttrId(0));
    }

    #[test]
    fn check_bounds() {
        let s = Schema::new(["a"]);
        assert!(s.check(AttrId(0)).is_ok());
        assert!(s.check(AttrId(1)).is_err());
    }

    #[test]
    fn attr_ids_in_order() {
        let s = Schema::new(["a", "b"]);
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1)]);
    }
}
