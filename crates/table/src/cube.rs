//! Materialised OLAP data cubes (§6, Fig 6(d), Fig 8(b)).
//!
//! A data cube over attributes `A₁…A_k` precomputes `count(*) GROUP BY S`
//! for every subset `S`. Since every such aggregate is a marginal of the
//! full joint contingency table, we materialise the joint once and derive
//! marginals on demand, caching them per subset — the same asymptotic
//! benefit as a cube (each subsequent entropy/count query touches the
//! (much smaller) cube instead of the raw rows) without the 2^k
//! up-front blow-up. The paper's 12-attribute cube restriction is kept
//! as a configurable width limit.

use crate::contingency::ContingencyTable;
use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use crate::rows::RowSet;
use crate::scan::Scan;
use crate::schema::AttrId;
use crate::sync::Mutex;
use std::sync::Arc;

/// Maximum cube width mirroring the PostgreSQL limitation discussed in
/// §7.5 ("the cube operator in PostgreSQL is restricted to 12
/// attributes").
pub const DEFAULT_MAX_CUBE_ATTRS: usize = 12;

/// A materialised cube over a fixed attribute subset of a table.
#[derive(Debug)]
pub struct DataCube {
    attrs: Vec<AttrId>,
    position: FxHashMap<AttrId, usize>,
    base: ContingencyTable,
    cache: Mutex<FxHashMap<u64, Arc<ContingencyTable>>>,
    hits: Mutex<CubeStats>,
}

/// Hit/derive counters, useful for the Fig 6(d) ablation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CubeStats {
    /// Marginals served from cache.
    pub cache_hits: u64,
    /// Marginals derived from the base joint.
    pub derivations: u64,
}

impl DataCube {
    /// Materialises the cube over `attrs` for the selected rows of any
    /// [`Scan`] storage (the joint scan fans out per shard/chunk on the
    /// worker pool).
    ///
    /// Errors if more than `max_attrs` attributes are requested
    /// (pass [`DEFAULT_MAX_CUBE_ATTRS`] for the paper's limit).
    pub fn build<S: Scan + ?Sized>(
        table: &S,
        rows: &RowSet,
        attrs: &[AttrId],
        max_attrs: usize,
    ) -> Result<Self> {
        if attrs.len() > max_attrs.min(63) {
            return Err(Error::CubeMiss(format!(
                "cube width {} exceeds limit {}",
                attrs.len(),
                max_attrs.min(63)
            )));
        }
        let mut position = FxHashMap::default();
        for (i, &a) in attrs.iter().enumerate() {
            position.insert(a, i);
        }
        let base = ContingencyTable::from_table(table, rows, attrs);
        Ok(DataCube {
            attrs: attrs.to_vec(),
            position,
            base,
            cache: Mutex::new(FxHashMap::default()),
            hits: Mutex::new(CubeStats::default()),
        })
    }

    /// The cube's attribute set.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of non-zero cells in the materialised joint.
    pub fn base_support(&self) -> u64 {
        self.base.support()
    }

    /// Total row count the cube summarises.
    pub fn total(&self) -> u64 {
        self.base.total()
    }

    /// True when the cube covers all of `attrs`.
    pub fn covers(&self, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.position.contains_key(a))
    }

    /// `count(*) GROUP BY subset`, served from the cube.
    ///
    /// The subset must be covered by the cube; attribute order in the
    /// result follows the requested order.
    pub fn counts_for(&self, subset: &[AttrId]) -> Result<Arc<ContingencyTable>> {
        let mut positions = Vec::with_capacity(subset.len());
        let mut mask = 0u64;
        for &a in subset {
            let &p = self
                .position
                .get(&a)
                .ok_or_else(|| Error::CubeMiss(format!("attribute {a} not in cube")))?;
            positions.push(p);
            mask |= 1 << p;
        }
        // Cache key: subset mask + order fingerprint. Different orders of
        // the same subset are cheap permutations but would poison a
        // mask-only cache; include the order in the key.
        let mut key = mask;
        for &p in &positions {
            key = key.wrapping_mul(67).wrapping_add(p as u64 + 1);
        }
        if let Some(hit) = self.cache.lock().get(&key).cloned() {
            self.hits.lock().cache_hits += 1;
            return Ok(hit);
        }
        let marginal = Arc::new(self.base.marginal(&positions));
        self.cache.lock().insert(key, marginal.clone());
        self.hits.lock().derivations += 1;
        Ok(marginal)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CubeStats {
        *self.hits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableBuilder};

    fn sample() -> Table {
        let mut b = TableBuilder::new(["a", "b", "c"]);
        for (a, v, c, n) in [
            ("0", "x", "p", 4u32),
            ("0", "y", "q", 2),
            ("1", "x", "q", 3),
            ("1", "y", "p", 1),
        ] {
            for _ in 0..n {
                b.push_row([a, v, c]).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn cube_counts_match_direct() {
        let t = sample();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let cube = DataCube::build(&t, &t.all_rows(), &ids, DEFAULT_MAX_CUBE_ATTRS).unwrap();
        assert_eq!(cube.total(), 10);

        let ab = cube.counts_for(&ids[0..2]).unwrap();
        let direct = ContingencyTable::from_table(&t, &t.all_rows(), &ids[0..2]);
        let mut x = ab.cells();
        let mut y = direct.cells();
        x.sort();
        y.sort();
        assert_eq!(x, y);
    }

    #[test]
    fn cache_hits_are_counted() {
        let t = sample();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let cube = DataCube::build(&t, &t.all_rows(), &ids, DEFAULT_MAX_CUBE_ATTRS).unwrap();
        cube.counts_for(&[ids[0]]).unwrap();
        cube.counts_for(&[ids[0]]).unwrap();
        cube.counts_for(&[ids[1]]).unwrap();
        let s = cube.stats();
        assert_eq!(s.derivations, 2);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn attribute_order_respected() {
        let t = sample();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let cube = DataCube::build(&t, &t.all_rows(), &ids, DEFAULT_MAX_CUBE_ATTRS).unwrap();
        let ab = cube.counts_for(&[ids[0], ids[1]]).unwrap();
        let ba = cube.counts_for(&[ids[1], ids[0]]).unwrap();
        assert_eq!(ab.attrs(), &[ids[0], ids[1]]);
        assert_eq!(ba.attrs(), &[ids[1], ids[0]]);
        assert_eq!(ab.get(&[0, 1]), ba.get(&[1, 0]));
    }

    #[test]
    fn width_limit_enforced() {
        let names: Vec<String> = (0..14).map(|i| format!("a{i}")).collect();
        let mut b = TableBuilder::new(names);
        let row: Vec<String> = (0..14).map(|i| i.to_string()).collect();
        b.push_row(row.iter().map(String::as_str)).unwrap();
        let t = b.finish();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        assert!(DataCube::build(&t, &t.all_rows(), &ids, DEFAULT_MAX_CUBE_ATTRS).is_err());
        assert!(DataCube::build(&t, &t.all_rows(), &ids[..12], DEFAULT_MAX_CUBE_ATTRS).is_ok());
    }

    #[test]
    fn miss_on_uncovered_attribute() {
        let t = sample();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let cube = DataCube::build(&t, &t.all_rows(), &ids[0..2], 12).unwrap();
        assert!(cube.covers(&ids[0..2]));
        assert!(!cube.covers(&ids));
        assert!(cube.counts_for(&[ids[2]]).is_err());
    }
}
