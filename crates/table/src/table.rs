//! The in-memory relational instance `D` of §2.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::rows::RowSet;
use crate::schema::{AttrId, Schema};

/// An immutable, dictionary-encoded, column-oriented relation.
///
/// The database instance of the paper: a bag of tuples over categorical
/// attributes, assumed to be a uniform sample of an unknown population
/// distribution `Pr(A)`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Builds a table from a schema and matching columns.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let nrows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != nrows {
                return Err(Error::Incompatible(format!(
                    "column length {} != {}",
                    c.len(),
                    nrows
                )));
            }
        }
        Ok(Table {
            schema,
            columns,
            nrows,
        })
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`n` in the paper).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of attributes.
    #[inline]
    pub fn nattrs(&self) -> usize {
        self.schema.len()
    }

    /// Resolves an attribute name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema.attr(name)
    }

    /// Resolves several attribute names at once.
    pub fn attrs<'a, I>(&self, names: I) -> Result<Vec<AttrId>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.schema.attr(n)).collect()
    }

    /// The column of an attribute.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id.index()]
    }

    /// Observed cardinality of an attribute.
    pub fn cardinality(&self, id: AttrId) -> u32 {
        self.columns[id.index()].cardinality()
    }

    /// The code of `attr` at `row`.
    #[inline]
    pub fn code(&self, attr: AttrId, row: u32) -> u32 {
        self.columns[attr.index()].code_at(row as usize)
    }

    /// The string value of `attr` at `row`.
    pub fn value(&self, attr: AttrId, row: u32) -> &str {
        self.columns[attr.index()].value_at(row as usize)
    }

    /// Looks up the dictionary code of `value` in `attr`.
    pub fn code_of(&self, attr: AttrId, value: &str) -> Result<u32> {
        self.column(attr)
            .dict()
            .code(value)
            .ok_or_else(|| Error::UnknownValue {
                attr: self.schema.name(attr).to_string(),
                value: value.to_string(),
            })
    }

    /// All rows of the table as a [`RowSet`].
    pub fn all_rows(&self) -> RowSet {
        RowSet::All(self.nrows as u32)
    }

    /// Per-code numeric interpretation of an attribute (parses each
    /// dictionary entry as `f64`), used for `avg(Y)` aggregation.
    pub fn numeric_codes(&self, attr: AttrId) -> Result<Vec<f64>> {
        self.column(attr).numeric_codes(self.schema.name(attr))
    }

    /// Materialises a new table containing only `rows` (in order).
    pub fn restrict(&self, rows: &RowSet) -> Table {
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            let mut codes = Vec::with_capacity(rows.len());
            for r in rows.iter() {
                codes.push(col.code_at(r as usize));
            }
            columns.push(Column::from_parts(codes, col.dict().clone()));
        }
        Table {
            schema: self.schema.clone(),
            columns,
            nrows: rows.len(),
        }
    }

    /// Projects onto a subset of attributes (new table shares dictionaries).
    pub fn project(&self, attrs: &[AttrId]) -> Result<Table> {
        let mut schema = Schema::default();
        let mut columns = Vec::with_capacity(attrs.len());
        for &a in attrs {
            self.schema.check(a)?;
            schema.push(self.schema.name(a).to_string());
            columns.push(self.columns[a.index()].clone());
        }
        Ok(Table {
            schema,
            columns,
            nrows: self.nrows,
        })
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// New builder over the given attribute names.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let schema = Schema::new(names);
        let columns = (0..schema.len()).map(|_| Column::new()).collect();
        TableBuilder { schema, columns }
    }

    /// Appends one row of string values. The row is validated for arity
    /// before anything is interned, so a failed push leaves the builder
    /// untouched.
    pub fn push_row<'a, I>(&mut self, values: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let vals: Vec<&str> = values.into_iter().collect();
        if vals.len() != self.columns.len() {
            return Err(Error::ArityMismatch {
                expected: self.columns.len(),
                got: vals.len(),
            });
        }
        for (c, v) in self.columns.iter_mut().zip(vals) {
            c.push(v);
        }
        Ok(())
    }

    /// Number of complete rows pushed so far.
    pub fn nrows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// The schema being built.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finishes the table.
    pub fn finish(self) -> Table {
        let nrows = self.columns.first().map_or(0, Column::len);
        Table {
            schema: self.schema,
            columns: self.columns,
            nrows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        b.push_row(["t0", "0", "a"]).unwrap();
        b.push_row(["t1", "1", "a"]).unwrap();
        b.push_row(["t1", "0", "b"]).unwrap();
        b.finish()
    }

    #[test]
    fn build_and_read() {
        let t = sample();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.nattrs(), 3);
        let tid = t.attr("T").unwrap();
        assert_eq!(t.value(tid, 0), "t0");
        assert_eq!(t.value(tid, 1), "t1");
        assert_eq!(t.cardinality(tid), 2);
        assert_eq!(t.code_of(tid, "t1").unwrap(), 1);
        assert!(t.code_of(tid, "t9").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new(["a", "b"]);
        assert!(b.push_row(["1"]).is_err());
        assert!(b.push_row(["1", "2", "3"]).is_err());
        // The builder must still be usable and consistent.
        b.push_row(["1", "2"]).unwrap();
        let t = b.finish();
        assert_eq!(t.nrows(), 1);
    }

    #[test]
    fn restrict_keeps_order() {
        let t = sample();
        let r = t.restrict(&RowSet::Ids(vec![0, 2]));
        assert_eq!(r.nrows(), 2);
        let tid = r.attr("T").unwrap();
        assert_eq!(r.value(tid, 0), "t0");
        assert_eq!(r.value(tid, 1), "t1");
    }

    #[test]
    fn project_subset() {
        let t = sample();
        let z = t.attr("Z").unwrap();
        let p = t.project(&[z]).unwrap();
        assert_eq!(p.nattrs(), 1);
        assert_eq!(p.nrows(), 3);
        assert_eq!(p.value(AttrId(0), 2), "b");
    }

    #[test]
    fn numeric_codes() {
        let t = sample();
        let y = t.attr("Y").unwrap();
        assert_eq!(t.numeric_codes(y).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = Schema::new(["a", "b"]);
        let mut c1 = Column::new();
        c1.push("x");
        let c2 = Column::new();
        assert!(Table::from_columns(schema, vec![c1, c2]).is_err());
    }
}
