use std::fmt;

/// Errors produced by the table layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute id was out of range for the schema.
    InvalidAttrId(u32),
    /// A row had the wrong number of fields.
    ArityMismatch {
        /// Number of attributes the schema expects.
        expected: usize,
        /// Number of fields the row supplied.
        got: usize,
    },
    /// A categorical value could not be interpreted as a number.
    NonNumericValue {
        /// Attribute whose dictionary contained the value.
        attr: String,
        /// The offending dictionary entry.
        value: String,
    },
    /// A value was not present in a column dictionary.
    UnknownValue {
        /// Attribute searched.
        attr: String,
        /// The value that was looked up.
        value: String,
    },
    /// CSV input was malformed.
    Csv(String),
    /// Underlying I/O failure (stringified to keep the error `Clone`).
    Io(String),
    /// A cube was asked for attributes it does not cover.
    CubeMiss(String),
    /// Tables passed to an operation had incompatible shapes.
    Incompatible(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::InvalidAttrId(id) => write!(f, "attribute id {id} out of range"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "row has {got} fields, schema expects {expected}")
            }
            Error::NonNumericValue { attr, value } => {
                write!(f, "value `{value}` of attribute `{attr}` is not numeric")
            }
            Error::UnknownValue { attr, value } => {
                write!(f, "value `{value}` does not occur in attribute `{attr}`")
            }
            Error::Csv(msg) => write!(f, "csv error: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::CubeMiss(msg) => write!(f, "cube miss: {msg}"),
            Error::Incompatible(msg) => write!(f, "incompatible operands: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Result alias for the table layer.
pub type Result<T> = std::result::Result<T, Error>;
