//! Columnar storage for categorical (dictionary-encoded) relations, plus
//! the counting machinery HypDB is built on: group-by counting,
//! contingency tables, stratified cross-tabulations and OLAP data cubes.
//!
//! The paper (§2) fixes a relational schema with discrete attribute
//! domains; every statistic HypDB computes (entropies, mutual
//! information, the MIT permutation test, the adjustment formula) is a
//! function of `count(*) GROUP BY` aggregates over some attribute subset.
//! This crate is that substrate.
//!
//! Layout:
//! * [`schema`] / [`column`] / [`table`] — dictionary-encoded columnar
//!   tables with builders and CSV I/O,
//! * [`scan`] — the [`Scan`] storage trait every counting kernel is
//!   written against: a relation as fixed-size shards of global-code
//!   slices (a monolithic [`Table`] is the single-shard case;
//!   `hypdb-store`'s `ShardedTable` the partitioned one),
//! * [`predicate`] — WHERE-clause predicates and row selection,
//! * [`contingency`] — k-way contingency tables (dense or sparse) and
//!   stratified 2-way cross tabs,
//! * [`groupby`] — group-by average aggregation (the query engine for
//!   `SELECT avg(Y) .. GROUP BY ..`),
//! * [`cube`] — materialised data cubes with marginal caching (§6),
//! * [`csv`] — minimal CSV reader/writer for categorical data.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod contingency;
pub mod csv;
pub mod cube;
mod error;
pub mod groupby;
pub mod hash;
pub mod predicate;
pub mod rows;
pub mod scan;
pub mod schema;
pub mod sync;
pub mod table;

pub use column::{Column, Dictionary};
pub use contingency::{ContingencyTable, Stratified};
pub use cube::DataCube;
pub use error::{Error, Result};
pub use groupby::{group_average, group_counts, GroupRow};
pub use predicate::Predicate;
pub use rows::RowSet;
pub use scan::{ColRef, Scan};
pub use schema::{AttrId, AttrMeta, Schema};
pub use table::{Table, TableBuilder};
