//! A small, fast, non-cryptographic hasher for group-by keys.
//!
//! Group-by counting is the hottest loop in HypDB (every entropy, every
//! permutation test is a `count(*) GROUP BY`). The standard library's
//! SipHash is DoS-resistant but slow for the short `u32`-code keys we
//! hash; this module implements the well-known "Fx" multiply-xor hash
//! used by rustc, which is not in the offline dependency set.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (the rustc "Fx" construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&[1u32, 2, 3][..]), hash_of(&[1u32, 2, 3][..]));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u32, 2][..]), hash_of(&[2u32, 1][..]));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Differ only in the non-8-aligned tail.
        let a = [0u8, 0, 0, 0, 0, 0, 0, 0, 1];
        let b = [0u8, 0, 0, 0, 0, 0, 0, 0, 2];
        assert_ne!(hash_of(&a[..]), hash_of(&b[..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
        m.insert(vec![1, 2, 3].into_boxed_slice(), 7);
        assert_eq!(m.get(&vec![1, 2, 3].into_boxed_slice()).copied(), Some(7));
        assert_eq!(m.get(&vec![3, 2, 1].into_boxed_slice()), None);
    }
}
