//! Tiny synchronization shim: a [`Mutex`] with `parking_lot`-style
//! ergonomics (`lock()` returns the guard directly) over
//! `std::sync::Mutex`, so the workspace stays std-only. Poisoning is
//! ignored: all guarded state here is caches and counters, which remain
//! structurally valid even if a panic unwinds mid-update.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the guard if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
