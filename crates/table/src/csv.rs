//! Minimal CSV reader/writer for categorical tables.
//!
//! Supports the RFC-4180 subset needed for dataset interchange: comma
//! separation, `"`-quoted fields with doubled-quote escapes, and CRLF or
//! LF line endings. The first record is the header (attribute names).
//!
//! Parsing is streaming: [`CsvRecords`] reads one record at a time from
//! any [`BufRead`] into a reused field buffer, never materialising the
//! input. [`read_csv`] builds a monolithic [`Table`] on top of it; the
//! sharded ingest path (`hypdb-store`'s `read_csv_shards`) drives the
//! same record reader into a shard builder.

use crate::error::{Error, Result};
use crate::table::{Table, TableBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses one CSV record from `line` into `fields` (cleared first).
/// Returns `false` when the record continues on the next line (an open
/// quote), in which case the caller appends the next line and retries.
fn parse_record(line: &str, fields: &mut Vec<String>) -> Result<bool> {
    fields.clear();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Ok(false); // record continues past the newline
                }
                fields.push(std::mem::take(&mut cur));
                return Ok(true);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut cur)),
            Some(c) => cur.push(c),
        }
    }
}

/// Streaming record reader: yields one CSV record at a time from any
/// [`BufRead`], reusing a single line buffer between records (the input
/// is never materialised as a whole).
///
/// This is the one record parser behind both ingest paths —
/// [`read_csv`] (monolithic tables) and the sharded streaming ingest in
/// `hypdb-store`.
pub struct CsvRecords<R: BufRead> {
    reader: R,
    /// Reused per-line read buffer.
    line: String,
    /// Accumulates a quoted record that spans lines.
    pending: String,
}

impl<R: BufRead> CsvRecords<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        CsvRecords {
            reader,
            line: String::new(),
            pending: String::new(),
        }
    }

    /// Reads the next record into `fields` (cleared first). Returns
    /// `Ok(false)` at end of input; blank lines are skipped. Errors on
    /// a quoted field left open at EOF.
    pub fn next_record(&mut self, fields: &mut Vec<String>) -> Result<bool> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                if !self.pending.is_empty() {
                    return Err(Error::Csv("unterminated quoted field at EOF".into()));
                }
                return Ok(false);
            }
            let line = self.line.trim_end_matches(['\n', '\r']);
            if self.pending.is_empty() {
                if line.is_empty() {
                    continue; // blank line between records
                }
                if parse_record(line, fields)? {
                    return Ok(true);
                }
                self.pending.push_str(line);
                self.pending.push('\n');
            } else {
                self.pending.push_str(line);
                if parse_record(&self.pending, fields)? {
                    self.pending.clear();
                    return Ok(true);
                }
                self.pending.push('\n');
            }
        }
    }
}

/// The single streaming-ingest driver: reads the header, builds a row
/// sink with `init`, then pushes every data record into it, enforcing
/// the header arity. Both [`read_csv`] (monolithic) and `hypdb-store`'s
/// `read_csv_shards` (sharded) sit on this one loop, so ingest
/// semantics — blank-line policy, arity errors, quoted-record
/// handling — can never diverge between the two paths.
pub fn ingest_csv<R, T, Init, Push>(reader: R, init: Init, mut push: Push) -> Result<T>
where
    R: Read,
    Init: FnOnce(&[String]) -> T,
    Push: FnMut(&mut T, &[String]) -> Result<()>,
{
    let mut records = CsvRecords::new(BufReader::new(reader));
    let mut fields = Vec::new();
    if !records.next_record(&mut fields)? {
        return Err(Error::Csv("empty input".into()));
    }
    let arity = fields.len();
    let mut sink = init(&fields);
    while records.next_record(&mut fields)? {
        if fields.len() != arity {
            return Err(Error::Csv(format!(
                "record has {} fields, header has {arity}",
                fields.len()
            )));
        }
        push(&mut sink, &fields)?;
    }
    Ok(sink)
}

/// Reads a table from CSV text, streaming record by record (the input
/// is never held in memory as a whole; only the growing table is).
pub fn read_csv<R: Read>(reader: R) -> Result<Table> {
    ingest_csv(
        reader,
        |header| TableBuilder::new(header.iter().map(String::as_str)),
        |builder, fields| builder.push_row(fields.iter().map(String::as_str)),
    )
    .map(TableBuilder::finish)
}

/// Reads a table from a CSV file.
pub fn read_csv_path<P: AsRef<Path>>(path: P) -> Result<Table> {
    read_csv(std::fs::File::open(path)?)
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_field<W: Write>(w: &mut W, s: &str) -> std::io::Result<()> {
    if needs_quoting(s) {
        write!(w, "\"{}\"", s.replace('"', "\"\""))
    } else {
        w.write_all(s.as_bytes())
    }
}

/// Writes a table as CSV.
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> Result<()> {
    let schema = table.schema();
    for (i, id) in schema.attr_ids().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        write_field(writer, schema.name(id))?;
    }
    writer.write_all(b"\n")?;
    for row in 0..table.nrows() as u32 {
        for (i, id) in schema.attr_ids().enumerate() {
            if i > 0 {
                writer.write_all(b",")?;
            }
            write_field(writer, table.value(id, row))?;
        }
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes a table to a CSV file.
pub fn write_csv_path<P: AsRef<Path>>(table: &Table, path: P) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_csv(table, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let input = "a,b\n1,x\n2,y\n";
        let t = read_csv(input.as_bytes()).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.nattrs(), 2);
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), input);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let input = "name,quote\nalice,\"hello, world\"\nbob,\"she said \"\"hi\"\"\"\n";
        let t = read_csv(input.as_bytes()).unwrap();
        let q = t.attr("quote").unwrap();
        assert_eq!(t.value(q, 0), "hello, world");
        assert_eq!(t.value(q, 1), "she said \"hi\"");
        // Roundtrip preserves content.
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(&out[..]).unwrap();
        assert_eq!(t2.value(q, 0), "hello, world");
        assert_eq!(t2.value(q, 1), "she said \"hi\"");
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let input = "a,b\n\"line1\nline2\",x\n";
        let t = read_csv(input.as_bytes()).unwrap();
        assert_eq!(t.value(t.attr("a").unwrap(), 0), "line1\nline2");
        assert_eq!(t.nrows(), 1);
    }

    #[test]
    fn crlf_endings() {
        let input = "a,b\r\n1,2\r\n";
        let t = read_csv(input.as_bytes()).unwrap();
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.value(t.attr("b").unwrap(), 0), "2");
    }

    #[test]
    fn blank_lines_skipped() {
        let input = "a\n1\n\n2\n";
        let t = read_csv(input.as_bytes()).unwrap();
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let input = "a,b\n1\n";
        assert!(read_csv(input.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let input = "a\n\"open\n";
        assert!(read_csv(input.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hypdb_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = read_csv("a,b\n1,x\n".as_bytes()).unwrap();
        write_csv_path(&t, &path).unwrap();
        let t2 = read_csv_path(&path).unwrap();
        assert_eq!(t2.nrows(), 1);
        std::fs::remove_file(path).ok();
    }
}
