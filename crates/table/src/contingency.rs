//! k-way contingency tables (§5) — the tabular summaries every HypDB
//! statistic is computed from — and stratified 2-way cross tabs for the
//! independence tests.
//!
//! Storage is dense (a mixed-radix array) when the domain product is
//! small, and a **sorted cell array** otherwise: non-zero cells kept as
//! a flat, lexicographically sorted `(keys, counts)` pair. Marginal
//! walks over the sorted form are sequential and cache-friendly — a
//! prefix projection merges adjacent runs in one pass — which is what
//! makes derive-from-superset cheaper than a scan for the planner's
//! cost model. Both forms expose the same iteration interface.

use crate::hash::FxHashMap;
use crate::rows::RowSet;
use crate::scan::{for_each_segment, ColRef, Scan};
use crate::schema::AttrId;
use hypdb_exec::ThreadPool;
use hypdb_stats::crosstab::CrossTab;
use hypdb_stats::entropy::{entropy_miller_madow, entropy_plugin};
use hypdb_stats::independence::Strata;
use hypdb_stats::EntropyEstimator;

/// Cells above this domain-product switch to sparse storage.
const DENSE_LIMIT: u128 = 1 << 20;

/// Selections below this size are always counted in one pass. Above it
/// the scan is split into fixed chunks counted into per-worker partial
/// tables and merged in chunk order — for sparse storage that *same*
/// chunked path also runs at one thread, so the cell layout (which
/// downstream floating-point sums observe) is a function of the data
/// alone, never of the thread count.
///
/// Public because the planner's cost model uses the same threshold to
/// decide how many workers a segment scan can spread over.
pub const PARALLEL_ROWS: usize = 1 << 15;

/// Rows per chunk of a parallel sparse count (fixed: the chunk layout
/// must not depend on the worker count).
const SPARSE_ROW_CHUNK: usize = 1 << 14;

/// Sparse cells as flat sorted arrays: `counts[i]` belongs to the key
/// `keys[i*width .. (i+1)*width]`, and the key rows are in ascending
/// lexicographic order with no duplicates and no zero counts.
#[derive(Debug, Clone)]
struct SortedCells {
    width: usize,
    keys: Vec<u32>,
    counts: Vec<u64>,
}

impl SortedCells {
    /// Converts a finished hash count into the sorted representation
    /// (drops zero-count cells, sorts once, flattens).
    fn from_map(width: usize, map: FxHashMap<Box<[u32]>, u64>) -> SortedCells {
        let mut entries: Vec<(Box<[u32]>, u64)> = map.into_iter().filter(|&(_, c)| c > 0).collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(entries.len() * width);
        let mut counts = Vec::with_capacity(entries.len());
        for (k, c) in entries {
            keys.extend_from_slice(&k);
            counts.push(c);
        }
        SortedCells {
            width,
            keys,
            counts,
        }
    }

    #[inline]
    fn key(&self, i: usize) -> &[u32] {
        &self.keys[i * self.width..(i + 1) * self.width]
    }

    /// Binary search over the sorted key rows.
    fn get(&self, key: &[u32]) -> u64 {
        let (mut lo, mut hi) = (0usize, self.counts.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.counts.len() && self.key(lo) == key {
            self.counts[lo]
        } else {
            0
        }
    }

    /// Projects onto the attribute positions `keep`, merging cells that
    /// collapse together. Lexicographic order survives projection only
    /// for a *prefix* position list (`[0, 1, .., k-1]`): that path is a
    /// single sequential run-merging pass. Any other position list
    /// projects first, then sorts an index permutation, then merges.
    fn project(&self, keep: &[usize]) -> SortedCells {
        let w = keep.len();
        let m = self.counts.len();
        let mut keys: Vec<u32> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        let push_or_merge = |keys: &mut Vec<u32>, counts: &mut Vec<u64>, row: &[u32], c: u64| {
            if counts.is_empty() || &keys[keys.len() - w..] != row {
                keys.extend_from_slice(row);
                counts.push(c);
            } else if let Some(last) = counts.last_mut() {
                *last += c;
            }
        };
        if keep.iter().enumerate().all(|(i, &p)| i == p) {
            for i in 0..m {
                push_or_merge(&mut keys, &mut counts, &self.key(i)[..w], self.counts[i]);
            }
        } else {
            let mut proj: Vec<u32> = Vec::with_capacity(m * w);
            for i in 0..m {
                let row = self.key(i);
                proj.extend(keep.iter().map(|&p| row[p]));
            }
            let mut order: Vec<u32> = (0..m as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let (a, b) = (a as usize, b as usize);
                proj[a * w..(a + 1) * w].cmp(&proj[b * w..(b + 1) * w])
            });
            for &i in &order {
                let i = i as usize;
                push_or_merge(
                    &mut keys,
                    &mut counts,
                    &proj[i * w..(i + 1) * w],
                    self.counts[i],
                );
            }
        }
        SortedCells {
            width: w,
            keys,
            counts,
        }
    }
}

#[derive(Debug, Clone)]
enum Cells {
    Dense(Vec<u64>),
    Sorted(SortedCells),
}

/// A k-way table of counts over an ordered attribute list.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    attrs: Vec<AttrId>,
    dims: Vec<u32>,
    total: u64,
    support: u64,
    cells: Cells,
}

impl ContingencyTable {
    /// Counts the selected rows of any [`Scan`] storage grouped by
    /// `attrs` — one kernel behind the monolithic and the sharded path.
    ///
    /// Dimensions come from the *global* dictionary cardinalities so that
    /// codes are comparable across sub-populations (and across shards).
    /// Whole-table scans walk per-shard slice runs; explicit selections
    /// resolve rows through [`ColRef`]. Either way the chunk layout and
    /// merge order are pure functions of `(rows, attrs)` — never of the
    /// shard size or the thread count — so the resulting table is
    /// byte-identical for every storage layout.
    pub fn from_table<S: Scan + ?Sized>(table: &S, rows: &RowSet, attrs: &[AttrId]) -> Self {
        let dims: Vec<u32> = attrs.iter().map(|&a| table.cardinality(a).max(1)).collect();
        let product: u128 = dims.iter().map(|&d| d as u128).product();
        let n = rows.len();
        let pool = ThreadPool::current();

        let cells = if product <= DENSE_LIMIT {
            let count = |range: std::ops::Range<usize>| -> Vec<u64> {
                let mut dense = vec![0u64; product as usize];
                match rows {
                    // Whole-table scan: maximal per-shard runs, direct
                    // slice indexing (for a monolithic table this is the
                    // one contiguous run).
                    RowSet::All(_) => for_each_segment(table, attrs, range, |slices, local| {
                        for r in local {
                            let mut idx = 0usize;
                            for (col, &d) in slices.iter().zip(&dims) {
                                idx = idx * d as usize + col[r] as usize;
                            }
                            dense[idx] += 1;
                        }
                    }),
                    RowSet::Ids(_) => {
                        let columns: Vec<ColRef<'_>> =
                            attrs.iter().map(|&a| table.col(a)).collect();
                        for row in rows.slice(range) {
                            let mut idx = 0usize;
                            for (col, &d) in columns.iter().zip(&dims) {
                                idx = idx * d as usize + col.at(row) as usize;
                            }
                            dense[idx] += 1;
                        }
                    }
                }
                dense
            };
            if n >= PARALLEL_ROWS && pool.threads() > 1 {
                // One partial array per worker; `u64` sums are exact and
                // commutative, so any chunk layout gives the same table
                // — chunk count may follow the thread count here.
                let chunk = n.div_ceil(pool.threads());
                let partials = pool.map_chunks(n, chunk, count);
                let mut dense = vec![0u64; product as usize];
                for partial in partials {
                    for (acc, v) in dense.iter_mut().zip(partial) {
                        *acc += v;
                    }
                }
                Cells::Dense(dense)
            } else {
                Cells::Dense(count(0..n))
            }
        } else {
            let count = |range: std::ops::Range<usize>| -> FxHashMap<Box<[u32]>, u64> {
                let mut sparse: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
                // One scratch key per chunk, reused across every row and
                // shard segment; a fresh box is allocated only when a
                // cell is first seen.
                let mut key = vec![0u32; attrs.len()];
                let mut tally = |key: &[u32]| match sparse.get_mut(key) {
                    Some(c) => *c += 1,
                    None => {
                        sparse.insert(key.to_vec().into_boxed_slice(), 1);
                    }
                };
                match rows {
                    RowSet::All(_) => for_each_segment(table, attrs, range, |slices, local| {
                        for r in local {
                            for (slot, col) in key.iter_mut().zip(slices) {
                                *slot = col[r];
                            }
                            tally(&key);
                        }
                    }),
                    RowSet::Ids(_) => {
                        let columns: Vec<ColRef<'_>> =
                            attrs.iter().map(|&a| table.col(a)).collect();
                        for row in rows.slice(range) {
                            for (slot, col) in key.iter_mut().zip(&columns) {
                                *slot = col.at(row);
                            }
                            tally(&key);
                        }
                    }
                }
                sparse
            };
            let merged = if n >= PARALLEL_ROWS {
                // Fixed chunk layout + in-order merge: the merged map's
                // contents depend only on the data (this path also runs,
                // inline, at one thread).
                let mut partials = pool.map_chunks(n, SPARSE_ROW_CHUNK, count).into_iter();
                let mut sparse = partials.next().unwrap_or_default();
                for partial in partials {
                    for (key, c) in partial {
                        *sparse.entry(key).or_insert(0) += c;
                    }
                }
                sparse
            } else {
                count(0..n)
            };
            Cells::Sorted(SortedCells::from_map(attrs.len(), merged))
        };
        ContingencyTable::from_cells(attrs.to_vec(), dims, cells)
    }

    /// Builds from explicit cells, deriving the cached total and
    /// support (non-zero cell count) once.
    fn from_cells(attrs: Vec<AttrId>, dims: Vec<u32>, cells: Cells) -> Self {
        let (total, support) = match &cells {
            Cells::Dense(v) => (v.iter().sum(), v.iter().filter(|&&c| c > 0).count() as u64),
            Cells::Sorted(s) => (s.counts.iter().sum(), s.counts.len() as u64),
        };
        ContingencyTable {
            attrs,
            dims,
            total,
            support,
            cells,
        }
    }

    /// The attribute list, in storage order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Dimension (domain cardinality) per attribute.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Total count (number of contributing rows).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-zero cells (the observed support `m`). Cached at
    /// construction: the planner's cost model reads it for every table
    /// in the oracle cache when pricing a derivation.
    #[inline]
    pub fn support(&self) -> u64 {
        self.support
    }

    /// Approximate resident bytes of the cell storage — the planner's
    /// `support × key width` accounting, exported as the
    /// `hypdb_oracle_cache_bytes` gauge.
    pub fn approx_bytes(&self) -> u64 {
        match &self.cells {
            Cells::Dense(v) => 8 * v.len() as u64,
            Cells::Sorted(s) => 4 * s.keys.len() as u64 + 8 * s.counts.len() as u64,
        }
    }

    /// The count of one cell.
    pub fn get(&self, key: &[u32]) -> u64 {
        debug_assert_eq!(key.len(), self.attrs.len());
        match &self.cells {
            Cells::Dense(v) => {
                let mut idx = 0usize;
                for (&k, &d) in key.iter().zip(&self.dims) {
                    if k >= d {
                        return 0;
                    }
                    idx = idx * d as usize + k as usize;
                }
                v[idx]
            }
            Cells::Sorted(s) => s.get(key),
        }
    }

    /// Visits every non-zero cell as `(key, count)`, in ascending key
    /// order for both storage forms (sparse cells are *stored* sorted,
    /// so this is a sequential walk with no per-call sort; downstream
    /// float reductions rely on the canonical order).
    pub fn for_each<F: FnMut(&[u32], u64)>(&self, mut f: F) {
        match &self.cells {
            Cells::Dense(v) => {
                let mut key = vec![0u32; self.dims.len()];
                for (flat, &count) in v.iter().enumerate() {
                    if count > 0 {
                        // Decode the mixed-radix index.
                        let mut rem = flat;
                        for pos in (0..self.dims.len()).rev() {
                            let d = self.dims[pos] as usize;
                            key[pos] = (rem % d) as u32;
                            rem /= d;
                        }
                        f(&key, count);
                    }
                }
            }
            Cells::Sorted(s) => {
                for (i, &count) in s.counts.iter().enumerate() {
                    f(s.key(i), count);
                }
            }
        }
    }

    /// All non-zero cells, materialised.
    pub fn cells(&self) -> Vec<(Box<[u32]>, u64)> {
        let mut out = Vec::new();
        self.for_each(|k, c| out.push((k.to_vec().into_boxed_slice(), c)));
        out
    }

    /// Marginalises onto the attribute *positions* `keep` (indices into
    /// [`Self::attrs`], in the order they should appear in the result).
    ///
    /// A sparse parent marginalises by a sequential walk of its sorted
    /// cells — the cache-friendly path the planner's cost model prices
    /// as `support × key width`.
    pub fn marginal(&self, keep: &[usize]) -> ContingencyTable {
        let attrs: Vec<AttrId> = keep.iter().map(|&p| self.attrs[p]).collect();
        let dims: Vec<u32> = keep.iter().map(|&p| self.dims[p]).collect();
        let product: u128 = dims.iter().map(|&d| d as u128).product();
        let cells = if product <= DENSE_LIMIT {
            let mut dense = vec![0u64; product as usize];
            self.for_each(|key, count| {
                let mut idx = 0usize;
                for (&p, &d) in keep.iter().zip(&dims) {
                    idx = idx * d as usize + key[p] as usize;
                }
                dense[idx] += count;
            });
            Cells::Dense(dense)
        } else {
            match &self.cells {
                Cells::Sorted(s) => Cells::Sorted(s.project(keep)),
                // A dense parent's sub-products stay within DENSE_LIMIT,
                // so this arm is unreachable in practice; keep a correct
                // fallback rather than a panic.
                Cells::Dense(_) => {
                    let mut map: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
                    self.for_each(|key, count| {
                        let small: Box<[u32]> = keep.iter().map(|&p| key[p]).collect();
                        *map.entry(small).or_insert(0) += count;
                    });
                    Cells::Sorted(SortedCells::from_map(keep.len(), map))
                }
            }
        };
        ContingencyTable::from_cells(attrs, dims, cells)
    }

    /// Entropy (nats) of the joint distribution of this table's
    /// attributes, under the chosen estimator.
    ///
    /// The counts are put in canonical (sorted) order before the
    /// floating-point sum: entropy must be a pure function of the count
    /// multiset, however the table was built (fresh scan vs marginalised
    /// from a cached superset — a timing-dependent choice under parallel
    /// discovery).
    pub fn entropy(&self, estimator: EntropyEstimator) -> f64 {
        let mut counts = Vec::with_capacity(self.support() as usize);
        self.for_each(|_, c| counts.push(c));
        counts.sort_unstable();
        match estimator {
            EntropyEstimator::PlugIn => entropy_plugin(counts),
            EntropyEstimator::MillerMadow => entropy_miller_madow(counts),
        }
    }

    /// Converts a 2-attribute table to a dense [`CrossTab`].
    /// Panics unless the table has exactly two attributes.
    pub fn to_crosstab(&self) -> CrossTab {
        assert_eq!(self.attrs.len(), 2, "to_crosstab needs a 2-way table");
        let (r, c) = (self.dims[0] as usize, self.dims[1] as usize);
        let mut counts = vec![0u64; r * c];
        self.for_each(|key, count| {
            counts[key[0] as usize * c + key[1] as usize] += count;
        });
        CrossTab::new(r, c, counts)
    }
}

/// A stratified cross-tabulation builder: `(X, Y)` cross tabs within each
/// group of `Z`, the input shape of every independence test.
#[derive(Debug, Clone)]
pub struct Stratified;

impl Stratified {
    /// Builds the [`Strata`] of `(x, y)` conditioned on `z` over the
    /// selected rows of any [`Scan`] storage.
    pub fn build<S: Scan + ?Sized>(
        table: &S,
        rows: &RowSet,
        x: AttrId,
        y: AttrId,
        z: &[AttrId],
    ) -> Strata {
        let r = table.cardinality(x).max(1) as usize;
        let c = table.cardinality(y).max(1) as usize;
        let xcol = table.col(x);
        let ycol = table.col(y);
        if z.is_empty() {
            let mut tab = CrossTab::zeros(r, c);
            for row in rows.iter() {
                tab.add(xcol.at(row) as usize, ycol.at(row) as usize, 1);
            }
            return Strata::single(tab);
        }
        let zcols: Vec<ColRef<'_>> = z.iter().map(|&a| table.col(a)).collect();
        let mut groups: FxHashMap<Box<[u32]>, CrossTab> = FxHashMap::default();
        let mut key = vec![0u32; z.len()];
        for row in rows.iter() {
            for (slot, col) in key.iter_mut().zip(&zcols) {
                *slot = col.at(row);
            }
            let tab = groups
                .entry(key.clone().into_boxed_slice())
                .or_insert_with(|| CrossTab::zeros(r, c));
            tab.add(xcol.at(row) as usize, ycol.at(row) as usize, 1);
        }
        // Deterministic stratum order: per-stratum statistics are
        // combined with floating-point sums downstream, so fix a
        // canonical (sorted-by-key) order rather than exposing the
        // hash map's bucket order.
        let mut keyed: Vec<(Box<[u32]>, CrossTab)> = groups.into_iter().collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Strata::new(keyed.into_iter().map(|(_, tab)| tab).collect())
    }

    /// Like [`Stratified::build`] but also returning the group keys in
    /// the same order as the strata (needed by explanation ranking).
    pub fn build_keyed<S: Scan + ?Sized>(
        table: &S,
        rows: &RowSet,
        x: AttrId,
        y: AttrId,
        z: &[AttrId],
    ) -> (Vec<Box<[u32]>>, Strata) {
        let r = table.cardinality(x).max(1) as usize;
        let c = table.cardinality(y).max(1) as usize;
        let xcol = table.col(x);
        let ycol = table.col(y);
        let zcols: Vec<ColRef<'_>> = z.iter().map(|&a| table.col(a)).collect();
        let mut order: Vec<Box<[u32]>> = Vec::new();
        let mut index: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
        let mut tabs: Vec<CrossTab> = Vec::new();
        let mut key = vec![0u32; z.len()];
        for row in rows.iter() {
            for (slot, col) in key.iter_mut().zip(&zcols) {
                *slot = col.at(row);
            }
            let slot = match index.get(key.as_slice()) {
                Some(&i) => i,
                None => {
                    let boxed: Box<[u32]> = key.clone().into_boxed_slice();
                    order.push(boxed.clone());
                    index.insert(boxed, tabs.len());
                    tabs.push(CrossTab::zeros(r, c));
                    tabs.len() - 1
                }
            };
            tabs[slot].add(xcol.at(row) as usize, ycol.at(row) as usize, 1);
        }
        (order, Strata::new(tabs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableBuilder};

    fn sample() -> Table {
        let mut b = TableBuilder::new(["t", "y", "z"]);
        for (t, y, z, n) in [
            ("a", "0", "p", 3u32),
            ("a", "1", "p", 1),
            ("b", "0", "p", 2),
            ("b", "1", "q", 4),
            ("a", "1", "q", 2),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        b.finish()
    }

    fn attrs(t: &Table, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| t.attr(n).unwrap()).collect()
    }

    #[test]
    fn counts_match_data() {
        let t = sample();
        let a = attrs(&t, &["t", "y"]);
        let ct = ContingencyTable::from_table(&t, &t.all_rows(), &a);
        assert_eq!(ct.total(), 12);
        assert_eq!(ct.get(&[0, 0]), 3); // (a, 0)
        assert_eq!(ct.get(&[0, 1]), 3); // (a, 1)
        assert_eq!(ct.get(&[1, 0]), 2);
        assert_eq!(ct.get(&[1, 1]), 4);
        assert_eq!(ct.support(), 4);
    }

    #[test]
    fn marginal_sums_out() {
        let t = sample();
        let a = attrs(&t, &["t", "y", "z"]);
        let ct = ContingencyTable::from_table(&t, &t.all_rows(), &a);
        let m = ct.marginal(&[0]); // just "t"
        assert_eq!(m.total(), 12);
        assert_eq!(m.get(&[0]), 6);
        assert_eq!(m.get(&[1]), 6);
        // Reordered marginal (y, t).
        let yt = ct.marginal(&[1, 0]);
        assert_eq!(yt.attrs(), &[a[1], a[0]]);
        assert_eq!(yt.get(&[1, 1]), 4);
    }

    #[test]
    fn entropy_matches_direct_computation() {
        let t = sample();
        let a = attrs(&t, &["t"]);
        let ct = ContingencyTable::from_table(&t, &t.all_rows(), &a);
        let h = ct.entropy(EntropyEstimator::PlugIn);
        assert!((h - 2.0f64.ln()).abs() < 1e-12); // 6/6 split
    }

    #[test]
    fn crosstab_conversion() {
        let t = sample();
        let a = attrs(&t, &["t", "y"]);
        let ct = ContingencyTable::from_table(&t, &t.all_rows(), &a);
        let xt = ct.to_crosstab();
        assert_eq!(xt.get(0, 0), 3);
        assert_eq!(xt.get(1, 1), 4);
        assert_eq!(xt.total(), 12);
    }

    #[test]
    fn selection_restricts_counts() {
        let t = sample();
        let a = attrs(&t, &["t"]);
        let p = crate::Predicate::eq(&t, "z", "q").unwrap();
        let rows = p.select(&t);
        let ct = ContingencyTable::from_table(&t, &rows, &a);
        assert_eq!(ct.total(), 6);
        assert_eq!(ct.get(&[0]), 2); // a
        assert_eq!(ct.get(&[1]), 4); // b
    }

    #[test]
    fn stratified_matches_contingency() {
        let t = sample();
        let x = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let z = t.attr("z").unwrap();
        let s = Stratified::build(&t, &t.all_rows(), x, y, &[z]);
        assert_eq!(s.num_groups(), 2);
        assert_eq!(s.total(), 12);
        // CMI from strata must equal CMI from entropies (plug-in).
        let h = |ids: &[AttrId]| {
            ContingencyTable::from_table(&t, &t.all_rows(), ids).entropy(EntropyEstimator::PlugIn)
        };
        let cmi_ent = h(&[x, z]) + h(&[y, z]) - h(&[x, y, z]) - h(&[z]);
        assert!((s.cmi_plugin() - cmi_ent).abs() < 1e-12);
    }

    #[test]
    fn stratified_empty_conditioning() {
        let t = sample();
        let x = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let s = Stratified::build(&t, &t.all_rows(), x, y, &[]);
        assert_eq!(s.num_groups(), 1);
        assert_eq!(s.total(), 12);
    }

    #[test]
    fn keyed_strata_align() {
        let t = sample();
        let x = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let z = t.attr("z").unwrap();
        let (keys, s) = Stratified::build_keyed(&t, &t.all_rows(), x, y, &[z]);
        assert_eq!(keys.len(), s.num_groups());
        // First-seen group is "p" (code 0).
        assert_eq!(&*keys[0], &[0u32][..]);
        assert_eq!(s.groups()[0].total(), 6);
    }

    #[test]
    fn parallel_count_is_thread_count_invariant() {
        // Above PARALLEL_ROWS the chunked path engages; dense and sparse
        // attribute sets must both produce byte-identical tables (cells
        // *and* iteration order) at every thread count.
        let names = ["a", "b", "c", "d"];
        let mut b = TableBuilder::new(names);
        for i in 0..40_000usize {
            let vals: Vec<String> = (0..4)
                .map(|j| ((i * 7 + j * 13) % 40).to_string())
                .collect();
            b.push_row(vals.iter().map(String::as_str)).unwrap();
        }
        let t = b.finish();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        // 2 attrs: 40*40 cells -> dense. 4 attrs: 40^4 > 2^20 -> sparse.
        for attrs in [&ids[0..2], &ids[0..4]] {
            let count = |threads: usize| {
                hypdb_exec::set_global_threads(threads);
                let ct = ContingencyTable::from_table(&t, &t.all_rows(), attrs);
                hypdb_exec::set_global_threads(0);
                ct
            };
            let base = count(1);
            assert_eq!(base.total(), 40_000);
            for threads in [2, 4, 7] {
                let ct = count(threads);
                assert_eq!(ct.total(), base.total());
                assert_eq!(ct.cells(), base.cells(), "threads={threads}");
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        // Force sparse by a huge fake dimension product: build a table
        // with many attributes instead (7 attrs x 8 codes = 2^21 cells).
        let names: Vec<String> = (0..7).map(|i| format!("a{i}")).collect();
        let mut b = TableBuilder::new(names);
        for i in 0..64u32 {
            let vals: Vec<String> = (0..7).map(|j| ((i >> j) % 8).to_string()).collect();
            b.push_row(vals.iter().map(String::as_str)).unwrap();
        }
        let t = b.finish();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let full = ContingencyTable::from_table(&t, &t.all_rows(), &ids);
        assert_eq!(full.total(), 64);
        // Marginal over two attrs must agree with direct counting.
        let m = full.marginal(&[0, 1]);
        let direct = ContingencyTable::from_table(&t, &t.all_rows(), &ids[0..2]);
        let mut cells_a = m.cells();
        let mut cells_b = direct.cells();
        cells_a.sort();
        cells_b.sort();
        assert_eq!(cells_a, cells_b);
    }

    #[test]
    fn sorted_cells_iterate_in_key_order_without_duplicates() {
        // Sparse storage keeps cells pre-sorted: iteration must visit
        // strictly ascending keys (no per-call sort, no merged-run
        // duplicates) and the cached support must match the walk.
        let names: Vec<String> = (0..7).map(|i| format!("a{i}")).collect();
        let mut b = TableBuilder::new(names);
        for i in 0..200u32 {
            let vals: Vec<String> = (0..7)
                .map(|j| ((i.wrapping_mul(31) >> j) % 8).to_string())
                .collect();
            b.push_row(vals.iter().map(String::as_str)).unwrap();
        }
        let t = b.finish();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let ct = ContingencyTable::from_table(&t, &t.all_rows(), &ids);
        let mut seen = 0u64;
        let mut prev: Option<Vec<u32>> = None;
        ct.for_each(|key, count| {
            assert!(count > 0);
            if let Some(p) = &prev {
                assert!(p.as_slice() < key, "cells out of order");
            }
            prev = Some(key.to_vec());
            // Binary-search lookup agrees with the walk.
            assert_eq!(ct.get(key), count);
            seen += 1;
        });
        assert_eq!(seen, ct.support());
        assert!(ct.approx_bytes() >= seen * (4 * 7 + 8));
    }

    #[test]
    fn sparse_marginals_agree_prefix_and_permuted() {
        // 8 attrs x 8 codes = 2^24 cells: the full table and its 7-attr
        // marginals all stay sparse, exercising both the prefix
        // fast path and the project+sort general path.
        let names: Vec<String> = (0..8).map(|i| format!("a{i}")).collect();
        let mut b = TableBuilder::new(names);
        for i in 0..300u32 {
            let vals: Vec<String> = (0..8)
                .map(|j| ((i.wrapping_mul(2654435761) >> (2 * j)) % 8).to_string())
                .collect();
            b.push_row(vals.iter().map(String::as_str)).unwrap();
        }
        let t = b.finish();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let full = ContingencyTable::from_table(&t, &t.all_rows(), &ids);
        // Prefix projection: [a0..a6] — sorted order survives, run merge.
        let prefix = full.marginal(&[0, 1, 2, 3, 4, 5, 6]);
        let direct_prefix = ContingencyTable::from_table(&t, &t.all_rows(), &ids[0..7]);
        assert_eq!(prefix.cells(), direct_prefix.cells());
        // Permuted projection: [a1, a0, a7, a2, a3, a4, a5] — needs the
        // sort path; compare against a direct count in the same order.
        let keep = [1usize, 0, 7, 2, 3, 4, 5];
        let perm_attrs: Vec<AttrId> = keep.iter().map(|&p| ids[p]).collect();
        let perm = full.marginal(&keep);
        let direct_perm = ContingencyTable::from_table(&t, &t.all_rows(), &perm_attrs);
        assert_eq!(perm.attrs(), perm_attrs.as_slice());
        assert_eq!(perm.cells(), direct_perm.cells());
    }
}
