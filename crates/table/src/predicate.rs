//! WHERE-clause predicates over categorical tables.
//!
//! The paper's queries (Listing 1) filter with conjunctions of
//! `attr = 'v'` and `attr IN (...)`; we additionally support disjunction
//! and negation so arbitrary contexts `Γ_i = C ∧ (X = x_i)` compose.

use crate::rows::RowSet;
use crate::scan::Scan;
use crate::schema::AttrId;
use crate::Result;
use hypdb_exec::ThreadPool;

/// A boolean predicate over rows, with attribute values resolved to
/// dictionary codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Matches no row (e.g. equality with a value absent from the data).
    False,
    /// `attr = code`.
    Eq(AttrId, u32),
    /// `attr IN (codes)`.
    In(AttrId, Vec<u32>),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value`, resolving names and values against any [`Scan`]
    /// storage. A value that never occurs yields [`Predicate::False`].
    pub fn eq<S: Scan + ?Sized>(table: &S, attr: &str, value: &str) -> Result<Predicate> {
        let a = table.attr(attr)?;
        Ok(match table.dict(a).code(value) {
            Some(code) => Predicate::Eq(a, code),
            None => Predicate::False,
        })
    }

    /// `attr IN (values)`; unknown values are dropped from the list.
    pub fn is_in<'a, S, I>(table: &S, attr: &str, values: I) -> Result<Predicate>
    where
        S: Scan + ?Sized,
        I: IntoIterator<Item = &'a str>,
    {
        let a = table.attr(attr)?;
        let mut codes: Vec<u32> = values
            .into_iter()
            .filter_map(|v| table.dict(a).code(v))
            .collect();
        codes.sort_unstable();
        codes.dedup();
        Ok(if codes.is_empty() {
            Predicate::False
        } else {
            Predicate::In(a, codes)
        })
    }

    /// Conjunction of predicates (flattens nested `And`s).
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut out = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Predicate::True,
            1 => out.pop().expect("len checked"),
            _ => Predicate::And(out),
        }
    }

    /// Whether global row `row` of `table` satisfies the predicate.
    pub fn matches<S: Scan + ?Sized>(&self, table: &S, row: u32) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(a, code) => table.code(*a, row) == *code,
            Predicate::In(a, codes) => codes.binary_search(&table.code(*a, row)).is_ok(),
            Predicate::And(ps) => ps.iter().all(|p| p.matches(table, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(table, row)),
            Predicate::Not(p) => !p.matches(table, row),
        }
    }

    /// Collects the attributes the predicate references (with
    /// duplicates).
    fn collect_attrs(&self, out: &mut Vec<AttrId>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Eq(a, _) | Predicate::In(a, _) => out.push(*a),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_attrs(out);
                }
            }
            Predicate::Not(p) => p.collect_attrs(out),
        }
    }

    /// Evaluates the predicate against the code slices of the
    /// referenced attributes at local row `r`; `pos[a.index()]` maps an
    /// attribute to its slot in `slices`.
    fn matches_slices(&self, pos: &[usize], slices: &[&[u32]], r: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(a, code) => slices[pos[a.index()]][r] == *code,
            Predicate::In(a, codes) => codes.binary_search(&slices[pos[a.index()]][r]).is_ok(),
            Predicate::And(ps) => ps.iter().all(|p| p.matches_slices(pos, slices, r)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches_slices(pos, slices, r)),
            Predicate::Not(p) => !p.matches_slices(pos, slices, r),
        }
    }

    /// Evaluates the predicate over the whole relation: the `scan_filter`
    /// primitive. Each shard is filtered independently (fanned out over
    /// the worker pool) into a partial id list; the partials are
    /// concatenated in shard order, so the result is the ascending id
    /// list regardless of shard size or thread count. Per-shard setup
    /// gathers only the attributes the predicate references, not the
    /// whole schema.
    pub fn select<S: Scan + ?Sized>(&self, table: &S) -> RowSet {
        match self {
            Predicate::True => table.all_rows(),
            Predicate::False => RowSet::Ids(Vec::new()),
            _ => {
                let mut used: Vec<AttrId> = Vec::new();
                self.collect_attrs(&mut used);
                used.sort_unstable();
                used.dedup();
                // Attribute -> slot in the per-shard slice list (built
                // once per select, not per shard).
                let mut pos = vec![usize::MAX; table.nattrs()];
                for (i, a) in used.iter().enumerate() {
                    pos[a.index()] = i;
                }
                let n = table.nrows();
                let shard_rows = table.shard_rows().max(1);
                let parts = ThreadPool::current().map_indices(table.n_shards(), |s| {
                    let slices: Vec<&[u32]> =
                        used.iter().map(|&a| table.shard_codes(s, a)).collect();
                    let start = s * shard_rows;
                    // Shard length from the geometry, so attr-less
                    // predicates (e.g. an empty conjunction) still
                    // visit every row.
                    let len = shard_rows.min(n - start);
                    let mut ids = Vec::new();
                    for r in 0..len {
                        if self.matches_slices(&pos, &slices, r) {
                            ids.push((start + r) as u32);
                        }
                    }
                    ids
                });
                let mut ids = Vec::with_capacity(parts.iter().map(Vec::len).sum());
                for part in parts {
                    ids.extend(part);
                }
                RowSet::Ids(ids)
            }
        }
    }

    /// Evaluates the predicate within an existing selection.
    pub fn select_within<S: Scan + ?Sized>(&self, table: &S, rows: &RowSet) -> RowSet {
        match self {
            Predicate::True => rows.clone(),
            Predicate::False => RowSet::Ids(Vec::new()),
            _ => {
                let mut ids = Vec::new();
                for row in rows.iter() {
                    if self.matches(table, row) {
                        ids.push(row);
                    }
                }
                RowSet::Ids(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableBuilder};

    fn sample() -> Table {
        let mut b = TableBuilder::new(["carrier", "airport"]);
        for (c, a) in [
            ("AA", "COS"),
            ("UA", "ROC"),
            ("AA", "ROC"),
            ("DL", "COS"),
            ("UA", "MFE"),
        ] {
            b.push_row([c, a]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn eq_selects_matching_rows() {
        let t = sample();
        let p = Predicate::eq(&t, "carrier", "AA").unwrap();
        assert_eq!(p.select(&t), RowSet::Ids(vec![0, 2]));
    }

    #[test]
    fn eq_unknown_value_is_false() {
        let t = sample();
        let p = Predicate::eq(&t, "carrier", "ZZ").unwrap();
        assert_eq!(p, Predicate::False);
        assert!(p.select(&t).is_empty());
    }

    #[test]
    fn in_filters_and_dedups() {
        let t = sample();
        let p = Predicate::is_in(&t, "carrier", ["AA", "UA", "AA", "ZZ"]).unwrap();
        assert_eq!(p.select(&t), RowSet::Ids(vec![0, 1, 2, 4]));
    }

    #[test]
    fn in_all_unknown_is_false() {
        let t = sample();
        let p = Predicate::is_in(&t, "carrier", ["Q1", "Q2"]).unwrap();
        assert_eq!(p, Predicate::False);
    }

    #[test]
    fn and_combines() {
        let t = sample();
        let p = Predicate::and([
            Predicate::is_in(&t, "carrier", ["AA", "UA"]).unwrap(),
            Predicate::eq(&t, "airport", "ROC").unwrap(),
        ]);
        assert_eq!(p.select(&t), RowSet::Ids(vec![1, 2]));
    }

    #[test]
    fn and_simplifies() {
        assert_eq!(Predicate::and([]), Predicate::True);
        assert_eq!(
            Predicate::and([Predicate::True, Predicate::True]),
            Predicate::True
        );
        let inner = Predicate::And(vec![Predicate::False]);
        assert_eq!(Predicate::and([inner]), Predicate::False);
    }

    #[test]
    fn or_and_not() {
        let t = sample();
        let p = Predicate::Or(vec![
            Predicate::eq(&t, "carrier", "DL").unwrap(),
            Predicate::eq(&t, "airport", "MFE").unwrap(),
        ]);
        assert_eq!(p.select(&t), RowSet::Ids(vec![3, 4]));
        let np = Predicate::Not(Box::new(p));
        assert_eq!(np.select(&t), RowSet::Ids(vec![0, 1, 2]));
    }

    #[test]
    fn select_handles_attrless_predicates() {
        // Raw empty conjunctions/disjunctions (not simplified by
        // `Predicate::and`) reach the generic scan path, which must
        // still visit every row despite referencing no attribute.
        let t = sample();
        let all: Vec<u32> = (0..5).collect();
        assert_eq!(Predicate::And(vec![]).select(&t), RowSet::Ids(all.clone()));
        assert!(Predicate::Or(vec![]).select(&t).is_empty());
        assert_eq!(
            Predicate::Not(Box::new(Predicate::False)).select(&t),
            RowSet::Ids(all)
        );
    }

    #[test]
    fn select_within_respects_subset() {
        let t = sample();
        let base = RowSet::Ids(vec![1, 2, 3]);
        let p = Predicate::is_in(&t, "carrier", ["AA", "UA"]).unwrap();
        assert_eq!(p.select_within(&t, &base), RowSet::Ids(vec![1, 2]));
        assert_eq!(Predicate::True.select_within(&t, &base), base);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = sample();
        assert!(Predicate::eq(&t, "nope", "AA").is_err());
    }
}
