//! WHERE-clause predicates over categorical tables.
//!
//! The paper's queries (Listing 1) filter with conjunctions of
//! `attr = 'v'` and `attr IN (...)`; we additionally support disjunction
//! and negation so arbitrary contexts `Γ_i = C ∧ (X = x_i)` compose.

use crate::rows::RowSet;
use crate::schema::AttrId;
use crate::table::Table;
use crate::Result;

/// A boolean predicate over rows, with attribute values resolved to
/// dictionary codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Matches no row (e.g. equality with a value absent from the data).
    False,
    /// `attr = code`.
    Eq(AttrId, u32),
    /// `attr IN (codes)`.
    In(AttrId, Vec<u32>),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value`, resolving names and values against `table`.
    /// A value that never occurs yields [`Predicate::False`].
    pub fn eq(table: &Table, attr: &str, value: &str) -> Result<Predicate> {
        let a = table.attr(attr)?;
        Ok(match table.column(a).dict().code(value) {
            Some(code) => Predicate::Eq(a, code),
            None => Predicate::False,
        })
    }

    /// `attr IN (values)`; unknown values are dropped from the list.
    pub fn is_in<'a, I>(table: &Table, attr: &str, values: I) -> Result<Predicate>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let a = table.attr(attr)?;
        let mut codes: Vec<u32> = values
            .into_iter()
            .filter_map(|v| table.column(a).dict().code(v))
            .collect();
        codes.sort_unstable();
        codes.dedup();
        Ok(if codes.is_empty() {
            Predicate::False
        } else {
            Predicate::In(a, codes)
        })
    }

    /// Conjunction of predicates (flattens nested `And`s).
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut out = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Predicate::True,
            1 => out.pop().expect("len checked"),
            _ => Predicate::And(out),
        }
    }

    /// Whether row `row` of `table` satisfies the predicate.
    pub fn matches(&self, table: &Table, row: u32) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(a, code) => table.code(*a, row) == *code,
            Predicate::In(a, codes) => codes.binary_search(&table.code(*a, row)).is_ok(),
            Predicate::And(ps) => ps.iter().all(|p| p.matches(table, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(table, row)),
            Predicate::Not(p) => !p.matches(table, row),
        }
    }

    /// Evaluates the predicate over the whole table.
    pub fn select(&self, table: &Table) -> RowSet {
        match self {
            Predicate::True => table.all_rows(),
            Predicate::False => RowSet::Ids(Vec::new()),
            _ => {
                let n = table.nrows() as u32;
                let mut ids = Vec::new();
                for row in 0..n {
                    if self.matches(table, row) {
                        ids.push(row);
                    }
                }
                RowSet::Ids(ids)
            }
        }
    }

    /// Evaluates the predicate within an existing selection.
    pub fn select_within(&self, table: &Table, rows: &RowSet) -> RowSet {
        match self {
            Predicate::True => rows.clone(),
            Predicate::False => RowSet::Ids(Vec::new()),
            _ => {
                let mut ids = Vec::new();
                for row in rows.iter() {
                    if self.matches(table, row) {
                        ids.push(row);
                    }
                }
                RowSet::Ids(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample() -> Table {
        let mut b = TableBuilder::new(["carrier", "airport"]);
        for (c, a) in [
            ("AA", "COS"),
            ("UA", "ROC"),
            ("AA", "ROC"),
            ("DL", "COS"),
            ("UA", "MFE"),
        ] {
            b.push_row([c, a]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn eq_selects_matching_rows() {
        let t = sample();
        let p = Predicate::eq(&t, "carrier", "AA").unwrap();
        assert_eq!(p.select(&t), RowSet::Ids(vec![0, 2]));
    }

    #[test]
    fn eq_unknown_value_is_false() {
        let t = sample();
        let p = Predicate::eq(&t, "carrier", "ZZ").unwrap();
        assert_eq!(p, Predicate::False);
        assert!(p.select(&t).is_empty());
    }

    #[test]
    fn in_filters_and_dedups() {
        let t = sample();
        let p = Predicate::is_in(&t, "carrier", ["AA", "UA", "AA", "ZZ"]).unwrap();
        assert_eq!(p.select(&t), RowSet::Ids(vec![0, 1, 2, 4]));
    }

    #[test]
    fn in_all_unknown_is_false() {
        let t = sample();
        let p = Predicate::is_in(&t, "carrier", ["Q1", "Q2"]).unwrap();
        assert_eq!(p, Predicate::False);
    }

    #[test]
    fn and_combines() {
        let t = sample();
        let p = Predicate::and([
            Predicate::is_in(&t, "carrier", ["AA", "UA"]).unwrap(),
            Predicate::eq(&t, "airport", "ROC").unwrap(),
        ]);
        assert_eq!(p.select(&t), RowSet::Ids(vec![1, 2]));
    }

    #[test]
    fn and_simplifies() {
        assert_eq!(Predicate::and([]), Predicate::True);
        assert_eq!(
            Predicate::and([Predicate::True, Predicate::True]),
            Predicate::True
        );
        let inner = Predicate::And(vec![Predicate::False]);
        assert_eq!(Predicate::and([inner]), Predicate::False);
    }

    #[test]
    fn or_and_not() {
        let t = sample();
        let p = Predicate::Or(vec![
            Predicate::eq(&t, "carrier", "DL").unwrap(),
            Predicate::eq(&t, "airport", "MFE").unwrap(),
        ]);
        assert_eq!(p.select(&t), RowSet::Ids(vec![3, 4]));
        let np = Predicate::Not(Box::new(p));
        assert_eq!(np.select(&t), RowSet::Ids(vec![0, 1, 2]));
    }

    #[test]
    fn select_within_respects_subset() {
        let t = sample();
        let base = RowSet::Ids(vec![1, 2, 3]);
        let p = Predicate::is_in(&t, "carrier", ["AA", "UA"]).unwrap();
        assert_eq!(p.select_within(&t, &base), RowSet::Ids(vec![1, 2]));
        assert_eq!(Predicate::True.select_within(&t, &base), base);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = sample();
        assert!(Predicate::eq(&t, "nope", "AA").is_err());
    }
}
