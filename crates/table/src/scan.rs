//! The storage-access abstraction every counting kernel is written
//! against.
//!
//! [`Scan`] models a dictionary-encoded categorical relation as an
//! ordered sequence of **shards**: fixed-size row ranges, each exposing
//! one contiguous `u32` code slice per attribute. A monolithic
//! [`Table`](crate::Table) is the degenerate single-shard case; a
//! partitioned store (`hypdb-store`'s `ShardedTable`) has many. The
//! codes are always in the **global** dictionary space — shard
//! boundaries are an artefact of storage, never of meaning — so every
//! kernel produces byte-identical results for any shard layout.
//!
//! Kernels get two access styles:
//!
//! * **Segmented** ([`for_each_segment`]) — whole-table scans walk
//!   maximal per-shard runs with direct slice indexing (no per-row
//!   shard arithmetic; on a monolithic table this is exactly the old
//!   contiguous fast path).
//! * **Random** ([`ColRef`]) — selection-driven loops (`RowSet::Ids`)
//!   resolve an arbitrary global row id to its shard in O(1) because
//!   shards are fixed-size.

use crate::column::Dictionary;
use crate::error::{Error, Result};
use crate::rows::RowSet;
use crate::schema::{AttrId, Schema};
use crate::table::Table;

/// Read access to a dictionary-encoded relation stored as fixed-size
/// row shards.
///
/// Required methods describe the storage layout; everything else —
/// name resolution, O(1) row access, numeric decoding — is provided.
/// Implementations must uphold two invariants:
///
/// 1. every shard except the last holds exactly [`Scan::shard_rows`]
///    rows (the last may be shorter, never longer),
/// 2. codes are in the global dictionary space of [`Scan::dict`] —
///    identical to what a monolithic [`Table`] built from the same row
///    stream would assign.
pub trait Scan: Sync {
    /// The schema.
    fn schema(&self) -> &Schema;

    /// Total number of rows across all shards.
    fn nrows(&self) -> usize;

    /// The merged (global) dictionary of an attribute.
    fn dict(&self, attr: AttrId) -> &Dictionary;

    /// Rows per shard: every shard except the last has exactly this
    /// many. Always ≥ 1 (a monolithic table reports its row count).
    fn shard_rows(&self) -> usize;

    /// The global-code slice of `attr` within shard `shard`.
    fn shard_codes(&self, shard: usize, attr: AttrId) -> &[u32];

    /// Number of shards (0 for an empty relation).
    fn n_shards(&self) -> usize {
        self.nrows().div_ceil(self.shard_rows().max(1))
    }

    /// Number of attributes.
    fn nattrs(&self) -> usize {
        self.schema().len()
    }

    /// Resolves an attribute name.
    fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema().attr(name)
    }

    /// Resolves several attribute names at once.
    fn attrs<'n, I>(&self, names: I) -> Result<Vec<AttrId>>
    where
        I: IntoIterator<Item = &'n str>,
        Self: Sized,
    {
        names.into_iter().map(|n| self.schema().attr(n)).collect()
    }

    /// Observed cardinality of an attribute (global dictionary size).
    fn cardinality(&self, attr: AttrId) -> u32 {
        self.dict(attr).len() as u32
    }

    /// The code of `attr` at global row `row`.
    #[inline]
    fn code(&self, attr: AttrId, row: u32) -> u32 {
        let sr = self.shard_rows().max(1);
        let (shard, local) = (row as usize / sr, row as usize % sr);
        self.shard_codes(shard, attr)[local]
    }

    /// The string value of `attr` at global row `row`.
    fn value(&self, attr: AttrId, row: u32) -> &str {
        self.dict(attr).value(self.code(attr, row))
    }

    /// Looks up the dictionary code of `value` in `attr`.
    fn code_of(&self, attr: AttrId, value: &str) -> Result<u32> {
        self.dict(attr)
            .code(value)
            .ok_or_else(|| Error::UnknownValue {
                attr: self.schema().name(attr).to_string(),
                value: value.to_string(),
            })
    }

    /// Per-code numeric interpretation of an attribute (parses each
    /// dictionary entry as `f64`), used for `avg(Y)` aggregation.
    fn numeric_codes(&self, attr: AttrId) -> Result<Vec<f64>> {
        let name = self.schema().name(attr);
        self.dict(attr)
            .values()
            .iter()
            .map(|v| {
                v.trim().parse::<f64>().map_err(|_| Error::NonNumericValue {
                    attr: name.to_string(),
                    value: v.clone(),
                })
            })
            .collect()
    }

    /// All rows as a [`RowSet`].
    fn all_rows(&self) -> RowSet {
        RowSet::All(self.nrows() as u32)
    }

    /// An O(1) random-access view of one attribute's codes.
    fn col(&self, attr: AttrId) -> ColRef<'_> {
        match self.n_shards() {
            0 => ColRef::Single(&[]),
            1 => ColRef::Single(self.shard_codes(0, attr)),
            n => ColRef::Sharded {
                shards: (0..n).map(|s| self.shard_codes(s, attr)).collect(),
                shard_rows: self.shard_rows().max(1) as u32,
            },
        }
    }
}

impl Scan for Table {
    fn schema(&self) -> &Schema {
        Table::schema(self)
    }

    fn nrows(&self) -> usize {
        Table::nrows(self)
    }

    fn dict(&self, attr: AttrId) -> &Dictionary {
        self.column(attr).dict()
    }

    fn shard_rows(&self) -> usize {
        Table::nrows(self).max(1)
    }

    fn shard_codes(&self, shard: usize, attr: AttrId) -> &[u32] {
        debug_assert_eq!(shard, 0, "a monolithic table is a single shard");
        self.column(attr).codes()
    }
}

/// Random-access view of one attribute's codes across shards.
///
/// Single-shard access is a direct slice index; multi-shard access
/// resolves the shard by division (shards are fixed-size).
#[derive(Debug, Clone)]
pub enum ColRef<'a> {
    /// One contiguous slice (monolithic tables, single-shard stores).
    Single(&'a [u32]),
    /// Fixed-size shard slices.
    Sharded {
        /// Per-shard code slices, in shard order.
        shards: Vec<&'a [u32]>,
        /// Rows per shard (every shard except the last).
        shard_rows: u32,
    },
}

impl ColRef<'_> {
    /// The code at global row `row`.
    #[inline]
    pub fn at(&self, row: u32) -> u32 {
        match self {
            ColRef::Single(codes) => codes[row as usize],
            ColRef::Sharded { shards, shard_rows } => {
                shards[(row / shard_rows) as usize][(row % shard_rows) as usize]
            }
        }
    }

    /// Total number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColRef::Single(codes) => codes.len(),
            ColRef::Sharded { shards, .. } => shards.iter().map(|s| s.len()).sum(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Walks the global row range `range` as maximal per-shard runs,
/// calling `f(slices, local_range)` once per run with the per-attribute
/// code slices of that shard and the *local* row range within it.
///
/// This is the whole-table scan primitive: kernels index the slices
/// directly (no per-row shard arithmetic), and on a monolithic table the
/// single call is exactly the old contiguous loop. Runs are visited in
/// ascending row order, so chunk-ordered merges stay deterministic.
pub fn for_each_segment<S, F>(scan: &S, attrs: &[AttrId], range: std::ops::Range<usize>, mut f: F)
where
    S: Scan + ?Sized,
    F: FnMut(&[&[u32]], std::ops::Range<usize>),
{
    let sr = scan.shard_rows().max(1);
    let mut slices: Vec<&[u32]> = Vec::with_capacity(attrs.len());
    let mut pos = range.start;
    while pos < range.end {
        let shard = pos / sr;
        let shard_start = shard * sr;
        let seg_end = range.end.min(shard_start + sr);
        slices.clear();
        slices.extend(attrs.iter().map(|&a| scan.shard_codes(shard, a)));
        f(&slices, (pos - shard_start)..(seg_end - shard_start));
        pos = seg_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample() -> Table {
        let mut b = TableBuilder::new(["a", "b"]);
        for i in 0..10u32 {
            b.push_row([i.to_string().as_str(), (i % 3).to_string().as_str()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn table_is_a_single_shard() {
        let t = sample();
        assert_eq!(Scan::n_shards(&t), 1);
        assert_eq!(Scan::shard_rows(&t), 10);
        let a = Scan::attr(&t, "a").unwrap();
        assert_eq!(t.shard_codes(0, a), t.column(a).codes());
        assert_eq!(Scan::code(&t, a, 7), t.code(a, 7));
        assert_eq!(Scan::value(&t, a, 7), "7");
    }

    #[test]
    fn colref_single_matches_direct() {
        let t = sample();
        let b = Scan::attr(&t, "b").unwrap();
        let col = t.col(b);
        assert_eq!(col.len(), 10);
        for row in 0..10u32 {
            assert_eq!(col.at(row), t.code(b, row));
        }
    }

    #[test]
    fn colref_sharded_resolves_rows() {
        let t = sample();
        let b = Scan::attr(&t, "b").unwrap();
        let codes = t.column(b).codes();
        // Hand-build a 3-rows-per-shard view of the same column.
        let col = ColRef::Sharded {
            shards: codes.chunks(3).collect(),
            shard_rows: 3,
        };
        assert_eq!(col.len(), 10);
        for row in 0..10u32 {
            assert_eq!(col.at(row), codes[row as usize]);
        }
    }

    #[test]
    fn segments_cover_range_in_order() {
        let t = sample();
        let ids: Vec<AttrId> = t.schema().attr_ids().collect();
        let mut seen: Vec<u32> = Vec::new();
        for_each_segment(&t, &ids, 2..9, |slices, local| {
            assert_eq!(slices.len(), 2);
            for r in local {
                seen.push(slices[0][r]);
            }
        });
        let expect: Vec<u32> = (2..9).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn empty_table_has_no_shards() {
        let t = TableBuilder::new(["x"]).finish();
        assert_eq!(Scan::n_shards(&t), 0);
        let x = Scan::attr(&t, "x").unwrap();
        assert!(t.col(x).is_empty());
    }
}
