//! Dictionary-encoded categorical columns.

use crate::error::{Error, Result};
use crate::hash::FxHashMap;

/// An order-of-first-appearance dictionary mapping category strings to
/// dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its (possibly fresh) code.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), code);
        code
    }

    /// Looks a value up without inserting.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The string for a code.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values (the attribute's observed cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no value has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

/// A dictionary-encoded column: one `u32` code per row.
#[derive(Debug, Clone, Default)]
pub struct Column {
    codes: Vec<u32>,
    dict: Dictionary,
}

impl Column {
    /// Empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a column directly from codes and a dictionary. The caller
    /// guarantees every code is `< dict.len()`.
    pub fn from_parts(codes: Vec<u32>, dict: Dictionary) -> Self {
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len().max(1)));
        Column { codes, dict }
    }

    /// Appends a raw string value.
    pub fn push(&mut self, value: &str) {
        let code = self.dict.intern(value);
        self.codes.push(code);
    }

    /// Appends an already-interned code (must be valid for this dict).
    pub fn push_code(&mut self, code: u32) {
        debug_assert!((code as usize) < self.dict.len());
        self.codes.push(code);
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code at `row`.
    #[inline]
    pub fn code_at(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The string value at `row`.
    pub fn value_at(&self, row: usize) -> &str {
        self.dict.value(self.codes[row])
    }

    /// The raw code slice.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary.
    #[inline]
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (for generators that pre-intern
    /// a domain before pushing codes).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Observed cardinality (dictionary size).
    #[inline]
    pub fn cardinality(&self) -> u32 {
        self.dict.len() as u32
    }

    /// Per-code numeric interpretation: parses every dictionary entry as
    /// an `f64`. Fails on the first non-numeric entry.
    pub fn numeric_codes(&self, attr_name: &str) -> Result<Vec<f64>> {
        self.dict
            .values()
            .iter()
            .map(|v| {
                v.trim().parse::<f64>().map_err(|_| Error::NonNumericValue {
                    attr: attr_name.to_string(),
                    value: v.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), "b");
        assert_eq!(d.code("b"), Some(1));
        assert_eq!(d.code("zzz"), None);
    }

    #[test]
    fn column_roundtrip() {
        let mut c = Column::new();
        for v in ["x", "y", "x", "z"] {
            c.push(v);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.value_at(2), "x");
        assert_eq!(c.codes(), &[0, 1, 0, 2]);
    }

    #[test]
    fn numeric_codes_parse() {
        let mut c = Column::new();
        c.push("1");
        c.push("0");
        c.push(" 2.5 ");
        assert_eq!(c.numeric_codes("v").unwrap(), vec![1.0, 0.0, 2.5]);
    }

    #[test]
    fn numeric_codes_reject_text() {
        let mut c = Column::new();
        c.push("1");
        c.push("oops");
        let err = c.numeric_codes("v").unwrap_err();
        assert!(matches!(err, Error::NonNumericValue { .. }));
    }
}
