//! Row selections: the result of evaluating a WHERE predicate.

/// A set of selected row indices.
///
/// `All` avoids materialising `0..n` for whole-table scans; `Ids` holds
/// an ascending list of row indices for sub-populations (the *contexts*
/// of §2 select sub-populations through the WHERE condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowSet {
    /// Every row of a table with the given row count.
    All(u32),
    /// An explicit ascending list of row ids.
    Ids(Vec<u32>),
}

impl RowSet {
    /// Number of selected rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RowSet::All(n) => *n as usize,
            RowSet::Ids(ids) => ids.len(),
        }
    }

    /// True when the selection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the selected row indices in ascending order.
    pub fn iter(&self) -> RowIter<'_> {
        match self {
            RowSet::All(n) => RowIter::Range(0..*n),
            RowSet::Ids(ids) => RowIter::Slice(ids.iter()),
        }
    }

    /// Iterates positions `range` of the selection (the sub-sequence of
    /// [`RowSet::iter`] between those positions) — the chunk view used
    /// by parallel scans. `range` must lie within `0..len()`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> RowIter<'_> {
        match self {
            RowSet::All(_) => RowIter::Range(range.start as u32..range.end as u32),
            RowSet::Ids(ids) => RowIter::Slice(ids[range].iter()),
        }
    }

    /// Intersects with another selection over the same table.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        match (self, other) {
            (RowSet::All(_), _) => other.clone(),
            (_, RowSet::All(_)) => self.clone(),
            (RowSet::Ids(a), RowSet::Ids(b)) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                RowSet::Ids(out)
            }
        }
    }

    /// Unions with another selection over the same table.
    pub fn union(&self, other: &RowSet) -> RowSet {
        match (self, other) {
            (RowSet::All(n), _) | (_, RowSet::All(n)) => RowSet::All(*n),
            (RowSet::Ids(a), RowSet::Ids(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                RowSet::Ids(out)
            }
        }
    }

    /// Complements the selection relative to a table of `n` rows.
    pub fn complement(&self, n: u32) -> RowSet {
        match self {
            RowSet::All(_) => RowSet::Ids(Vec::new()),
            RowSet::Ids(ids) => {
                let mut out = Vec::with_capacity(n as usize - ids.len());
                let mut next = ids.iter().copied().peekable();
                for row in 0..n {
                    if next.peek() == Some(&row) {
                        next.next();
                    } else {
                        out.push(row);
                    }
                }
                RowSet::Ids(out)
            }
        }
    }
}

/// Iterator over selected rows.
pub enum RowIter<'a> {
    /// Contiguous range (whole table).
    Range(std::ops::Range<u32>),
    /// Explicit id list.
    Slice(std::slice::Iter<'a, u32>),
}

impl Iterator for RowIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            RowIter::Range(r) => r.next(),
            RowIter::Slice(s) => s.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Range(r) => r.size_hint(),
            RowIter::Slice(s) => s.size_hint(),
        }
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = u32;
    type IntoIter = RowIter<'a>;

    fn into_iter(self) -> RowIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> RowSet {
        RowSet::Ids(v.to_vec())
    }

    #[test]
    fn all_iterates_range() {
        let r = RowSet::All(3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn slice_is_iter_subrange() {
        for rows in [RowSet::All(10), ids(&[2, 3, 5, 7, 11, 13, 17, 19, 23, 29])] {
            let all: Vec<u32> = rows.iter().collect();
            assert_eq!(rows.slice(0..10).collect::<Vec<_>>(), all);
            assert_eq!(rows.slice(3..7).collect::<Vec<_>>(), all[3..7].to_vec());
            assert_eq!(rows.slice(4..4).count(), 0);
        }
    }

    #[test]
    fn intersect_merges_sorted() {
        let a = ids(&[0, 2, 4, 6]);
        let b = ids(&[2, 3, 4]);
        assert_eq!(a.intersect(&b), ids(&[2, 4]));
        assert_eq!(RowSet::All(10).intersect(&b), b);
        assert_eq!(b.intersect(&RowSet::All(10)), b);
    }

    #[test]
    fn union_merges_sorted() {
        let a = ids(&[0, 2]);
        let b = ids(&[1, 2, 5]);
        assert_eq!(a.union(&b), ids(&[0, 1, 2, 5]));
        assert_eq!(a.union(&RowSet::All(9)), RowSet::All(9));
    }

    #[test]
    fn complement_inverts() {
        let a = ids(&[1, 3]);
        assert_eq!(a.complement(5), ids(&[0, 2, 4]));
        assert_eq!(RowSet::All(4).complement(4), ids(&[]));
        assert_eq!(ids(&[]).complement(2), ids(&[0, 1]));
    }
}
