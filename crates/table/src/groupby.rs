//! Group-by average aggregation: the execution engine behind the
//! paper's `SELECT avg(Y) … GROUP BY …` queries (Listing 1) and the
//! rewritten block/weight queries (Listing 2).

use crate::contingency::ContingencyTable;
use crate::hash::FxHashMap;
use crate::rows::RowSet;
use crate::scan::{ColRef, Scan};
use crate::schema::AttrId;
use crate::Result;

/// One output row of a group-by aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group key: one dictionary code per grouping attribute.
    pub key: Box<[u32]>,
    /// `count(*)` of the group.
    pub count: u64,
    /// `avg(Y_i)` per outcome attribute (empty for pure counting).
    pub averages: Vec<f64>,
}

/// `count(*) GROUP BY attrs` over the selected rows of any [`Scan`]
/// storage, output sorted by key for determinism.
pub fn group_counts<S: Scan + ?Sized>(table: &S, rows: &RowSet, attrs: &[AttrId]) -> Vec<GroupRow> {
    let ct = ContingencyTable::from_table(table, rows, attrs);
    let mut out: Vec<GroupRow> = ct
        .cells()
        .into_iter()
        .map(|(key, count)| GroupRow {
            key,
            count,
            averages: Vec::new(),
        })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// `avg(Y_1), …, avg(Y_e) GROUP BY attrs` over the selected rows.
///
/// Outcome attributes must have numeric dictionary values (e.g. a 0/1
/// `Delayed` column). Output sorted by key.
pub fn group_average<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    group_attrs: &[AttrId],
    outcomes: &[AttrId],
) -> Result<Vec<GroupRow>> {
    // Per-outcome, per-code numeric value.
    let numeric: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|&y| table.numeric_codes(y))
        .collect::<Result<_>>()?;
    let out_cols: Vec<ColRef<'_>> = outcomes.iter().map(|&y| table.col(y)).collect();
    let grp_cols: Vec<ColRef<'_>> = group_attrs.iter().map(|&a| table.col(a)).collect();

    struct Acc {
        count: u64,
        sums: Vec<f64>,
    }
    let mut groups: FxHashMap<Box<[u32]>, Acc> = FxHashMap::default();
    let mut key = vec![0u32; group_attrs.len()];
    for row in rows.iter() {
        for (slot, col) in key.iter_mut().zip(&grp_cols) {
            *slot = col.at(row);
        }
        let acc = groups
            .entry(key.clone().into_boxed_slice())
            .or_insert_with(|| Acc {
                count: 0,
                sums: vec![0.0; outcomes.len()],
            });
        acc.count += 1;
        for (s, (vals, col)) in acc.sums.iter_mut().zip(numeric.iter().zip(&out_cols)) {
            *s += vals[col.at(row) as usize];
        }
    }
    let mut out: Vec<GroupRow> = groups
        .into_iter()
        .map(|(key, acc)| GroupRow {
            key,
            count: acc.count,
            averages: acc.sums.iter().map(|s| s / acc.count as f64).collect(),
        })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(out)
}

/// Renders a group key as human-readable values.
pub fn render_key<S: Scan + ?Sized>(table: &S, attrs: &[AttrId], key: &[u32]) -> Vec<String> {
    attrs
        .iter()
        .zip(key)
        .map(|(&a, &code)| table.dict(a).value(code).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::table::{Table, TableBuilder};

    fn flights() -> Table {
        let mut b = TableBuilder::new(["carrier", "airport", "delayed"]);
        for (c, a, d, n) in [
            ("AA", "COS", "0", 8u32),
            ("AA", "COS", "1", 2),
            ("AA", "ROC", "0", 1),
            ("AA", "ROC", "1", 4),
            ("UA", "COS", "0", 3),
            ("UA", "COS", "1", 1),
            ("UA", "ROC", "0", 4),
            ("UA", "ROC", "1", 6),
        ] {
            for _ in 0..n {
                b.push_row([c, a, d]).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn group_counts_by_carrier() {
        let t = flights();
        let carrier = t.attr("carrier").unwrap();
        let rows = t.all_rows();
        let g = group_counts(&t, &rows, &[carrier]);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].count, 15); // AA
        assert_eq!(g[1].count, 14); // UA
    }

    #[test]
    fn group_average_delay() {
        let t = flights();
        let carrier = t.attr("carrier").unwrap();
        let delayed = t.attr("delayed").unwrap();
        let g = group_average(&t, &t.all_rows(), &[carrier], &[delayed]).unwrap();
        // AA: 6 delayed of 15; UA: 7 of 14.
        assert!((g[0].averages[0] - 6.0 / 15.0).abs() < 1e-12);
        assert!((g[1].averages[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_average_with_where() {
        let t = flights();
        let carrier = t.attr("carrier").unwrap();
        let delayed = t.attr("delayed").unwrap();
        let rows = Predicate::eq(&t, "airport", "ROC").unwrap().select(&t);
        let g = group_average(&t, &rows, &[carrier], &[delayed]).unwrap();
        assert!((g[0].averages[0] - 0.8).abs() < 1e-12); // AA at ROC: 4/5
        assert!((g[1].averages[0] - 0.6).abs() < 1e-12); // UA at ROC: 6/10
    }

    #[test]
    fn multi_attribute_grouping() {
        let t = flights();
        let ids = t.attrs(["carrier", "airport"]).unwrap();
        let delayed = t.attr("delayed").unwrap();
        let g = group_average(&t, &t.all_rows(), &ids, &[delayed]).unwrap();
        assert_eq!(g.len(), 4);
        let labels: Vec<Vec<String>> = g.iter().map(|r| render_key(&t, &ids, &r.key)).collect();
        assert_eq!(labels[0], vec!["AA", "COS"]);
        assert!((g[0].averages[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn non_numeric_outcome_errors() {
        let t = flights();
        let carrier = t.attr("carrier").unwrap();
        let airport = t.attr("airport").unwrap();
        assert!(group_average(&t, &t.all_rows(), &[carrier], &[airport]).is_err());
    }

    #[test]
    fn empty_selection_yields_no_groups() {
        let t = flights();
        let carrier = t.attr("carrier").unwrap();
        let delayed = t.attr("delayed").unwrap();
        let g = group_average(&t, &RowSet::Ids(vec![]), &[carrier], &[delayed]).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn multiple_outcomes() {
        let mut b = TableBuilder::new(["g", "y1", "y2"]);
        for (g, y1, y2) in [("a", "1", "10"), ("a", "0", "20"), ("b", "1", "30")] {
            b.push_row([g, y1, y2]).unwrap();
        }
        let t = b.finish();
        let g = t.attr("g").unwrap();
        let ys = t.attrs(["y1", "y2"]).unwrap();
        let rows = group_average(&t, &t.all_rows(), &[g], &ys).unwrap();
        assert_eq!(rows[0].averages, vec![0.5, 15.0]);
        assert_eq!(rows[1].averages, vec![1.0, 30.0]);
    }
}
