//! CancerData: Guyon's LUCAS "lung cancer simple model" — the simulated
//! dataset of Fig 7 / Fig 4 (top), with known ground truth.
//!
//! The DAG (Fig 7):
//!
//! ```text
//! Anxiety ─┐                       ┌─ Allergy
//! PeerPressure ─► Smoking ─► LungCancer ─► Coughing ─► Fatigue
//!                 ▲   Genetics ──► ┘   └──────────────► ▲
//!                 │   Genetics ──► AttentionDisorder    │
//!         YellowFingers◄─Smoking   AttentionDisorder ─► CarAccident ◄─ Fatigue
//! BornEvenDay (isolated)
//! ```
//!
//! CPTs are tuned so the headline Fig 4 numbers hold: accident rates of
//! ≈0.60 (no cancer) vs ≈0.77 (cancer), with Fatigue carrying most of
//! the mediation and AttentionDisorder the rest, and **no direct edge**
//! `LungCancer → CarAccident`.

use hypdb_graph::bayes::BayesNet;
use hypdb_graph::dag::Dag;
use hypdb_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Node names in DAG order.
pub const NODES: [&str; 12] = [
    "Anxiety",
    "Peer_Pressure",
    "Genetics",
    "Allergy",
    "Born_an_Even_Day",
    "Smoking",
    "Yellow_Fingers",
    "Lung_Cancer",
    "Attention_Disorder",
    "Coughing",
    "Fatigue",
    "Car_Accident",
];

/// The ground-truth DAG of Fig 7.
pub fn cancer_dag() -> Dag {
    let mut g = Dag::with_names(NODES);
    let id = |name: &str| NODES.iter().position(|n| *n == name).expect("node");
    let edges = [
        ("Anxiety", "Smoking"),
        ("Peer_Pressure", "Smoking"),
        ("Smoking", "Yellow_Fingers"),
        ("Smoking", "Lung_Cancer"),
        ("Genetics", "Lung_Cancer"),
        ("Genetics", "Attention_Disorder"),
        ("Lung_Cancer", "Coughing"),
        ("Allergy", "Coughing"),
        ("Coughing", "Fatigue"),
        ("Lung_Cancer", "Fatigue"),
        ("Attention_Disorder", "Car_Accident"),
        ("Fatigue", "Car_Accident"),
    ];
    for (u, v) in edges {
        assert!(g.add_edge(id(u), id(v)), "edge {u}->{v}");
    }
    g
}

/// The parameterised network.
pub fn cancer_net() -> BayesNet {
    let dag = cancer_dag();
    let id = |name: &str| NODES.iter().position(|n| *n == name).expect("node");
    let mut net = BayesNet::uniform(dag, vec![2; 12]);
    // Roots.
    net.set_cpt(id("Anxiety"), vec![0.35, 0.65]); // P(anxiety=1)=0.65
    net.set_cpt(id("Peer_Pressure"), vec![0.67, 0.33]);
    net.set_cpt(id("Genetics"), vec![0.85, 0.15]);
    net.set_cpt(id("Allergy"), vec![0.67, 0.33]);
    net.set_cpt(id("Born_an_Even_Day"), vec![0.5, 0.5]);
    // Smoking | Anxiety, Peer_Pressure (parents sorted: Anxiety, PP).
    net.set_cpt(
        id("Smoking"),
        vec![
            0.57, 0.43, // A=0, P=0
            0.26, 0.74, // A=0, P=1
            0.20, 0.80, // A=1, P=0
            0.12, 0.88, // A=1, P=1
        ],
    );
    // Yellow_Fingers | Smoking.
    net.set_cpt(id("Yellow_Fingers"), vec![0.77, 0.23, 0.05, 0.95]);
    // Lung_Cancer | Genetics, Smoking (sorted parent order:
    // Genetics=2 < Smoking=5).
    net.set_cpt(
        id("Lung_Cancer"),
        vec![
            0.77, 0.23, // G=0, S=0
            0.17, 0.83, // G=0, S=1
            0.32, 0.68, // G=1, S=0
            0.08, 0.92, // G=1, S=1
        ],
    );
    // Attention_Disorder | Genetics.
    net.set_cpt(id("Attention_Disorder"), vec![0.72, 0.28, 0.32, 0.68]);
    // Coughing | Allergy, Lung_Cancer (Allergy=3 < Lung_Cancer=7).
    net.set_cpt(
        id("Coughing"),
        vec![
            0.87, 0.13, // Al=0, LC=0
            0.15, 0.85, // Al=0, LC=1
            0.35, 0.65, // Al=1, LC=0
            0.05, 0.95, // Al=1, LC=1
        ],
    );
    // Fatigue | Lung_Cancer, Coughing (LC=7 < Coughing=9).
    net.set_cpt(
        id("Fatigue"),
        vec![
            0.65, 0.35, // LC=0, C=0
            0.40, 0.60, // LC=0, C=1
            0.30, 0.70, // LC=1, C=0
            0.10, 0.90, // LC=1, C=1
        ],
    );
    // Car_Accident | Attention_Disorder, Fatigue (AD=8 < Fatigue=10).
    net.set_cpt(
        id("Car_Accident"),
        vec![
            0.57, 0.43, // AD=0, F=0
            0.29, 0.71, // AD=0, F=1
            0.30, 0.70, // AD=1, F=0
            0.12, 0.88, // AD=1, F=1
        ],
    );
    net
}

/// Samples CancerData (`rows` = 2 000 in Table 1).
pub fn cancer_data(rows: usize, seed: u64) -> Table {
    let net = cancer_net();
    let mut rng = StdRng::seed_from_u64(seed);
    net.sample_table(&mut rng, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::groupby::group_average;

    #[test]
    fn dag_matches_fig7() {
        let g = cancer_dag();
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 12);
        let id = |n: &str| g.node(n).unwrap();
        // Lung cancer's parents.
        assert_eq!(
            g.parent_set(id("Lung_Cancer")),
            vec![id("Genetics"), id("Smoking")]
        );
        // No direct edge LungCancer -> CarAccident.
        assert!(!g.has_edge(id("Lung_Cancer"), id("Car_Accident")));
        // But an indirect path exists.
        assert!(g.reaches(id("Lung_Cancer"), id("Car_Accident")));
        // Born_an_Even_Day is isolated.
        assert!(g.markov_boundary(id("Born_an_Even_Day")).is_empty());
    }

    #[test]
    fn accident_rates_match_fig4() {
        let t = cancer_data(20_000, 13);
        let lc = t.attr("Lung_Cancer").unwrap();
        let ca = t.attr("Car_Accident").unwrap();
        let g = group_average(&t, &t.all_rows(), &[lc], &[ca]).unwrap();
        let rate = |code: &str| {
            g.iter()
                .find(|r| t.column(lc).dict().value(r.key[0]) == code)
                .map(|r| r.averages[0])
                .unwrap()
        };
        // Fig 4: 0.60 vs 0.77.
        assert!((rate("0") - 0.60).abs() < 0.05, "no-cancer {}", rate("0"));
        assert!((rate("1") - 0.77).abs() < 0.05, "cancer {}", rate("1"));
    }

    #[test]
    fn twelve_binary_columns() {
        let t = cancer_data(100, 1);
        assert_eq!(t.nattrs(), 12);
        for a in t.schema().attr_ids() {
            assert_eq!(t.cardinality(a), 2);
        }
    }

    #[test]
    fn berkson_example_of_appendix() {
        // Ex 10.1: Anxiety ⊥ Peer_Pressure marginally; dependent given
        // Smoking.
        use hypdb_stats::independence::chi2_test;
        use hypdb_table::Stratified;
        let t = cancer_data(30_000, 21);
        let a = t.attr("Anxiety").unwrap();
        let p = t.attr("Peer_Pressure").unwrap();
        let s = t.attr("Smoking").unwrap();
        let rows = t.all_rows();
        let marg = chi2_test(&Stratified::build(&t, &rows, a, p, &[]));
        assert!(marg.p_value > 0.01, "marginal p = {}", marg.p_value);
        let cond = chi2_test(&Stratified::build(&t, &rows, a, p, &[s]));
        assert!(cond.p_value < 0.01, "conditional p = {}", cond.p_value);
    }
}
