//! StaplesData-like generator (Fig 3 bottom, Table 1).
//!
//! The WSJ investigation (Valentino-Devries et al., 2012) found
//! Staples' online prices varied with the user's distance to a
//! competitor's store; because low-income areas are farther from
//! competitors, the *unintended* effect was higher prices for
//! lower-income customers. Structure: `Income → Distance → Price`,
//! **no** direct `Income → Price` edge — so HypDB must report a
//! significant total effect and a null direct effect with Distance as
//! the (sole, fully-responsible) mediator.

use crate::builder::{coin, pick, DatasetBuilder};
use hypdb_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct StaplesConfig {
    /// Rows (Table 1 uses 988 871; tests use fewer).
    pub rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for StaplesConfig {
    fn default() -> Self {
        StaplesConfig {
            rows: 988_871,
            seed: 2012,
        }
    }
}

/// Generates the table with schema
/// `(Income, Distance, Price, Urban, Age, ZipCode)` — 6 attributes like
/// Table 1, `ZipCode` key-like.
pub fn staples_data(cfg: &StaplesConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DatasetBuilder::new();
    let c_income = b.add_column("Income", ["0", "1"]); // 0 = low
    let c_dist = b.add_column("Distance", ["Near", "Far"]);
    let c_price = b.add_column("Price", ["0", "1"]); // 1 = discounted page NOT shown (higher price)
    let c_urban = b.add_column("Urban", ["Urban", "Suburban", "Rural"]);
    let c_age = b.add_column("Age", ["18-30", "31-50", "51+"]);
    let c_zip = b.add_column("ZipCode", std::iter::empty::<&str>());

    for row in 0..cfg.rows {
        let income = coin(&mut rng, 0.45); // 1 = high income

        // Distance | Income: low income lives far from competitors.
        let far = if income == 0 {
            coin(&mut rng, 0.70)
        } else {
            coin(&mut rng, 0.25)
        };
        // Price | Distance only.
        let price = if far == 1 {
            coin(&mut rng, 0.78)
        } else {
            coin(&mut rng, 0.30)
        };
        // Demographic noise.
        let urban = if far == 1 {
            pick(&mut rng, &[0.15, 0.35, 0.50])
        } else {
            pick(&mut rng, &[0.55, 0.35, 0.10])
        };
        let age = pick(&mut rng, &[0.3, 0.45, 0.25]);

        b.push(c_income, income);
        b.push(c_dist, far);
        b.push(c_price, price);
        b.push(c_urban, urban);
        b.push(c_age, age);
        b.push_value(c_zip, &format!("{:05}", row % (cfg.rows / 2).max(1)));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::groupby::group_average;
    use hypdb_table::Predicate;

    fn small() -> Table {
        staples_data(&StaplesConfig {
            rows: 60_000,
            seed: 5,
        })
    }

    #[test]
    fn income_associates_with_price() {
        let t = small();
        let income = t.attr("Income").unwrap();
        let price = t.attr("Price").unwrap();
        let g = group_average(&t, &t.all_rows(), &[income], &[price]).unwrap();
        // Low income (code 0) sees higher prices.
        assert!(
            g[0].averages[0] > g[1].averages[0] + 0.1,
            "low {:.3} vs high {:.3}",
            g[0].averages[0],
            g[1].averages[0]
        );
    }

    #[test]
    fn no_direct_effect_within_distance() {
        let t = small();
        let income = t.attr("Income").unwrap();
        let price = t.attr("Price").unwrap();
        for dist in ["Near", "Far"] {
            let rows = Predicate::eq(&t, "Distance", dist).unwrap().select(&t);
            let g = group_average(&t, &rows, &[income], &[price]).unwrap();
            assert!(
                (g[0].averages[0] - g[1].averages[0]).abs() < 0.02,
                "within {dist}: {:?}",
                g.iter().map(|r| r.averages[0]).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn six_attributes() {
        let t = staples_data(&StaplesConfig { rows: 10, seed: 1 });
        assert_eq!(t.nattrs(), 6);
    }
}
