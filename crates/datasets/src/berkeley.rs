//! BerkeleyData: the *real* fall-1973 graduate-admission figures from
//! Bickel, Hammel & O'Connell (Science 187:398–404, 1975), for the six
//! largest departments — the dataset behind the famous Simpson's
//! paradox and the paper's Fig 4 (bottom).
//!
//! The aggregate counts are public; we expand them into one tuple per
//! applicant with schema `(Gender, Department, Accepted)`.

use hypdb_table::{Table, TableBuilder};

/// `(department, male applicants, male admits, female applicants,
/// female admits)` — Bickel et al., Table 1.
pub const ADMISSIONS: [(&str, u32, u32, u32, u32); 6] = [
    ("A", 825, 512, 108, 89),
    ("B", 560, 353, 25, 17),
    ("C", 325, 120, 593, 202),
    ("D", 417, 138, 375, 131),
    ("E", 191, 53, 393, 94),
    ("F", 373, 22, 341, 24),
];

/// Builds the 4 526-row table.
pub fn berkeley_data() -> Table {
    let mut b = TableBuilder::new(["Gender", "Department", "Accepted"]);
    for &(dept, m_app, m_adm, f_app, f_adm) in &ADMISSIONS {
        push_group(&mut b, "Male", dept, m_adm, m_app - m_adm);
        push_group(&mut b, "Female", dept, f_adm, f_app - f_adm);
    }
    b.finish()
}

fn push_group(b: &mut TableBuilder, gender: &str, dept: &str, admitted: u32, rejected: u32) {
    for _ in 0..admitted {
        b.push_row([gender, dept, "1"]).expect("arity fixed");
    }
    for _ in 0..rejected {
        b.push_row([gender, dept, "0"]).expect("arity fixed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::groupby::group_average;
    use hypdb_table::Predicate;

    #[test]
    fn totals_match_bickel() {
        let t = berkeley_data();
        assert_eq!(t.nrows(), 4526);
        let gender = t.attr("Gender").unwrap();
        let acc = t.attr("Accepted").unwrap();
        let g = group_average(&t, &t.all_rows(), &[gender], &[acc]).unwrap();
        let rate = |name: &str| {
            g.iter()
                .find(|r| t.column(gender).dict().value(r.key[0]) == name)
                .map(|r| (r.averages[0], r.count))
                .unwrap()
        };
        let (male_rate, male_n) = rate("Male");
        let (female_rate, female_n) = rate("Female");
        assert_eq!(male_n, 2691);
        assert_eq!(female_n, 1835);
        // The headline figures: ~46% vs ~30% (Fig 4's 0.46 / 0.30).
        assert!((male_rate - 0.445).abs() < 0.01, "male {male_rate}");
        assert!((female_rate - 0.304).abs() < 0.01, "female {female_rate}");
    }

    #[test]
    fn department_a_reverses() {
        // In department A women are admitted at a *higher* rate — the
        // core of the paradox.
        let t = berkeley_data();
        let gender = t.attr("Gender").unwrap();
        let acc = t.attr("Accepted").unwrap();
        let rows = Predicate::eq(&t, "Department", "A").unwrap().select(&t);
        let g = group_average(&t, &rows, &[gender], &[acc]).unwrap();
        let rate = |name: &str| {
            g.iter()
                .find(|r| t.column(gender).dict().value(r.key[0]) == name)
                .map(|r| r.averages[0])
                .unwrap()
        };
        assert!(rate("Female") > rate("Male"));
        assert!((rate("Female") - 89.0 / 108.0).abs() < 1e-9);
        assert!((rate("Male") - 512.0 / 825.0).abs() < 1e-9);
    }

    #[test]
    fn per_department_counts_exact() {
        let t = berkeley_data();
        for &(dept, m_app, _, f_app, _) in &ADMISSIONS {
            let rows = Predicate::eq(&t, "Department", dept).unwrap().select(&t);
            assert_eq!(rows.len() as u32, m_app + f_app, "dept {dept}");
        }
    }
}
