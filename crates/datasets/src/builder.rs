//! Column-oriented dataset construction: faster than row-at-a-time
//! string interning for the wide (101-attribute) generators.

use hypdb_store::ShardedTable;
use hypdb_table::{Column, Schema, Table};

/// Accumulates dictionary-coded columns and assembles a [`Table`].
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        DatasetBuilder {
            schema: Schema::default(),
            columns: Vec::new(),
        }
    }

    /// Adds a column with a pre-interned categorical domain; returns its
    /// index for use with [`DatasetBuilder::push`].
    pub fn add_column<I, S>(&mut self, name: &str, domain: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.schema.push(name.to_string());
        let mut col = Column::new();
        for v in domain {
            col.dict_mut().intern(v.as_ref());
        }
        self.columns.push(col);
        self.columns.len() - 1
    }

    /// Appends a code to column `idx` (must be within the pre-interned
    /// domain).
    #[inline]
    pub fn push(&mut self, idx: usize, code: u32) {
        self.columns[idx].push_code(code);
    }

    /// Appends a raw string value (interning on the fly) — used for
    /// key-like columns whose domain grows with the data.
    #[inline]
    pub fn push_value(&mut self, idx: usize, value: &str) {
        self.columns[idx].push(value);
    }

    /// Finishes the table; all columns must have equal length.
    pub fn finish(self) -> Table {
        Table::from_columns(self.schema, self.columns).expect("builder kept columns aligned")
    }

    /// Finishes and re-partitions into sharded storage
    /// (`shard_rows`-sized row ranges). The monolithic table is built
    /// first and then sliced — the generators are in-memory anyway, and
    /// sharing the finished dictionaries makes codes identical to
    /// [`DatasetBuilder::finish`]'s encoding by construction, so either
    /// output drives the pipeline to byte-identical reports. (True
    /// streaming ingest, which never materialises the whole relation,
    /// is `hypdb_store::read_csv_shards` / `ShardedTableBuilder`.)
    pub fn finish_sharded(self, shard_rows: usize) -> ShardedTable {
        ShardedTable::from_table(&self.finish(), shard_rows)
    }
}

/// Bernoulli helper used by the generators.
#[inline]
pub fn coin(rng: &mut impl rand::Rng, p: f64) -> u32 {
    u32::from(rng.gen::<f64>() < p)
}

/// Draws an index from unnormalised weights.
#[inline]
pub fn pick(rng: &mut impl rand::Rng, weights: &[f64]) -> u32 {
    hypdb_stats::random::categorical(rng, weights) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_aligned_table() {
        let mut b = DatasetBuilder::new();
        let a = b.add_column("a", ["x", "y"]);
        let k = b.add_column("id", std::iter::empty::<&str>());
        for i in 0..5 {
            b.push(a, i % 2);
            b.push_value(k, &i.to_string());
        }
        let t = b.finish();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.cardinality(t.attr("a").unwrap()), 2);
        assert_eq!(t.cardinality(t.attr("id").unwrap()), 5);
        assert_eq!(t.value(t.attr("a").unwrap(), 1), "y");
    }

    #[test]
    fn finish_sharded_matches_monolithic() {
        let build = || {
            let mut b = DatasetBuilder::new();
            let a = b.add_column("a", ["x", "y", "z"]);
            for i in 0..17 {
                b.push(a, i % 3);
            }
            b
        };
        let mono = build().finish();
        let sharded = build().finish_sharded(5);
        assert_eq!(sharded.n_shards(), 4);
        let attr = mono.attr("a").unwrap();
        for row in 0..17u32 {
            assert_eq!(sharded.value(attr, row), mono.value(attr, row));
        }
    }

    #[test]
    fn coin_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let heads: u32 = (0..n).map(|_| coin(&mut rng, 0.3)).sum();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }
}
