//! RandomData (§7.1): categorical datasets with *known* ground-truth
//! causal DAGs, for the quality/efficiency experiments (Figs 5, 6, 8).
//!
//! "We first generated a set of random DAGs using the Erdős–Rényi
//! model … with 8, 16 and 32 nodes … then drew samples from the
//! distribution defined by these DAGs using the catnet package … with
//! different sizes in the range 10K–50M rows, and different numbers of
//! attribute categories in the range 2–20."

use hypdb_graph::bayes::BayesNet;
use hypdb_graph::dag::Dag;
use hypdb_graph::random::random_dag_bounded_fanin;
use hypdb_table::Table;
use rand::rngs::StdRng;
use rand::Rng;

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomDataConfig {
    /// Node count (8/16/32 in the paper).
    pub nodes: usize,
    /// Expected number of edges (the paper keeps average fan-ins small;
    /// a common choice is ≈1.5–2 edges per node).
    pub expected_edges: f64,
    /// Maximum in-degree (keeps Markov boundaries bounded, §4).
    pub max_parents: usize,
    /// Category count per node: sampled uniformly from this inclusive
    /// range (2–20 in the paper).
    pub min_categories: usize,
    /// Upper bound of the category range.
    pub max_categories: usize,
    /// Dirichlet concentration for CPT rows (small = strong effects).
    pub alpha: f64,
    /// Sample size.
    pub rows: usize,
    /// Seed (drives the DAG, the CPTs and the sample).
    pub seed: u64,
}

impl Default for RandomDataConfig {
    fn default() -> Self {
        RandomDataConfig {
            nodes: 8,
            expected_edges: 12.0,
            max_parents: 3,
            min_categories: 2,
            max_categories: 4,
            alpha: 0.5,
            rows: 10_000,
            seed: 0,
        }
    }
}

/// A generated dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct RandomDataset {
    /// Ground-truth DAG (node `i` ↔ column `i`).
    pub dag: Dag,
    /// The generating network.
    pub net: BayesNet,
    /// The sampled table.
    pub table: Table,
}

/// Generates one dataset.
pub fn random_data(cfg: &RandomDataConfig) -> RandomDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dag = random_dag_bounded_fanin(&mut rng, cfg.nodes, cfg.expected_edges, cfg.max_parents);
    let cards: Vec<f64> = (0..cfg.nodes)
        .map(|_| rng.gen_range(cfg.min_categories..=cfg.max_categories) as f64)
        .collect();
    let net = BayesNet::random(&mut rng, dag.clone(), cards, cfg.alpha);
    let table = net.sample_table(&mut rng, cfg.rows);
    RandomDataset { dag, net, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_config() {
        let cfg = RandomDataConfig {
            nodes: 16,
            rows: 500,
            min_categories: 3,
            max_categories: 6,
            seed: 4,
            ..RandomDataConfig::default()
        };
        let d = random_data(&cfg);
        assert_eq!(d.dag.len(), 16);
        assert_eq!(d.table.nattrs(), 16);
        assert_eq!(d.table.nrows(), 500);
        for a in d.table.schema().attr_ids() {
            let card = d.table.cardinality(a) as usize;
            assert!((3..=6).contains(&card), "card {card}");
        }
        for v in 0..16 {
            assert!(d.dag.in_degree(v) <= cfg.max_parents);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDataConfig {
            rows: 200,
            seed: 9,
            ..RandomDataConfig::default()
        };
        let a = random_data(&cfg);
        let b = random_data(&cfg);
        assert_eq!(a.dag, b.dag);
        let col = hypdb_table::AttrId(0);
        assert_eq!(a.table.column(col).codes(), b.table.column(col).codes());
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = RandomDataConfig {
            rows: 100,
            ..RandomDataConfig::default()
        };
        let c2 = RandomDataConfig { seed: 1, ..c1 };
        let (a, b) = (random_data(&c1), random_data(&c2));
        assert!(
            a.dag != b.dag || {
                let col = hypdb_table::AttrId(0);
                a.table.column(col).codes() != b.table.column(col).codes()
            }
        );
    }

    #[test]
    fn table_reflects_dag_dependencies() {
        // Sample a denser DAG and verify a strong edge shows up as
        // dependence in data for at least one edge.
        use hypdb_stats::independence::chi2_test;
        use hypdb_table::Stratified;
        let d = random_data(&RandomDataConfig {
            nodes: 8,
            expected_edges: 10.0,
            rows: 20_000,
            alpha: 0.3,
            seed: 77,
            ..RandomDataConfig::default()
        });
        let mut dependent_edges = 0;
        for (u, v) in d.dag.edges() {
            let au = hypdb_table::AttrId(u as u32);
            let av = hypdb_table::AttrId(v as u32);
            let s = Stratified::build(&d.table, &d.table.all_rows(), au, av, &[]);
            if chi2_test(&s).p_value < 0.01 {
                dependent_edges += 1;
            }
        }
        assert!(
            dependent_edges as f64 >= 0.5 * d.dag.num_edges() as f64,
            "{dependent_edges}/{} edges detectable",
            d.dag.num_edges()
        );
    }
}
