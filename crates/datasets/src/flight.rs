//! FlightData-like generator (§7.1, Fig 1, Table 1).
//!
//! The real dataset (US DoT on-time performance) is not shipped; this
//! generator plants the causal structure the paper documents so every
//! HypDB code path is exercised:
//!
//! * **Simpson's paradox** over the Fig 1 sub-population: among the
//!   airports {COS, MFE, MTJ, ROC}, AA has a *lower* overall delay rate
//!   than UA, yet a *higher* rate at every single airport — because AA's
//!   traffic concentrates at the low-delay airports,
//! * **covariates**: Airport (dominant), Year (mild) both influence
//!   carrier mix and delay,
//! * **mediators**: Dest and DepTimeBin depend on the carrier and
//!   influence delay,
//! * **logical dependencies**: `AirportWAC ⇒ Airport` (bijective FD),
//!   and key-like `FlightId`/`TailNum`/`FlightNum` columns,
//! * **width**: filler attributes pad the schema to 101 columns like
//!   the real data.

use crate::builder::{coin, pick, DatasetBuilder};
use hypdb_table::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Number of rows (Table 1 uses 43 853).
    pub rows: usize,
    /// Total attribute count (padded with independent filler columns;
    /// the real dataset has 101).
    pub total_attrs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            rows: 43_853,
            total_attrs: 101,
            seed: 1973,
        }
    }
}

/// Airports: the four Fig 1 airports plus background traffic.
pub const AIRPORTS: [&str; 6] = ["COS", "MFE", "MTJ", "ROC", "SEA", "DEN"];
/// World-area codes, bijective with [`AIRPORTS`] (the planted FD).
pub const WACS: [&str; 6] = ["41", "74", "82", "22", "93", "67"];
/// Carriers.
pub const CARRIERS: [&str; 4] = ["AA", "UA", "DL", "WN"];
/// Destination hubs.
pub const DESTS: [&str; 5] = ["ORD", "DFW", "SFO", "JFK", "ATL"];

/// Baseline delay probability per airport (indexed as [`AIRPORTS`]):
/// COS/MFE calm, ROC stormy — the engine of the paradox.
const AIRPORT_DELAY: [f64; 6] = [0.12, 0.15, 0.28, 0.55, 0.25, 0.22];

/// Carrier mix per airport (AA, UA, DL, WN): AA dominates the calm
/// airports, UA dominates ROC. DL and WN get *different* airport mixes
/// but (below) *identical* causal behaviour — DL-vs-WN comparisons are
/// pure confounding, the class of queries whose differences vanish
/// after rewriting (Fig 5(a)'s "insignificant" region).
const CARRIER_MIX: [[f64; 4]; 6] = [
    [0.70, 0.10, 0.14, 0.06], // COS
    [0.65, 0.15, 0.14, 0.06], // MFE
    [0.40, 0.30, 0.20, 0.10], // MTJ
    [0.10, 0.70, 0.04, 0.16], // ROC
    [0.25, 0.25, 0.35, 0.15], // SEA
    [0.25, 0.25, 0.10, 0.40], // DEN
];

/// Direct per-carrier delay effect — deliberately tiny: the paper's
/// finding (Ex 1.2) is that UA beats AA on *total* effect while the
/// *direct* effect is insignificant; AA's within-airport disadvantage
/// flows through its mediators (evening schedules into congested hubs).
const CARRIER_EFFECT: [f64; 4] = [0.015, 0.00, 0.011, 0.011];

/// Additive per-year effect (secondary covariate; also skews the
/// carrier mix below). Strong enough that the CD algorithm can orient
/// {Airport, Year} as Carrier's parents via the collider signature.
const YEAR_EFFECT: [f64; 4] = [0.00, 0.03, 0.06, 0.09];

/// Generates the table.
pub fn flight_data(cfg: &FlightConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DatasetBuilder::new();

    let years = ["2014", "2015", "2016", "2017"];
    let quarters = ["1", "2", "3", "4"];
    let months: Vec<String> = (1..=12).map(|m| m.to_string()).collect();
    let days: Vec<String> = (1..=28).map(|d| d.to_string()).collect();
    let dows: Vec<String> = (1..=7).map(|d| d.to_string()).collect();
    let dep_bins = ["morning", "midday", "evening", "night"];

    let c_year = b.add_column("Year", years);
    let c_quarter = b.add_column("Quarter", quarters);
    let c_month = b.add_column("Month", months.iter());
    let c_day = b.add_column("Day", days.iter());
    let c_dow = b.add_column("DayOfWeek", dows.iter());
    let c_airport = b.add_column("Airport", AIRPORTS);
    let c_wac = b.add_column("AirportWAC", WACS);
    let c_carrier = b.add_column("Carrier", CARRIERS);
    let c_dest = b.add_column("Dest", DESTS);
    let c_dep = b.add_column("DepTimeBin", dep_bins);
    let c_arrdelay = b.add_column("ArrDelay15", ["0", "1"]);
    let c_delayed = b.add_column("Delayed", ["0", "1"]);
    let c_flightid = b.add_column("FlightId", std::iter::empty::<&str>());
    let c_tailnum = b.add_column("TailNum", std::iter::empty::<&str>());
    let c_flightnum = b.add_column("FlightNum", std::iter::empty::<&str>());

    // Filler columns to reach the real dataset's width. Independent of
    // everything — discovery must reject them.
    let core_attrs = 15;
    let filler_count = cfg.total_attrs.saturating_sub(core_attrs);
    let filler_cols: Vec<usize> = (0..filler_count)
        .map(|i| {
            let card = 2 + (i % 5);
            let domain: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
            b.add_column(&format!("Filler{i:02}"), domain.iter())
        })
        .collect();

    for row in 0..cfg.rows {
        let year = rng.gen_range(0..4u32);
        let quarter = rng.gen_range(0..4u32);
        let month = quarter * 3 + rng.gen_range(0..3u32);
        let day = rng.gen_range(0..28u32);
        let dow = rng.gen_range(0..7u32);

        // Airport: calm airports get plenty of traffic so the four-way
        // sub-population is well populated.
        let airport = pick(&mut rng, &[0.18, 0.15, 0.12, 0.20, 0.18, 0.17]);

        // Carrier | Airport, Year: later years shift AA's share up
        // markedly (Year is a genuine secondary covariate, Fig 1(d)).
        let mut mix = CARRIER_MIX[airport as usize];
        mix[0] += 0.06 * year as f64;
        mix[1] = (mix[1] - 0.05 * year as f64).max(0.02);
        let carrier = pick(&mut rng, &mix);

        // Mediators: Dest | Carrier, DepTimeBin | Carrier (strongly
        // carrier-specific hubs/schedules so the mediation is
        // discoverable). AA routes into the congested hubs (ORD/ATL)
        // and flies evening-heavy; UA routes into calm DFW mornings.
        let dest = match carrier {
            0 => pick(&mut rng, &[0.50, 0.11, 0.13, 0.13, 0.13]), // AA -> ORD hub
            1 => pick(&mut rng, &[0.06, 0.60, 0.18, 0.08, 0.08]), // UA -> DFW
            // DL and WN share one route profile (identical behaviour).
            _ => pick(&mut rng, &[0.25, 0.25, 0.20, 0.15, 0.15]),
        };
        let dep = match carrier {
            0 => pick(&mut rng, &[0.12, 0.18, 0.55, 0.15]), // AA: evening
            1 => pick(&mut rng, &[0.55, 0.20, 0.15, 0.10]), // UA: morning
            _ => pick(&mut rng, &[0.25, 0.25, 0.25, 0.25]),
        };

        // Delay: airport base + carrier effect + year effect + mediator
        // effects (evening departures and busy hubs run later).
        let mut p = AIRPORT_DELAY[airport as usize]
            + CARRIER_EFFECT[carrier as usize]
            + YEAR_EFFECT[year as usize];
        if dep == 2 {
            p += 0.22; // evening departures run late
        }
        if dest == 0 || dest == 4 {
            p += 0.22; // congested hubs
        }
        let delayed = coin(&mut rng, p.clamp(0.01, 0.95));
        // Arrival delay: strongly coupled with departure delay.
        let arr = if delayed == 1 {
            coin(&mut rng, 0.8)
        } else {
            coin(&mut rng, 0.1)
        };

        b.push(c_year, year);
        b.push(c_quarter, quarter);
        b.push(c_month, month);
        b.push(c_day, day);
        b.push(c_dow, dow);
        b.push(c_airport, airport);
        b.push(c_wac, airport); // the FD: WAC is a renaming of Airport
        b.push(c_carrier, carrier);
        b.push(c_dest, dest);
        b.push(c_dep, dep);
        b.push(c_arrdelay, arr);
        b.push(c_delayed, delayed);
        b.push_value(c_flightid, &format!("F{row:07}"));
        b.push_value(c_tailnum, &format!("N{}", row % (cfg.rows / 3).max(1)));
        b.push_value(
            c_flightnum,
            &format!("{}", 100 + row % (cfg.rows / 8).max(1)),
        );
        for (i, &col) in filler_cols.iter().enumerate() {
            let card = 2 + (i % 5) as u32;
            b.push(col, rng.gen_range(0..card));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::groupby::group_average;
    use hypdb_table::Predicate;

    fn small() -> Table {
        flight_data(&FlightConfig {
            rows: 30_000,
            total_attrs: 20,
            seed: 7,
        })
    }

    /// Per-carrier delay averages within the Fig 1 sub-population.
    fn fig1_rates(t: &Table) -> Vec<(String, f64, u64)> {
        let carrier = t.attr("Carrier").unwrap();
        let delayed = t.attr("Delayed").unwrap();
        let pred = Predicate::and([
            Predicate::is_in(t, "Carrier", ["AA", "UA"]).unwrap(),
            Predicate::is_in(t, "Airport", ["COS", "MFE", "MTJ", "ROC"]).unwrap(),
        ]);
        let rows = pred.select(t);
        group_average(t, &rows, &[carrier], &[delayed])
            .unwrap()
            .into_iter()
            .map(|g| {
                (
                    t.column(carrier).dict().value(g.key[0]).to_string(),
                    g.averages[0],
                    g.count,
                )
            })
            .collect()
    }

    #[test]
    fn simpson_reversal_planted() {
        let t = small();
        // Overall (the biased query's answer): AA < UA.
        let overall = fig1_rates(&t);
        let aa = overall.iter().find(|r| r.0 == "AA").unwrap().1;
        let ua = overall.iter().find(|r| r.0 == "UA").unwrap().1;
        assert!(
            aa < ua - 0.02,
            "AA should look better overall: AA={aa:.3} UA={ua:.3}"
        );

        // Per airport: AA >= UA everywhere (the reversal).
        let carrier = t.attr("Carrier").unwrap();
        let delayed = t.attr("Delayed").unwrap();
        for airport in ["COS", "MFE", "MTJ", "ROC"] {
            let pred = Predicate::and([
                Predicate::is_in(&t, "Carrier", ["AA", "UA"]).unwrap(),
                Predicate::eq(&t, "Airport", airport).unwrap(),
            ]);
            let rows = pred.select(&t);
            let g = group_average(&t, &rows, &[carrier], &[delayed]).unwrap();
            let find = |name: &str| {
                g.iter()
                    .find(|r| t.column(carrier).dict().value(r.key[0]) == name)
                    .map(|r| r.averages[0])
            };
            let (paa, pua) = (find("AA").unwrap(), find("UA").unwrap());
            assert!(
                paa > pua - 0.02,
                "at {airport}: AA={paa:.3} must be >= UA={pua:.3}"
            );
        }
    }

    #[test]
    fn fd_and_keys_planted() {
        let t = small();
        // AirportWAC is bijective with Airport.
        let airport = t.attr("Airport").unwrap();
        let wac = t.attr("AirportWAC").unwrap();
        for row in 0..1000u32 {
            let a = t.code(airport, row);
            let w = t.code(wac, row);
            assert_eq!(a, w, "WAC codes mirror airport codes");
        }
        // FlightId is unique.
        let fid = t.attr("FlightId").unwrap();
        assert_eq!(t.cardinality(fid) as usize, t.nrows());
    }

    #[test]
    fn schema_width_configurable() {
        let t = flight_data(&FlightConfig {
            rows: 100,
            total_attrs: 101,
            seed: 1,
        });
        assert_eq!(t.nattrs(), 101);
        assert_eq!(t.nrows(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = flight_data(&FlightConfig {
            rows: 500,
            total_attrs: 18,
            seed: 5,
        });
        let b = flight_data(&FlightConfig {
            rows: 500,
            total_attrs: 18,
            seed: 5,
        });
        let d = a.attr("Delayed").unwrap();
        assert_eq!(a.column(d).codes(), b.column(d).codes());
    }
}
