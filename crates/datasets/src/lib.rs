//! The paper's evaluation datasets (§7.1), real where the data is
//! public, faithfully simulated otherwise (substitutions documented in
//! DESIGN.md §4):
//!
//! * [`flight`] — FlightData-like: 101 attributes, planted Simpson's
//!   paradox over {AA, UA} × {COS, MFE, MTJ, ROC}, an `AirportWAC ⇒
//!   Airport` FD and key-like columns (Fig 1, Table 1),
//! * [`berkeley`] — the *real* 1973 Berkeley admission counts (Bickel
//!   et al., Science 1975), expanded to tuples (Fig 4 bottom),
//! * [`adult`] — AdultData-like census generator with the documented
//!   Gender → {MaritalStatus, Education, …} → Income structure and an
//!   `education-num ⇒ education` FD (Fig 3 top),
//! * [`staples`] — StaplesData-like: Income → Distance → Price with no
//!   direct Income → Price edge (Fig 3 bottom),
//! * [`cancer`] — the LUCAS lung-cancer network of Fig 7 (Fig 4 top),
//! * [`random_data`] — RandomData: Erdős–Rényi ground-truth DAGs with
//!   Dirichlet CPTs (Figs 5, 6, 8).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod berkeley;
pub mod builder;
pub mod cancer;
pub mod flight;
pub mod random_data;
pub mod staples;

pub use adult::{adult_data, AdultConfig};
pub use berkeley::berkeley_data;
pub use cancer::{cancer_dag, cancer_data};
pub use flight::{flight_data, FlightConfig};
pub use random_data::{random_data, RandomDataConfig, RandomDataset};
pub use staples::{staples_data, StaplesConfig};
