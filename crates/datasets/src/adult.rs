//! AdultData-like census generator (Fig 3 top, Table 1).
//!
//! The UCI adult dataset is not shipped; the generator reproduces the
//! structure the paper's analysis reveals: income depends on marital
//! status, education, capital gain, hours per week, age and occupation
//! — but **not directly on gender**. Gender skews the mediators
//! (married-with-spouse is recorded far more often for men in the
//! census; men report more hours; education differs mildly), which is
//! exactly the inconsistency the paper's fine-grained explanations
//! surface. Headline rates calibrated to the published ones:
//! P(income>50K) ≈ 0.30 for men, ≈ 0.11 for women.
//!
//! Schema (15 attributes like UCI): the planted logical dependencies
//! are `EducationNum ⇒ Education` (bijective FD) and the key-like
//! `Fnlwgt`.

use crate::builder::{coin, pick, DatasetBuilder};
use hypdb_table::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct AdultConfig {
    /// Rows (UCI has 48 842).
    pub rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AdultConfig {
    fn default() -> Self {
        AdultConfig {
            rows: 48_842,
            seed: 1994,
        }
    }
}

/// Education levels, low to high.
pub const EDUCATION: [&str; 5] = [
    "HS-grad",
    "SomeCollege",
    "Bachelors",
    "Masters",
    "Doctorate",
];
/// Marital-status levels.
pub const MARITAL: [&str; 3] = ["Single", "Married", "Divorced"];
/// Occupation buckets.
pub const OCCUPATION: [&str; 4] = ["Service", "Clerical", "Professional", "Managerial"];

/// Generates the table.
pub fn adult_data(cfg: &AdultConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DatasetBuilder::new();

    let ages = ["17-25", "26-35", "36-45", "46-55", "56+"];
    let c_age = b.add_column("Age", ages);
    let c_work = b.add_column("WorkClass", ["Private", "Gov", "SelfEmp"]);
    let c_fnlwgt = b.add_column("Fnlwgt", std::iter::empty::<&str>());
    let c_edu = b.add_column("Education", EDUCATION);
    let c_edunum = b.add_column("EducationNum", ["9", "10", "13", "14", "16"]);
    let c_marital = b.add_column("MaritalStatus", MARITAL);
    let c_occ = b.add_column("Occupation", OCCUPATION);
    // Gender-neutral relationship-to-householder coding (the classic
    // Husband/Wife coding is a deterministic proxy for Gender, which
    // would break overlap under exact matching *and* leak the protected
    // attribute — modern census coding avoids it for the same reason).
    let c_rel = b.add_column(
        "Relationship",
        ["Spouse", "NotInFamily", "OwnChild", "OtherRelative"],
    );
    let c_race = b.add_column("Race", ["White", "Black", "AsianPacific", "Other"]);
    let c_sex = b.add_column("Gender", ["Male", "Female"]);
    let c_gain = b.add_column("CapitalGain", ["0", "1"]);
    let c_loss = b.add_column("CapitalLoss", ["0", "1"]);
    let c_hours = b.add_column("HoursPerWeek", ["part", "full", "over"]);
    let c_country = b.add_column("NativeCountry", ["US", "Mexico", "Other"]);
    let c_income = b.add_column("Income", ["0", "1"]);

    for row in 0..cfg.rows {
        let sex = u32::from(rng.gen::<f64>() < 0.33); // 0=Male, 1=Female
        let age = pick(&mut rng, &[0.15, 0.27, 0.25, 0.2, 0.13]);

        // Mediators skewed by gender (the census-recording artefacts
        // the paper's explanations reveal).
        let marital = if sex == 0 {
            pick(&mut rng, &[0.25, 0.62, 0.13]) // men: mostly "Married"
        } else {
            pick(&mut rng, &[0.54, 0.24, 0.22])
        };
        let edu = if sex == 0 {
            pick(&mut rng, &[0.30, 0.27, 0.27, 0.12, 0.04])
        } else {
            pick(&mut rng, &[0.33, 0.33, 0.24, 0.08, 0.02])
        };
        let hours = if sex == 0 {
            pick(&mut rng, &[0.10, 0.60, 0.30])
        } else {
            pick(&mut rng, &[0.30, 0.58, 0.12])
        };
        let occ = {
            // Occupation from education (not directly from gender).
            let w = match edu {
                0 => [0.45, 0.35, 0.12, 0.08],
                1 => [0.30, 0.40, 0.18, 0.12],
                2 => [0.12, 0.25, 0.38, 0.25],
                _ => [0.05, 0.10, 0.50, 0.35],
            };
            pick(&mut rng, &w)
        };
        let gain = coin(&mut rng, 0.08 + 0.04 * (edu as f64 / 4.0));
        let loss = coin(&mut rng, 0.04);
        // Relationship depends on marital status (and age), not gender.
        let relationship = match marital {
            1 => pick(&mut rng, &[0.88, 0.10, 0.0, 0.02]), // married -> Spouse
            0 => {
                if age == 0 {
                    pick(&mut rng, &[0.0, 0.45, 0.50, 0.05])
                } else {
                    pick(&mut rng, &[0.0, 0.85, 0.05, 0.10])
                }
            }
            _ => pick(&mut rng, &[0.0, 0.90, 0.0, 0.10]), // divorced
        };
        let race = pick(&mut rng, &[0.78, 0.10, 0.06, 0.06]);
        let work = pick(&mut rng, &[0.72, 0.16, 0.12]);
        let country = pick(&mut rng, &[0.90, 0.04, 0.06]);

        // Income: NO direct gender term. The adjusted-gross-income
        // artefact the paper uncovers: married filers report household
        // income, so marriage *multiplies* the effect of the human-
        // capital score rather than adding to it.
        let score = [0.00, 0.01, 0.05, 0.12, 0.20][edu as usize]
            + if gain == 1 { 0.22 } else { 0.0 }
            + [0.00, 0.02, 0.08][hours as usize]
            + [0.00, 0.01, 0.03, 0.04, 0.03][age as usize]
            + [0.00, 0.01, 0.03, 0.05][occ as usize];
        let p: f64 = if marital == 1 {
            0.26 + 1.4 * score
        } else {
            0.01 + 0.2 * score
        };
        let income = coin(&mut rng, p.clamp(0.005, 0.95));

        b.push(c_age, age);
        b.push(c_work, work);
        b.push_value(c_fnlwgt, &format!("{}", 10_000 + row));
        b.push(c_edu, edu);
        b.push(c_edunum, edu); // bijective FD with Education
        b.push(c_marital, marital);
        b.push(c_occ, occ);
        b.push(c_rel, relationship);
        b.push(c_race, race);
        b.push(c_sex, sex);
        b.push(c_gain, gain);
        b.push(c_loss, loss);
        b.push(c_hours, hours);
        b.push(c_country, country);
        b.push(c_income, income);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::groupby::group_average;

    fn rates(t: &Table) -> (f64, f64) {
        let sex = t.attr("Gender").unwrap();
        let inc = t.attr("Income").unwrap();
        let g = group_average(t, &t.all_rows(), &[sex], &[inc]).unwrap();
        let rate = |name: &str| {
            g.iter()
                .find(|r| t.column(sex).dict().value(r.key[0]) == name)
                .map(|r| r.averages[0])
                .unwrap()
        };
        (rate("Male"), rate("Female"))
    }

    #[test]
    fn headline_income_gap() {
        let t = adult_data(&AdultConfig {
            rows: 40_000,
            seed: 3,
        });
        let (male, female) = rates(&t);
        // Paper/FairTest headline: ~30% vs ~11%.
        assert!((male - 0.30).abs() < 0.05, "male {male}");
        assert!((female - 0.11).abs() < 0.05, "female {female}");
    }

    #[test]
    fn education_num_is_fd() {
        let t = adult_data(&AdultConfig {
            rows: 2_000,
            seed: 3,
        });
        let e = t.attr("Education").unwrap();
        let en = t.attr("EducationNum").unwrap();
        for row in 0..t.nrows() as u32 {
            assert_eq!(t.code(e, row), t.code(en, row));
        }
    }

    #[test]
    fn no_direct_gender_effect_within_blocks() {
        // Within (MaritalStatus, Education, CapitalGain, Hours, Age,
        // Occupation) blocks, income is assigned by the same formula
        // for both genders; spot-check one well-populated block.
        let t = adult_data(&AdultConfig {
            rows: 60_000,
            seed: 11,
        });
        let sex = t.attr("Gender").unwrap();
        let inc = t.attr("Income").unwrap();
        let pred = hypdb_table::Predicate::and([
            hypdb_table::Predicate::eq(&t, "MaritalStatus", "Married").unwrap(),
            hypdb_table::Predicate::eq(&t, "Education", "Bachelors").unwrap(),
            hypdb_table::Predicate::eq(&t, "CapitalGain", "0").unwrap(),
            hypdb_table::Predicate::eq(&t, "HoursPerWeek", "full").unwrap(),
        ]);
        let rows = pred.select(&t);
        assert!(rows.len() > 1_000, "block too small: {}", rows.len());
        let g = group_average(&t, &rows, &[sex], &[inc]).unwrap();
        let male = g[0].averages[0];
        let female = g[1].averages[0];
        assert!(
            (male - female).abs() < 0.06,
            "within-block gap should be small: {male} vs {female}"
        );
    }

    #[test]
    fn fifteen_attributes() {
        let t = adult_data(&AdultConfig { rows: 10, seed: 1 });
        assert_eq!(t.nattrs(), 15);
    }
}
