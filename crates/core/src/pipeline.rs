//! The HypDB façade: detect → explain → resolve, end to end.

use crate::context::{contexts, Context};
use crate::detect::{detect_bias, BiasReport};
use crate::effect::{adjusted_averages, natural_direct_effect, EffectEstimate};
use crate::error::{Error, Result};
use crate::explain::{coarse_explanations, fine_explanations, Explanations};
use crate::query::Query;
use crate::rewrite::{render_rewrites, RewriteResult};
use hypdb_causal::cd::discover_parents;
use hypdb_causal::oracle::{CiConfig, CiOracle, DataOracle, OracleCache};
use hypdb_causal::preprocess::{drop_logical_dependencies, PreprocessConfig};
use hypdb_causal::CdConfig;
use hypdb_exec::ThreadPool;
use hypdb_obs::Tick;
use hypdb_stats::independence::{hymit, TestOutcome};
use hypdb_table::contingency::Stratified;
use hypdb_table::groupby::group_counts;
use hypdb_table::{AttrId, Scan, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypDbConfig {
    /// Independence-test configuration (shared by detection and
    /// discovery). Its `batch` field carries the multi-query batching
    /// hints ([`hypdb_causal::BatchConfig`]) down to the oracle: when
    /// enabled (the default), discovery submits each round's
    /// independence statements as one planned batch — grouped by
    /// conditioning set, answered from shared contingency passes —
    /// without changing a single report byte.
    pub ci: CiConfig,
    /// CD-algorithm configuration.
    pub cd: CdConfig,
    /// Logical-dependency preprocessing; `None` disables it.
    pub preprocess: Option<PreprocessConfig>,
    /// Fine-grained explanations to report.
    pub top_k: usize,
    /// Whether to estimate direct effects (requires learning `PA_Y`).
    pub compute_direct: bool,
    /// Worker threads for this pipeline's own fan-out (per-context
    /// analysis, per-outcome mediator discovery). `None` follows the
    /// global setting (`HYPDB_THREADS` / `available_parallelism`; see
    /// [`hypdb_exec::global_threads`]), which the layers below (CD
    /// phases, MIT permutation chunks, contingency scans) always use.
    /// Thread counts never change results — only wall-clock time.
    pub threads: Option<usize>,
}

impl Default for HypDbConfig {
    fn default() -> Self {
        HypDbConfig {
            ci: CiConfig::default(),
            cd: CdConfig::default(),
            preprocess: Some(PreprocessConfig::default()),
            top_k: 2,
            compute_direct: true,
            threads: None,
        }
    }
}

/// Wall-clock timings of the three phases (Table 1's columns), in
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Timings {
    /// Covariate/mediator discovery + bias detection.
    pub detection: f64,
    /// Explanation generation.
    pub explanation: f64,
    /// Query rewriting / effect estimation.
    pub resolution: f64,
}

/// Per-context analysis output (one row-block of a Fig 3/4 report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextReport {
    /// Context label (`Quarter=1, …` or `(all)`).
    pub label: String,
    /// Rows in the context.
    pub n_rows: usize,
    /// Compared treatment levels (rendered values, code-ascending).
    pub levels: Vec<String>,
    /// The original query's answers: `sql_answers[level][outcome]`.
    pub sql_answers: Vec<Vec<f64>>,
    /// Naive difference per outcome (two-level comparisons).
    pub sql_diff: Option<Vec<f64>>,
    /// Significance of the naive difference: `I(T;Y_o) = 0` tests.
    pub sql_significance: Vec<TestOutcome>,
    /// Balance test w.r.t. the covariates (total-effect bias).
    pub bias_total: BiasReport,
    /// Balance test w.r.t. covariates ∪ mediators, per outcome
    /// (direct-effect bias).
    pub bias_direct: Vec<BiasReport>,
    /// Rewritten-query answers for the total effect.
    pub total_effect: Option<EffectEstimate>,
    /// Rewritten-query answers for the direct effect, per outcome.
    pub direct_effects: Vec<EffectEstimate>,
    /// Coarse- and fine-grained explanations.
    pub explanations: Explanations,
}

/// The full analysis output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Relation name.
    pub from: String,
    /// Treatment attribute name.
    pub treatment: String,
    /// Outcome attribute names.
    pub outcomes: Vec<String>,
    /// Discovered (or supplied) covariates `Z`.
    pub covariates: Vec<String>,
    /// Mediators `M_j` per outcome.
    pub mediators: Vec<Vec<String>>,
    /// True when CD found no parents and `MB(T)` was used instead (§4).
    pub used_fallback: bool,
    /// Attributes dropped as FDs: `(dropped, kept)` names.
    pub dropped_fd: Vec<(String, String)>,
    /// Attributes dropped as key-like.
    pub dropped_keys: Vec<String>,
    /// Per-context results.
    pub contexts: Vec<ContextReport>,
    /// Rewritten SQL (total + direct).
    pub rewritten: RewriteResult,
    /// Phase timings.
    pub timings: Timings,
}

/// Discovery output (exposed for benchmarks that time it separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovery {
    /// Covariates `Z = PA_T` (or the `MB(T)` fallback).
    pub covariates: Vec<AttrId>,
    /// Mediators per outcome: `M_j = PA_{Y_j} − {T} − Z`.
    pub mediators: Vec<Vec<AttrId>>,
    /// Whether the fallback was used for `Z`.
    pub used_fallback: bool,
    /// FD drops `(dropped, kept)`.
    pub dropped_fd: Vec<(AttrId, AttrId)>,
    /// Key-like drops.
    pub dropped_keys: Vec<AttrId>,
}

/// The HypDB system bound to a table — any [`Scan`] storage: the
/// monolithic [`Table`] (the default) or `hypdb-store`'s sharded
/// `ShardedTable`. The whole pipeline (WHERE selection, discovery,
/// detection, explanation, effect estimation) runs on the shared
/// shard-aware kernels, so reports are byte-identical across storage
/// layouts.
pub struct HypDb<'a, S: Scan + ?Sized = Table> {
    table: &'a S,
    cfg: HypDbConfig,
    covariates: Option<Vec<AttrId>>,
    mediators: Option<Vec<AttrId>>,
    oracle_cache: Option<Arc<OracleCache>>,
}

impl<'a, S: Scan + ?Sized> HypDb<'a, S> {
    /// Binds HypDB to a table with default configuration.
    pub fn new(table: &'a S) -> Self {
        HypDb {
            table,
            cfg: HypDbConfig::default(),
            covariates: None,
            mediators: None,
            oracle_cache: None,
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, cfg: HypDbConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Shares an existing oracle cache with this pipeline's discovery
    /// phase. The cache **must** belong to the same `(table, WHERE
    /// selection)` — its contingency tables and entropies are pure
    /// functions of that data, so concurrent analyses over one
    /// selection (e.g. in-flight server requests) coalesce their
    /// statement batches and hit one another's entries; the caller can
    /// also read the accumulated [`hypdb_causal::OracleStats`] back
    /// out of it after the run.
    pub fn with_oracle_cache(mut self, cache: Arc<OracleCache>) -> Self {
        self.oracle_cache = Some(cache);
        self
    }

    /// Supplies known covariates, skipping automatic discovery.
    pub fn with_covariates<I, N>(mut self, names: I) -> Result<Self>
    where
        I: IntoIterator<Item = N>,
        N: AsRef<str>,
    {
        let ids = names
            .into_iter()
            .map(|n| self.table.attr(n.as_ref()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        self.covariates = Some(ids);
        Ok(self)
    }

    /// Supplies known mediators (applied to every outcome), skipping
    /// automatic discovery.
    pub fn with_mediators<I, N>(mut self, names: I) -> Result<Self>
    where
        I: IntoIterator<Item = N>,
        N: AsRef<str>,
    {
        let ids = names
            .into_iter()
            .map(|n| self.table.attr(n.as_ref()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        self.mediators = Some(ids);
        Ok(self)
    }

    /// The bound table.
    pub fn table(&self) -> &S {
        self.table
    }

    /// The worker pool for this pipeline's own fan-out.
    fn pool(&self) -> ThreadPool {
        self.cfg
            .threads
            .map(ThreadPool::new)
            .unwrap_or_else(ThreadPool::current)
    }

    /// Discovers covariates and mediators for a query (§4): logical
    /// dependencies are dropped, then CD learns `PA_T` (and `PA_{Y_j}`
    /// for direct effects) on the WHERE-selected sub-population.
    pub fn discover(&self, query: &Query) -> Result<Discovery> {
        let rows = query.predicate.select(self.table);
        if rows.is_empty() {
            return Err(Error::EmptySelection);
        }

        // Never treat the query's own attributes as droppable or as
        // adjustment candidates.
        let referenced = query.referenced();
        let mut dropped_fd = Vec::new();
        let mut dropped_keys = Vec::new();

        let candidate_attrs: Vec<AttrId> =
            hypdb_obs::span("preprocess", || match &self.cfg.preprocess {
                Some(pcfg) => {
                    let others: Vec<AttrId> = self
                        .table
                        .schema()
                        .attr_ids()
                        .filter(|a| !referenced.contains(a))
                        .collect();
                    let rep = drop_logical_dependencies(self.table, &rows, &others, pcfg);
                    dropped_fd = rep.dropped_fd;
                    dropped_keys = rep.dropped_keys;
                    rep.kept
                }
                None => self
                    .table
                    .schema()
                    .attr_ids()
                    .filter(|a| !referenced.contains(a))
                    .collect(),
            });

        // Oracle variables: treatment + outcomes + surviving candidates.
        let mut vars: Vec<AttrId> = vec![query.treatment];
        vars.extend(&query.outcomes);
        vars.extend(&candidate_attrs);
        let oracle = match &self.oracle_cache {
            Some(cache) => DataOracle::with_cache(
                self.table,
                rows,
                vars.clone(),
                self.cfg.ci,
                Arc::clone(cache),
            ),
            None => DataOracle::new(self.table, rows, vars.clone(), self.cfg.ci),
        };

        let (covariates, used_fallback) = hypdb_obs::span("discovery", || match &self.covariates {
            Some(z) => (z.clone(), false),
            None => {
                let out = discover_parents(&oracle, 0, self.cfg.cd);
                let excluded: Vec<AttrId> = query.referenced();
                let to_attrs = |vs: &[usize]| -> Vec<AttrId> {
                    vs.iter()
                        .map(|&v| vars[v])
                        .filter(|a| !excluded.contains(a))
                        .collect()
                };
                let parents = to_attrs(&out.parents);
                if parents.is_empty() {
                    // §4 fallback: Z = MB(T) − {Y}.
                    (to_attrs(&out.markov_boundary), true)
                } else {
                    (parents, false)
                }
            }
        });

        let mediators: Vec<Vec<AttrId>> = if !self.cfg.compute_direct {
            vec![Vec::new(); query.outcomes.len()]
        } else if let Some(m) = &self.mediators {
            vec![m.clone(); query.outcomes.len()]
        } else {
            // One independent CD run per outcome — fanned out over the
            // pool (the shared oracle's caches and per-statement seeds
            // keep every run deterministic).
            hypdb_obs::span("discovery", || {
                self.pool().parallel_map(&query.outcomes, |j, _| {
                    // Outcome j is oracle variable 1 + j.
                    let out = discover_parents(&oracle, 1 + j, self.cfg.cd);
                    let admissible = |a: &AttrId| {
                        *a != query.treatment
                            && !covariates.contains(a)
                            && !query.outcomes.contains(a)
                            && !query.grouping.contains(a)
                    };
                    let parents: Vec<AttrId> = out
                        .parents
                        .iter()
                        .map(|&v| vars[v])
                        .filter(admissible)
                        .collect();
                    if !parents.is_empty() {
                        return parents;
                    }
                    // Fallback mirroring §4's Z-fallback: when Y's
                    // parents cannot be oriented, take MB(Y) filtered to
                    // attributes that are (marginally) dependent on the
                    // treatment — a mediator must be a descendant of T.
                    // Like the paper's own Ex 1.1 output (which lists
                    // ArrDelay as "mediating"), this can admit
                    // descendants of Y; the NDE then conditions on them
                    // conservatively.
                    out.markov_boundary
                        .iter()
                        .filter(|&&v| {
                            v != 0 && oracle.reliable(0, v, &[]) && oracle.dependent(0, v, &[])
                        })
                        .map(|&v| vars[v])
                        .filter(admissible)
                        .collect()
                })
            })
        };

        Ok(Discovery {
            covariates,
            mediators,
            used_fallback,
            dropped_fd,
            dropped_keys,
        })
    }

    /// Full pipeline: discovery, then per-context detection,
    /// explanation and resolution.
    pub fn analyze(&self, query: &Query) -> Result<AnalysisReport> {
        // Feeds Timings, which the wire layer zeroes before
        // serialization (wire.rs canonical_report_bytes).
        let t0 = Tick::now();
        let discovery = self.discover(query)?;
        let mut timings = Timings::default();
        let name = |a: &AttrId| self.table.schema().name(*a).to_string();

        // One independent analysis per context (the row-blocks of a
        // Fig 3/4 report), fanned out over the pool. Every context
        // derives its RNG seeds from the configuration alone, so the
        // reports are identical at any thread count; phase timings are
        // summed across contexts (CPU time, not wall clock, once the
        // contexts overlap).
        let ctxs = contexts(self.table, query);
        let results = self
            .pool()
            .parallel_map(&ctxs, |_, ctx| self.analyze_context(query, &discovery, ctx));
        let mut context_reports = Vec::with_capacity(ctxs.len());
        for result in results {
            let (report, t) = result?;
            timings.detection += t.detection;
            timings.explanation += t.explanation;
            timings.resolution += t.resolution;
            context_reports.push(report);
        }
        // Attribute the un-phased remainder (discovery, bookkeeping) to
        // detection. Under parallel contexts the summed phase times can
        // exceed the wall clock; never subtract in that case.
        let unattributed =
            t0.elapsed_secs() - (timings.detection + timings.explanation + timings.resolution);
        if unattributed > 0.0 {
            timings.detection += unattributed;
        }

        // Union of all mediator sets for the direct rewrite text.
        let mut med_union: Vec<AttrId> = Vec::new();
        for ms in &discovery.mediators {
            for &m in ms {
                if !med_union.contains(&m) {
                    med_union.push(m);
                }
            }
        }
        let rewritten = hypdb_obs::span("rewrite", || {
            render_rewrites(self.table, query, &discovery.covariates, &med_union)
        });

        Ok(AnalysisReport {
            from: query.from.clone(),
            treatment: name(&query.treatment),
            outcomes: query.outcomes.iter().map(&name).collect(),
            covariates: discovery.covariates.iter().map(name).collect(),
            mediators: discovery
                .mediators
                .iter()
                .map(|ms| ms.iter().map(name).collect())
                .collect(),
            used_fallback: discovery.used_fallback,
            dropped_fd: discovery
                .dropped_fd
                .iter()
                .map(|(a, b)| (name(a), name(b)))
                .collect(),
            dropped_keys: discovery.dropped_keys.iter().map(name).collect(),
            contexts: context_reports,
            rewritten,
            timings,
        })
    }

    fn analyze_context(
        &self,
        query: &Query,
        discovery: &Discovery,
        ctx: &Context,
    ) -> Result<(ContextReport, Timings)> {
        let mut timings = Timings::default();
        let table = self.table;
        let t = query.treatment;
        let seed = self.cfg.ci.seed;
        let mit_cfg = self.cfg.ci.mit;

        // Observed treatment levels in this context.
        let level_rows = group_counts(table, &ctx.rows, &[t]);
        let levels: Vec<u32> = level_rows.iter().map(|g| g.key[0]).collect();
        let level_names: Vec<String> = levels
            .iter()
            .map(|&c| table.dict(t).value(c).to_string())
            .collect();

        // --- The original query's answers. ---
        let sql_rows =
            hypdb_table::groupby::group_average(table, &ctx.rows, &[t], &query.outcomes)?;
        let sql_answers: Vec<Vec<f64>> = sql_rows.iter().map(|g| g.averages.clone()).collect();
        let sql_diff = (levels.len() == 2).then(|| {
            (0..query.outcomes.len())
                .map(|o| sql_answers[1][o] - sql_answers[0][o])
                .collect()
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
        let sql_significance: Vec<TestOutcome> = query
            .outcomes
            .iter()
            .map(|&y| {
                let strata = Stratified::build(table, &ctx.rows, t, y, &[]);
                hymit(&strata, &mit_cfg, &mut rng)
            })
            .collect();

        // --- Detection. ---
        // Phase ticks feed Timings, which the wire layer zeroes before
        // serialization (wire.rs canonical_report_bytes).
        let td = Tick::now();
        let (bias_total, bias_direct) = hypdb_obs::span("detect", || {
            let bias_total = detect_bias(
                table,
                &ctx.rows,
                t,
                &discovery.covariates,
                self.cfg.ci.alpha,
                &mit_cfg,
                seed ^ 0xB1A5,
            );
            let bias_direct: Vec<BiasReport> = discovery
                .mediators
                .iter()
                .map(|ms| {
                    let mut v = discovery.covariates.clone();
                    v.extend(ms);
                    detect_bias(
                        table,
                        &ctx.rows,
                        t,
                        &v,
                        self.cfg.ci.alpha,
                        &mit_cfg,
                        seed ^ 0xD1,
                    )
                })
                .collect();
            (bias_total, bias_direct)
        });
        timings.detection += td.elapsed_secs();

        // --- Explanation. ---
        let te = Tick::now();
        let explanations = hypdb_obs::span("explain", || {
            let mut explain_attrs: Vec<AttrId> = discovery.covariates.clone();
            for ms in &discovery.mediators {
                for &m in ms {
                    if !explain_attrs.contains(&m) {
                        explain_attrs.push(m);
                    }
                }
            }
            let coarse = coarse_explanations(table, &ctx.rows, t, &explain_attrs);
            let fine = match (coarse.first(), query.outcomes.first()) {
                (Some(top), Some(&y)) if top.mutual_information > 0.0 => {
                    fine_explanations(table, &ctx.rows, t, y, top.attr, self.cfg.top_k)
                }
                _ => Vec::new(),
            };
            Explanations { coarse, fine }
        });
        timings.explanation += te.elapsed_secs();

        // --- Resolution. ---
        let tr = Tick::now();
        let (total_effect, direct_effects) = hypdb_obs::span("effect", || -> Result<_> {
            if levels.len() >= 2 {
                let total = adjusted_averages(
                    table,
                    &ctx.rows,
                    t,
                    &levels,
                    &query.outcomes,
                    &discovery.covariates,
                    &mit_cfg,
                    seed ^ 0xA7E,
                )?;
                let directs = query
                    .outcomes
                    .iter()
                    .zip(&discovery.mediators)
                    .map(|(&y, ms)| {
                        natural_direct_effect(
                            table,
                            &ctx.rows,
                            t,
                            &levels,
                            &[y],
                            &discovery.covariates,
                            ms,
                            &mit_cfg,
                            seed ^ 0xDE,
                        )
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok((Some(total), directs))
            } else {
                Ok((None, Vec::new()))
            }
        })?;
        timings.resolution += tr.elapsed_secs();

        Ok((
            ContextReport {
                label: ctx.label(table),
                n_rows: ctx.rows.len(),
                levels: level_names,
                sql_answers,
                sql_diff,
                sql_significance,
                bias_total,
                bias_direct,
                total_effect,
                direct_effects,
                explanations,
            },
            timings,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use hypdb_graph::bayes::BayesNet;
    use hypdb_graph::dag::Dag;
    use hypdb_table::TableBuilder;

    /// Confounded generator: Z -> T, Z -> Y; no T -> Y edge.
    fn confounded_net(n: usize, seed: u64) -> Table {
        let mut dag = Dag::with_names(["Z", "T", "Y"]);
        dag.add_edge(0, 1);
        dag.add_edge(0, 2);
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(0, vec![0.5, 0.5]);
        net.set_cpt(1, vec![0.8, 0.2, 0.2, 0.8]);
        net.set_cpt(2, vec![0.75, 0.25, 0.25, 0.75]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        net.sample_table(&mut rng, n)
    }

    #[test]
    fn end_to_end_confounded_query() {
        let table = confounded_net(20_000, 42);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table).analyze(&q).unwrap();

        // Discovery must find Z as the covariate.
        assert_eq!(
            report.covariates,
            vec!["Z"],
            "fallback={}",
            report.used_fallback
        );
        assert_eq!(report.contexts.len(), 1);
        let ctx = &report.contexts[0];

        // The naive query shows a large, significant difference…
        assert!(ctx.sql_diff.as_ref().unwrap()[0].abs() > 0.1);
        assert!(ctx.sql_significance[0].p_value < 0.01);
        // …and is detected as biased.
        assert!(ctx.bias_total.biased);
        // The adjusted difference vanishes.
        let total = ctx.total_effect.as_ref().unwrap();
        assert!(
            total.diff.as_ref().unwrap()[0].abs() < 0.03,
            "adjusted diff {:?}",
            total.diff
        );
        assert!(total.significance[0].p_value > 0.01);
        // Z gets all the responsibility.
        assert_eq!(ctx.explanations.coarse[0].name, "Z");
        assert!(ctx.explanations.coarse[0].responsibility > 0.9);
        assert!(!ctx.explanations.fine.is_empty());
        // Rewritten SQL mentions the covariate.
        assert!(report.rewritten.total_sql.contains("Z"));
    }

    #[test]
    fn known_covariates_skip_discovery() {
        let table = confounded_net(5_000, 7);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table)
            .with_covariates(["Z"])
            .unwrap()
            .analyze(&q)
            .unwrap();
        assert_eq!(report.covariates, vec!["Z"]);
        assert!(!report.used_fallback);
    }

    #[test]
    fn unbiased_randomized_data() {
        // T randomised: no covariate imbalance possible.
        let mut dag = Dag::with_names(["Z", "T", "Y"]);
        dag.add_edge(0, 2); // Z -> Y only
        dag.add_edge(1, 2); // T -> Y
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(0, vec![0.5, 0.5]);
        net.set_cpt(1, vec![0.5, 0.5]);
        net.set_cpt(2, vec![0.9, 0.1, 0.6, 0.4, 0.4, 0.6, 0.1, 0.9]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let table = net.sample_table(&mut rng, 20_000);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table)
            .with_covariates(["Z"])
            .unwrap()
            .analyze(&q)
            .unwrap();
        let ctx = &report.contexts[0];
        assert!(!ctx.bias_total.biased, "randomised T cannot be biased");
        // Naive and adjusted agree on a real effect.
        let naive = ctx.sql_diff.as_ref().unwrap()[0];
        let adj = ctx.total_effect.as_ref().unwrap().diff.as_ref().unwrap()[0];
        assert!((naive - adj).abs() < 0.05);
        assert!(adj.abs() > 0.2);
    }

    #[test]
    fn empty_selection_is_an_error() {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        b.push_row(["a", "1", "x"]).unwrap();
        let table = b.finish();
        let q = QueryBuilder::new("T")
            .outcome("Y")
            .filter_eq("Z", "nope")
            .build(&table)
            .unwrap();
        assert!(matches!(
            HypDb::new(&table).analyze(&q),
            Err(Error::EmptySelection)
        ));
    }

    #[test]
    fn grouping_produces_context_per_value() {
        let table = confounded_net(4_000, 9);
        let q = QueryBuilder::new("T")
            .outcome("Y")
            .group_by("Z")
            .build(&table)
            .unwrap();
        let report = HypDb::new(&table)
            .with_covariates(Vec::<String>::new())
            .unwrap()
            .analyze(&q)
            .unwrap();
        assert_eq!(report.contexts.len(), 2);
        assert!(report.contexts.iter().any(|c| c.label == "Z=0"));
        // Within a Z stratum, T ⊥ Y: no significant naive difference.
        for ctx in &report.contexts {
            assert!(ctx.sql_significance[0].p_value > 0.001);
        }
    }

    #[test]
    fn compute_direct_false_skips_mediators() {
        let table = confounded_net(3_000, 2);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let cfg = HypDbConfig {
            compute_direct: false,
            ..HypDbConfig::default()
        };
        let report = HypDb::new(&table).with_config(cfg).analyze(&q).unwrap();
        assert!(report.mediators.iter().all(Vec::is_empty));
        assert!(report.rewritten.direct_sql.is_none());
    }

    #[test]
    fn mediator_override_respected() {
        let table = confounded_net(3_000, 6);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table)
            .with_covariates(Vec::<String>::new())
            .unwrap()
            .with_mediators(["Z"])
            .unwrap()
            .analyze(&q)
            .unwrap();
        assert_eq!(report.mediators, vec![vec!["Z".to_string()]]);
        assert!(report
            .rewritten
            .direct_sql
            .as_ref()
            .is_some_and(|s| s.contains("Z")));
    }

    #[test]
    fn report_serializes_to_json() {
        let table = confounded_net(2_000, 8);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table)
            .with_covariates(["Z"])
            .unwrap()
            .analyze(&q)
            .unwrap();
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"covariates\":[\"Z\"]"));
        let back: AnalysisReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.covariates, report.covariates);
        assert_eq!(back.contexts.len(), report.contexts.len());
    }

    #[test]
    fn timings_are_recorded() {
        let table = confounded_net(2_000, 1);
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table).analyze(&q).unwrap();
        let t = report.timings;
        assert!(t.detection >= 0.0 && t.explanation >= 0.0 && t.resolution >= 0.0);
        assert!(t.detection + t.explanation + t.resolution > 0.0);
    }
}
