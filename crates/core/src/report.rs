//! Human-readable rendering of analysis reports (the Fig 3/4 layout).

use crate::pipeline::{AnalysisReport, ContextReport};
use std::fmt;

fn fmt_p(p: f64) -> String {
    if p < 0.001 {
        "<0.001".to_string()
    } else {
        format!("{p:.3}")
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "HypDB report — effect of {} on {} (relation {})",
            self.treatment,
            self.outcomes.join(", "),
            self.from
        )?;
        writeln!(
            f,
            "covariates: [{}]{}",
            self.covariates.join(", "),
            if self.used_fallback {
                " (fallback: Markov boundary)"
            } else {
                ""
            }
        )?;
        for (o, ms) in self.outcomes.iter().zip(&self.mediators) {
            writeln!(f, "mediators for {o}: [{}]", ms.join(", "))?;
        }
        if !self.dropped_fd.is_empty() {
            let pairs: Vec<String> = self
                .dropped_fd
                .iter()
                .map(|(a, b)| format!("{a}≡{b}"))
                .collect();
            writeln!(f, "dropped (approximate FDs): {}", pairs.join(", "))?;
        }
        if !self.dropped_keys.is_empty() {
            writeln!(f, "dropped (key-like): {}", self.dropped_keys.join(", "))?;
        }
        for ctx in &self.contexts {
            write!(f, "{ctx}")?;
        }
        writeln!(
            f,
            "timings: detection {:.3}s, explanation {:.3}s, resolution {:.3}s",
            self.timings.detection, self.timings.explanation, self.timings.resolution
        )
    }
}

impl fmt::Display for ContextReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== context {} ({} rows) ==", self.label, self.n_rows)?;
        match (&self.bias_total.biased, self.bias_total.test.p_value) {
            (true, p) => writeln!(f, "BIASED query (balance test p = {})", fmt_p(p))?,
            (false, p) => writeln!(f, "query appears unbiased (balance test p = {})", fmt_p(p))?,
        }

        // Answer table: one row per treatment level.
        writeln!(
            f,
            "{:<14} {:>12} {:>14} {:>14}",
            "group", "SQL answer", "rewritten(tot)", "rewritten(dir)"
        )?;
        for (i, level) in self.levels.iter().enumerate() {
            let sql = self
                .sql_answers
                .get(i)
                .and_then(|v| v.first())
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into());
            let tot = self
                .total_effect
                .as_ref()
                .and_then(|e| e.adjusted.get(i))
                .and_then(|v| v.first())
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into());
            let dir = self
                .direct_effects
                .first()
                .and_then(|e| e.adjusted.get(i))
                .and_then(|v| v.first())
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into());
            writeln!(f, "{level:<14} {sql:>12} {tot:>14} {dir:>14}")?;
        }
        if let Some(d) = &self.sql_diff {
            let tot_d = self
                .total_effect
                .as_ref()
                .and_then(|e| e.diff.as_ref())
                .and_then(|v| v.first())
                .copied();
            let dir_d = self
                .direct_effects
                .first()
                .and_then(|e| e.diff.as_ref())
                .and_then(|v| v.first())
                .copied();
            writeln!(
                f,
                "{:<14} {:>12} {:>14} {:>14}",
                "diff",
                format!("{:+.3}", d[0]),
                tot_d
                    .map(|v| format!("{v:+.3}"))
                    .unwrap_or_else(|| "-".into()),
                dir_d
                    .map(|v| format!("{v:+.3}"))
                    .unwrap_or_else(|| "-".into()),
            )?;
            let sql_p = fmt_p(self.sql_significance[0].p_value);
            let tot_p = self
                .total_effect
                .as_ref()
                .map(|e| fmt_p(e.significance[0].p_value))
                .unwrap_or_else(|| "-".into());
            let dir_p = self
                .direct_effects
                .first()
                .map(|e| fmt_p(e.significance[0].p_value))
                .unwrap_or_else(|| "-".into());
            writeln!(
                f,
                "{:<14} {:>12} {:>14} {:>14}",
                "p-value", sql_p, tot_p, dir_p
            )?;
        }

        if !self.explanations.coarse.is_empty() {
            writeln!(f, "coarse-grained explanations (responsibility):")?;
            for r in self.explanations.coarse.iter().take(5) {
                writeln!(f, "  {:<20} {:.2}", r.name, r.responsibility)?;
            }
        }
        if !self.explanations.fine.is_empty() {
            writeln!(f, "fine-grained explanations (top triples):")?;
            for (rank, e) in self.explanations.fine.iter().enumerate() {
                writeln!(
                    f,
                    "  {}. T={} Y={} Z={}  (κ_tz={:+.4}, κ_yz={:+.4})",
                    rank + 1,
                    e.t_value,
                    e.y_value,
                    e.z_value,
                    e.kappa_tz,
                    e.kappa_yz
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::HypDb;
    use crate::query::QueryBuilder;
    use hypdb_table::TableBuilder;

    #[test]
    fn report_renders_all_sections() {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            ("t1", "1", "a", 30u32),
            ("t1", "0", "a", 10),
            ("t0", "1", "a", 5),
            ("t0", "0", "a", 5),
            ("t1", "1", "b", 5),
            ("t1", "0", "b", 10),
            ("t0", "1", "b", 10),
            ("t0", "0", "b", 40),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        let table = b.finish();
        let q = QueryBuilder::new("T").outcome("Y").build(&table).unwrap();
        let report = HypDb::new(&table)
            .with_covariates(["Z"])
            .unwrap()
            .analyze(&q)
            .unwrap();
        let text = report.to_string();
        assert!(text.contains("HypDB report"), "{text}");
        assert!(text.contains("covariates: [Z]"));
        assert!(text.contains("SQL answer"));
        assert!(text.contains("coarse-grained explanations"));
        assert!(text.contains("fine-grained explanations"));
        assert!(text.contains("timings:"));
        // The biased verdict appears (this data is strongly confounded).
        assert!(text.contains("BIASED query"), "{text}");
    }

    #[test]
    fn p_value_formatting() {
        assert_eq!(super::fmt_p(0.0005), "<0.001");
        assert_eq!(super::fmt_p(0.05), "0.050");
        assert_eq!(super::fmt_p(1.0), "1.000");
    }
}
