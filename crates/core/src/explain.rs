//! Explanations for bias (§3.2).
//!
//! * **Coarse-grained** (Def 3.3): rank each `Z ∈ V` by its degree of
//!   responsibility `ρ_Z = (I(T;V|Γ) − I(T;V|Z,Γ)) / Σ_V (…)`. By the
//!   paper's footnote 1, for `Z ∈ V` the numerator telescopes to
//!   `I(T;Z|Γ)` — the responsibility ranking is the normalised marginal
//!   mutual information of the treatment with each covariate.
//! * **Fine-grained** (Def 3.4, Alg 3 "FGE"): for a covariate `Z`, rank
//!   the value triples `(t, y, z)` by their contribution
//!   `κ_{(t,z)} = Pr(t,z)·ln(Pr(t,z)/(Pr(t)Pr(z)))` to `I(T;Z)` and
//!   `κ_{(y,z)}` to `I(Y;Z)`, then merge the two rankings with Borda's
//!   method and report the top-k.

use hypdb_stats::borda::borda_aggregate;
use hypdb_stats::EntropyEstimator;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::{AttrId, RowSet, Scan};
use serde::{Deserialize, Serialize};

/// One coarse-grained explanation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Responsibility {
    /// The covariate / mediator.
    pub attr: AttrId,
    /// Attribute name (for rendering).
    pub name: String,
    /// Degree of responsibility `ρ` (the rows sum to 1 when any bias
    /// exists).
    pub responsibility: f64,
    /// The unnormalised numerator `I(T;Z|Γ)`.
    pub mutual_information: f64,
}

/// One fine-grained explanation row: a ground-level triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineExplanation {
    /// Treatment value.
    pub t_value: String,
    /// Outcome value.
    pub y_value: String,
    /// Covariate value.
    pub z_value: String,
    /// Contribution of `(t, z)` to `I(T;Z)`.
    pub kappa_tz: f64,
    /// Contribution of `(y, z)` to `I(Y;Z)`.
    pub kappa_yz: f64,
}

/// Bundled explanations for one context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Explanations {
    /// Covariates/mediators ranked by responsibility (descending).
    pub coarse: Vec<Responsibility>,
    /// Top-k triples for the most responsible attribute.
    pub fine: Vec<FineExplanation>,
}

/// Computes the coarse-grained ranking over `v` in the context `rows`.
pub fn coarse_explanations<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    v: &[AttrId],
) -> Vec<Responsibility> {
    let est = EntropyEstimator::MillerMadow;
    let h = |attrs: &[AttrId]| ContingencyTable::from_table(table, rows, attrs).entropy(est);
    let h_t = h(&[t]);
    let mut rows_out: Vec<Responsibility> = v
        .iter()
        .map(|&z| {
            let mi = (h_t + h(&[z]) - h(&[t, z])).max(0.0);
            Responsibility {
                attr: z,
                name: table.schema().name(z).to_string(),
                responsibility: 0.0,
                mutual_information: mi,
            }
        })
        .collect();
    let total: f64 = rows_out.iter().map(|r| r.mutual_information).sum();
    if total > 0.0 {
        for r in &mut rows_out {
            r.responsibility = r.mutual_information / total;
        }
    }
    rows_out.sort_by(|a, b| {
        b.responsibility
            .partial_cmp(&a.responsibility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows_out
}

/// Degree of contribution of each pair `(a, b)` to `I(A;B)` (Def 3.4),
/// returned as a map keyed by the pair's codes.
fn pair_contributions(ct: &ContingencyTable) -> hypdb_table::hash::FxHashMap<(u32, u32), f64> {
    let n = ct.total() as f64;
    let a_marg = ct.marginal(&[0]);
    let b_marg = ct.marginal(&[1]);
    let mut out = hypdb_table::hash::FxHashMap::default();
    ct.for_each(|key, count| {
        let p_ab = count as f64 / n;
        let p_a = a_marg.get(&[key[0]]) as f64 / n;
        let p_b = b_marg.get(&[key[1]]) as f64 / n;
        let kappa = p_ab * (p_ab / (p_a * p_b)).ln();
        out.insert((key[0], key[1]), kappa);
    });
    out
}

/// Runs FGE (Alg 3) for covariate `z`: ranks the observed triples
/// `(t, y, z)` by their contributions to `I(T;Z)` and `I(Y;Z)` and
/// Borda-aggregates the two rankings. Returns the top-`k`.
pub fn fine_explanations<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    y: AttrId,
    z: AttrId,
    k: usize,
) -> Vec<FineExplanation> {
    let tz = pair_contributions(&ContingencyTable::from_table(table, rows, &[t, z]));
    let yz = pair_contributions(&ContingencyTable::from_table(table, rows, &[y, z]));
    let triples = ContingencyTable::from_table(table, rows, &[t, y, z]);
    let mut keys: Vec<(u32, u32, u32)> = Vec::new();
    triples.for_each(|key, _| keys.push((key[0], key[1], key[2])));
    if keys.is_empty() {
        return Vec::new();
    }
    let kappa_t: Vec<f64> = keys
        .iter()
        .map(|&(tc, _, zc)| tz.get(&(tc, zc)).copied().unwrap_or(0.0))
        .collect();
    let kappa_y: Vec<f64> = keys
        .iter()
        .map(|&(_, yc, zc)| yz.get(&(yc, zc)).copied().unwrap_or(0.0))
        .collect();
    let order = borda_aggregate(&[kappa_t.clone(), kappa_y.clone()]);
    order
        .into_iter()
        .take(k)
        .map(|i| {
            let (tc, yc, zc) = keys[i];
            FineExplanation {
                t_value: table.dict(t).value(tc).to_string(),
                y_value: table.dict(y).value(yc).to_string(),
                z_value: table.dict(z).value(zc).to_string(),
                kappa_tz: kappa_t[i],
                kappa_yz: kappa_y[i],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    /// Two covariates: Z strongly confounds T, W is pure noise.
    fn data() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z", "W"]);
        let rows = [
            ("t1", "1", "a", "u", 28u32),
            ("t1", "1", "a", "v", 28),
            ("t1", "0", "b", "u", 7),
            ("t1", "0", "b", "v", 7),
            ("t0", "1", "a", "u", 7),
            ("t0", "1", "a", "v", 7),
            ("t0", "0", "b", "u", 28),
            ("t0", "0", "b", "v", 28),
        ];
        for (t, y, z, w, n) in rows {
            for _ in 0..n {
                b.push_row([t, y, z, w]).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn responsibility_ranks_confounder_first() {
        let tab = data();
        let (t, z, w) = (
            tab.attr("T").unwrap(),
            tab.attr("Z").unwrap(),
            tab.attr("W").unwrap(),
        );
        let coarse = coarse_explanations(&tab, &tab.all_rows(), t, &[w, z]);
        assert_eq!(coarse[0].name, "Z");
        assert!(coarse[0].responsibility > 0.9);
        assert!(coarse[1].responsibility < 0.1);
        let sum: f64 = coarse.iter().map(|r| r.responsibility).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn responsibility_zero_when_balanced() {
        // T assigned independently of Z.
        let mut b = TableBuilder::new(["T", "Z"]);
        for (t, z, n) in [
            ("t0", "a", 25u32),
            ("t0", "b", 25),
            ("t1", "a", 25),
            ("t1", "b", 25),
        ] {
            for _ in 0..n {
                b.push_row([t, z]).unwrap();
            }
        }
        let tab = b.finish();
        let t = tab.attr("T").unwrap();
        let z = tab.attr("Z").unwrap();
        let coarse = coarse_explanations(&tab, &tab.all_rows(), t, &[z]);
        // Plug-in MI is 0; Miller–Madow adds only a tiny correction.
        assert!(coarse[0].mutual_information < 0.02);
    }

    #[test]
    fn fine_explanations_surface_dominant_triple() {
        let tab = data();
        let (t, y, z) = (
            tab.attr("T").unwrap(),
            tab.attr("Y").unwrap(),
            tab.attr("Z").unwrap(),
        );
        let fine = fine_explanations(&tab, &tab.all_rows(), t, y, z, 2);
        assert_eq!(fine.len(), 2);
        // The dominant pattern: (t1, 1, a) — t1 flights concentrate in
        // z=a which concentrates y=1 — and its mirror (t0, 0, b).
        let top: Vec<(&str, &str, &str)> = fine
            .iter()
            .map(|f| (f.t_value.as_str(), f.y_value.as_str(), f.z_value.as_str()))
            .collect();
        assert!(top.contains(&("t1", "1", "a")), "{top:?}");
        assert!(top.contains(&("t0", "0", "b")), "{top:?}");
        for f in &fine {
            assert!(f.kappa_tz > 0.0);
            assert!(f.kappa_yz > 0.0);
        }
    }

    #[test]
    fn fine_explanations_k_bounds() {
        let tab = data();
        let (t, y, z) = (
            tab.attr("T").unwrap(),
            tab.attr("Y").unwrap(),
            tab.attr("Z").unwrap(),
        );
        assert!(fine_explanations(&tab, &tab.all_rows(), t, y, z, 0).is_empty());
        let all = fine_explanations(&tab, &tab.all_rows(), t, y, z, 100);
        // Observed triples only: 4 distinct (t,y,z) combos exist.
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn contribution_signs() {
        // Negative association (t0,a): appears less than independence
        // predicts => negative kappa.
        let tab = data();
        let t = tab.attr("T").unwrap();
        let z = tab.attr("Z").unwrap();
        let ct = ContingencyTable::from_table(&tab, &tab.all_rows(), &[t, z]);
        let contrib = pair_contributions(&ct);
        // (t1=0, a=0) over-represented: positive.
        assert!(contrib[&(0, 0)] > 0.0);
        // (t1=0, b=1) under-represented: negative.
        assert!(contrib[&(0, 1)] < 0.0);
        // Sum over pairs = I(T;Z) > 0.
        let mi: f64 = contrib.values().sum();
        assert!(mi > 0.1);
    }

    #[test]
    fn empty_rows_yield_empty_explanations() {
        let tab = data();
        let (t, y, z) = (
            tab.attr("T").unwrap(),
            tab.attr("Y").unwrap(),
            tab.attr("Z").unwrap(),
        );
        let empty = hypdb_table::RowSet::Ids(vec![]);
        assert!(fine_explanations(&tab, &empty, t, y, z, 3).is_empty());
        let coarse = coarse_explanations(&tab, &empty, t, &[z]);
        assert_eq!(coarse[0].mutual_information, 0.0);
    }
}
