use std::fmt;

/// Errors raised by the HypDB pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Table-layer failure (unknown attribute, non-numeric outcome, …).
    Table(hypdb_table::Error),
    /// The query's treatment attribute has fewer than two levels in the
    /// selected sub-population.
    DegenerateTreatment {
        /// Treatment attribute name.
        attr: String,
        /// Number of levels observed.
        levels: usize,
    },
    /// The selection matched no rows.
    EmptySelection,
    /// A caller-supplied attribute set was invalid.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Table(e) => write!(f, "{e}"),
            Error::DegenerateTreatment { attr, levels } => write!(
                f,
                "treatment `{attr}` has {levels} level(s) in the selected data; \
                 need at least 2 to compare"
            ),
            Error::EmptySelection => write!(f, "WHERE clause selects no rows"),
            Error::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<hypdb_table::Error> for Error {
    fn from(e: hypdb_table::Error) -> Self {
        Error::Table(e)
    }
}

/// Result alias for HypDB core.
pub type Result<T> = std::result::Result<T, Error>;
