//! Context enumeration: `Γ_i = C ∧ (X = x_i)` for each combination
//! `x_i` of the query's non-treatment grouping attributes (§2).

use crate::query::Query;
use hypdb_table::groupby::group_counts;
use hypdb_table::{AttrId, Predicate, RowSet, Scan};

/// One context of a query: a sub-population selected by the WHERE
/// clause plus one grouping-value combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// `(attribute, value)` pairs identifying the context (empty when
    /// the query has no grouping besides the treatment).
    pub values: Vec<(AttrId, String)>,
    /// The rows of the context.
    pub rows: RowSet,
}

impl Context {
    /// Human-readable label, e.g. `Quarter=1, Year=2017`.
    pub fn label<S: Scan + ?Sized>(&self, table: &S) -> String {
        if self.values.is_empty() {
            return "(all)".to_string();
        }
        self.values
            .iter()
            .map(|(a, v)| format!("{}={v}", table.schema().name(*a)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Enumerates the contexts of `query` over any [`Scan`] storage, sorted
/// by grouping key. Empty contexts are not produced (only observed
/// combinations). The WHERE selection runs shard-parallel.
pub fn contexts<S: Scan + ?Sized>(table: &S, query: &Query) -> Vec<Context> {
    let base = query.predicate.select(table);
    if query.grouping.is_empty() {
        return vec![Context {
            values: Vec::new(),
            rows: base,
        }];
    }
    let combos = group_counts(table, &base, &query.grouping);
    combos
        .into_iter()
        .map(|g| {
            let preds: Vec<Predicate> = query
                .grouping
                .iter()
                .zip(g.key.iter())
                .map(|(&a, &code)| Predicate::Eq(a, code))
                .collect();
            let rows = Predicate::and(preds).select_within(table, &base);
            let values = query
                .grouping
                .iter()
                .zip(g.key.iter())
                .map(|(&a, &code)| (a, table.dict(a).value(code).to_string()))
                .collect();
            Context { values, rows }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use hypdb_table::{Table, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "X"]);
        for (t, y, x) in [
            ("a", "1", "p"),
            ("b", "0", "p"),
            ("a", "0", "q"),
            ("b", "1", "q"),
            ("a", "1", "q"),
        ] {
            b.push_row([t, y, x]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn no_grouping_single_context() {
        let t = table();
        let q = QueryBuilder::new("T").outcome("Y").build(&t).unwrap();
        let cs = contexts(&t, &q);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].rows.len(), 5);
        assert_eq!(cs[0].label(&t), "(all)");
    }

    #[test]
    fn grouping_splits_contexts() {
        let t = table();
        let q = QueryBuilder::new("T")
            .outcome("Y")
            .group_by("X")
            .build(&t)
            .unwrap();
        let cs = contexts(&t, &q);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].label(&t), "X=p");
        assert_eq!(cs[0].rows.len(), 2);
        assert_eq!(cs[1].label(&t), "X=q");
        assert_eq!(cs[1].rows.len(), 3);
    }

    #[test]
    fn where_restricts_contexts() {
        let t = table();
        let q = QueryBuilder::new("T")
            .outcome("Y")
            .group_by("X")
            .filter_eq("X", "q")
            .build(&t)
            .unwrap();
        let cs = contexts(&t, &q);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].label(&t), "X=q");
    }
}
