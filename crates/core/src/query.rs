//! The query model: Listing 1's
//! `SELECT T, X, avg(Y1), …, avg(Ye) FROM D WHERE C GROUP BY T, X`.

use crate::error::{Error, Result};
use hypdb_sql::{Expr, SelectItem, Statement};
use hypdb_table::{AttrId, Predicate, Scan};

/// A resolved group-by-average query with a designated treatment.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The treatment attribute `T` (always part of the grouping).
    pub treatment: AttrId,
    /// Outcome attributes `Y1…Ye` (numeric-coded).
    pub outcomes: Vec<AttrId>,
    /// Additional grouping attributes `X` (contexts iterate over their
    /// value combinations).
    pub grouping: Vec<AttrId>,
    /// The WHERE condition `C`, value-resolved.
    pub predicate: Predicate,
    /// The WHERE clause as SQL text (for report/rewrite rendering).
    pub where_sql: Option<String>,
    /// Source relation name (for rendering).
    pub from: String,
}

impl Query {
    /// Builds from a parsed SQL statement against any [`Scan`] storage.
    /// The treatment is the given group-by column; remaining group-by
    /// columns become `X`.
    pub fn from_statement<S: Scan + ?Sized>(
        stmt: &Statement,
        table: &S,
        treatment: &str,
    ) -> Result<Query> {
        if !stmt.group_by.iter().any(|g| g == treatment) {
            return Err(Error::Invalid(format!(
                "treatment `{treatment}` must appear in GROUP BY"
            )));
        }
        let t = table.attr(treatment)?;
        let outcomes: Vec<AttrId> = stmt
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Avg(c) => Some(table.attr(c)),
                _ => None,
            })
            .collect::<std::result::Result<_, _>>()?;
        if outcomes.is_empty() {
            return Err(Error::Invalid("query has no avg() outcome".into()));
        }
        let grouping: Vec<AttrId> = stmt
            .group_by
            .iter()
            .filter(|g| *g != treatment)
            .map(|g| table.attr(g))
            .collect::<std::result::Result<_, _>>()?;
        let predicate = match &stmt.where_clause {
            Some(e) => compile(table, e)?,
            None => Predicate::True,
        };
        Ok(Query {
            treatment: t,
            outcomes,
            grouping,
            predicate,
            where_sql: stmt.where_clause.as_ref().map(|e| e.to_string()),
            from: stmt.from.clone(),
        })
    }

    /// Builds from SQL text, treating the **first** group-by column as
    /// the treatment (the paper's Listing 1 convention).
    pub fn from_sql<S: Scan + ?Sized>(sql: &str, table: &S) -> Result<Query> {
        let stmt =
            hypdb_sql::parse_query(sql).map_err(|e| Error::Invalid(format!("parse error: {e}")))?;
        let treatment = stmt
            .group_by
            .first()
            .cloned()
            .ok_or_else(|| Error::Invalid("query has no GROUP BY".into()))?;
        Query::from_statement(&stmt, table, &treatment)
    }

    /// Attributes referenced by the query (treatment + outcomes +
    /// grouping).
    pub fn referenced(&self) -> Vec<AttrId> {
        let mut v = vec![self.treatment];
        v.extend(&self.outcomes);
        v.extend(&self.grouping);
        v
    }
}

fn compile<S: Scan + ?Sized>(table: &S, expr: &Expr) -> Result<Predicate> {
    hypdb_sql::exec::compile_expr(table, expr).map_err(|e| Error::Invalid(e.to_string()))
}

/// Fluent builder for [`Query`] without going through SQL.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    treatment: String,
    outcomes: Vec<String>,
    grouping: Vec<String>,
    filters: Vec<(String, Vec<String>)>,
    from: String,
}

impl QueryBuilder {
    /// Starts a query comparing groups of `treatment`.
    pub fn new(treatment: impl Into<String>) -> Self {
        QueryBuilder {
            treatment: treatment.into(),
            outcomes: Vec::new(),
            grouping: Vec::new(),
            filters: Vec::new(),
            from: "D".into(),
        }
    }

    /// Adds an `avg(outcome)` column.
    pub fn outcome(mut self, name: impl Into<String>) -> Self {
        self.outcomes.push(name.into());
        self
    }

    /// Adds a non-treatment grouping attribute.
    pub fn group_by(mut self, name: impl Into<String>) -> Self {
        self.grouping.push(name.into());
        self
    }

    /// Adds `attr IN (values)` to the WHERE conjunction.
    pub fn filter_in<I, S>(mut self, attr: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.filters
            .push((attr.into(), values.into_iter().map(Into::into).collect()));
        self
    }

    /// Adds `attr = value` to the WHERE conjunction.
    pub fn filter_eq(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.filters.push((attr.into(), vec![value.into()]));
        self
    }

    /// Sets the relation name used in rendered SQL.
    pub fn from_name(mut self, name: impl Into<String>) -> Self {
        self.from = name.into();
        self
    }

    /// Resolves against any [`Scan`] storage.
    pub fn build<S: Scan + ?Sized>(self, table: &S) -> Result<Query> {
        let treatment = table.attr(&self.treatment)?;
        if self.outcomes.is_empty() {
            return Err(Error::Invalid("query has no avg() outcome".into()));
        }
        let outcomes: Vec<AttrId> = self
            .outcomes
            .iter()
            .map(|o| table.attr(o))
            .collect::<std::result::Result<_, _>>()?;
        let grouping: Vec<AttrId> = self
            .grouping
            .iter()
            .map(|g| table.attr(g))
            .collect::<std::result::Result<_, _>>()?;
        let mut preds = Vec::new();
        let mut where_parts = Vec::new();
        for (attr, values) in &self.filters {
            if values.len() == 1 {
                preds.push(Predicate::eq(table, attr, &values[0])?);
                where_parts.push(format!("{attr} = '{}'", values[0]));
            } else {
                preds.push(Predicate::is_in(
                    table,
                    attr,
                    values.iter().map(String::as_str),
                )?);
                where_parts.push(format!(
                    "{attr} IN ({})",
                    values
                        .iter()
                        .map(|v| format!("'{v}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(Query {
            treatment,
            outcomes,
            grouping,
            predicate: Predicate::and(preds),
            where_sql: if where_parts.is_empty() {
                None
            } else {
                Some(where_parts.join(" AND "))
            },
            from: self.from,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(["Carrier", "Airport", "Delayed", "Quarter"]);
        for (c, a, d, q) in [
            ("AA", "COS", "0", "1"),
            ("UA", "ROC", "1", "2"),
            ("AA", "ROC", "1", "1"),
        ] {
            b.push_row([c, a, d, q]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn from_sql_first_group_is_treatment() {
        let t = table();
        let q = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Airport IN ('COS','ROC') GROUP BY Carrier",
            &t,
        )
        .unwrap();
        assert_eq!(q.treatment, t.attr("Carrier").unwrap());
        assert_eq!(q.outcomes, vec![t.attr("Delayed").unwrap()]);
        assert!(q.grouping.is_empty());
        assert_eq!(q.from, "FlightData");
        assert!(q.where_sql.unwrap().contains("Airport IN"));
    }

    #[test]
    fn extra_grouping_attributes() {
        let t = table();
        let q = Query::from_sql(
            "SELECT Carrier, Quarter, avg(Delayed) FROM F GROUP BY Carrier, Quarter",
            &t,
        )
        .unwrap();
        assert_eq!(q.grouping, vec![t.attr("Quarter").unwrap()]);
    }

    #[test]
    fn treatment_must_be_grouped() {
        let t = table();
        let stmt =
            hypdb_sql::parse_query("SELECT Carrier, avg(Delayed) FROM F GROUP BY Carrier").unwrap();
        assert!(Query::from_statement(&stmt, &t, "Airport").is_err());
    }

    #[test]
    fn outcome_required() {
        let t = table();
        assert!(Query::from_sql("SELECT Carrier, count(*) FROM F GROUP BY Carrier", &t).is_err());
        assert!(QueryBuilder::new("Carrier").build(&t).is_err());
    }

    #[test]
    fn builder_equivalent_to_sql() {
        let t = table();
        let q1 = QueryBuilder::new("Carrier")
            .outcome("Delayed")
            .filter_in("Airport", ["COS", "ROC"])
            .from_name("FlightData")
            .build(&t)
            .unwrap();
        let q2 = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Airport IN ('COS','ROC') GROUP BY Carrier",
            &t,
        )
        .unwrap();
        assert_eq!(q1.treatment, q2.treatment);
        assert_eq!(q1.outcomes, q2.outcomes);
        assert_eq!(q1.predicate, q2.predicate);
    }

    #[test]
    fn builder_eq_filter() {
        let t = table();
        let q = QueryBuilder::new("Carrier")
            .outcome("Delayed")
            .filter_eq("Airport", "ROC")
            .build(&t)
            .unwrap();
        let rows = q.predicate.select(&t);
        assert_eq!(rows.len(), 2);
        assert_eq!(q.where_sql.unwrap(), "Airport = 'ROC'");
    }

    #[test]
    fn referenced_attrs() {
        let t = table();
        let q = QueryBuilder::new("Carrier")
            .outcome("Delayed")
            .group_by("Quarter")
            .build(&t)
            .unwrap();
        assert_eq!(q.referenced().len(), 3);
    }
}
