//! Query rewriting glue (§3.3): turning a biased query plus an
//! adjustment set into (a) the rewritten SQL text of Listing 2/3 and
//! (b) the evaluated, de-biased answers.

use crate::effect::EffectEstimate;
use crate::query::Query;
use hypdb_sql::RewriteSpec;
use hypdb_table::Scan;
use serde::{Deserialize, Serialize};

/// The rewrite outputs for one query (SQL text plus evaluated effects
/// live in the per-context reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteResult {
    /// The rewritten query (total effect) as SQL text.
    pub total_sql: String,
    /// The rewritten query for the direct effect (adjusting for
    /// covariates ∪ mediators), when mediators are known.
    pub direct_sql: Option<String>,
}

/// Builds the [`RewriteSpec`] for a query and an adjustment set.
pub fn rewrite_spec<S: Scan + ?Sized>(
    table: &S,
    query: &Query,
    adjustment: &[hypdb_table::AttrId],
) -> RewriteSpec {
    let name = |a: &hypdb_table::AttrId| table.schema().name(*a).to_string();
    RewriteSpec {
        from: query.from.clone(),
        treatment: name(&query.treatment),
        outcomes: query.outcomes.iter().map(&name).collect(),
        grouping: query.grouping.iter().map(&name).collect(),
        adjustment: adjustment.iter().map(name).collect(),
        where_sql: query.where_sql.clone(),
        distinct_treatments: 2,
    }
}

/// Renders both rewritten queries.
pub fn render_rewrites<S: Scan + ?Sized>(
    table: &S,
    query: &Query,
    covariates: &[hypdb_table::AttrId],
    mediators: &[hypdb_table::AttrId],
) -> RewriteResult {
    let total_sql = hypdb_sql::render_rewritten(&rewrite_spec(table, query, covariates));
    let direct_sql = if mediators.is_empty() {
        None
    } else {
        let mut adj: Vec<hypdb_table::AttrId> = covariates.to_vec();
        adj.extend_from_slice(mediators);
        Some(hypdb_sql::render_rewritten(&rewrite_spec(
            table, query, &adj,
        )))
    };
    RewriteResult {
        total_sql,
        direct_sql,
    }
}

/// Convenience: the headline ATE/NDE difference of an estimate (first
/// outcome), if two levels were compared.
pub fn headline_diff(est: &EffectEstimate) -> Option<f64> {
    est.diff.as_ref().and_then(|d| d.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use hypdb_table::{Table, TableBuilder};

    fn table() -> Table {
        let mut b = TableBuilder::new(["Carrier", "Airport", "Delayed", "Dest"]);
        for (c, a, d, e) in [
            ("AA", "COS", "0", "X"),
            ("UA", "ROC", "1", "Y"),
            ("AA", "ROC", "1", "X"),
            ("UA", "COS", "0", "Y"),
        ] {
            b.push_row([c, a, d, e]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn spec_carries_query_parts() {
        let t = table();
        let q = QueryBuilder::new("Carrier")
            .outcome("Delayed")
            .filter_in("Airport", ["COS", "ROC"])
            .from_name("FlightData")
            .build(&t)
            .unwrap();
        let airport = t.attr("Airport").unwrap();
        let spec = rewrite_spec(&t, &q, &[airport]);
        assert_eq!(spec.treatment, "Carrier");
        assert_eq!(spec.adjustment, vec!["Airport"]);
        assert_eq!(spec.from, "FlightData");
        assert!(spec.where_sql.unwrap().contains("Airport IN"));
    }

    #[test]
    fn direct_sql_only_with_mediators() {
        let t = table();
        let q = QueryBuilder::new("Carrier")
            .outcome("Delayed")
            .build(&t)
            .unwrap();
        let airport = t.attr("Airport").unwrap();
        let dest = t.attr("Dest").unwrap();
        let r = render_rewrites(&t, &q, &[airport], &[]);
        assert!(r.direct_sql.is_none());
        let r2 = render_rewrites(&t, &q, &[airport], &[dest]);
        let direct = r2.direct_sql.unwrap();
        assert!(direct.contains("Dest"));
        assert!(r2.total_sql.contains("HAVING count(DISTINCT Carrier) = 2"));
    }
}
