//! HypDB core (§3): given a group-by-average OLAP query over
//! observational data,
//!
//! 1. **detect** whether the query is biased — whether the treatment
//!    groups are balanced w.r.t. the covariates (Def 3.1, Prop 3.2),
//! 2. **explain** the bias — rank covariates/mediators by
//!    *responsibility* (Def 3.3) and ground-level value triples by
//!    *contribution* (Def 3.4, Alg 3),
//! 3. **resolve** the bias — rewrite the query into an unbiased
//!    estimator of the average treatment effect (adjustment formula,
//!    Eq 2, with exact matching) or the natural direct effect (mediator
//!    formula, Eq 3).
//!
//! The façade is [`HypDb`]; a full run produces an [`AnalysisReport`]
//! (the Fig 3/4-style output). Covariates are discovered automatically
//! with the CD algorithm (§4) or supplied by the caller.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod detect;
pub mod effect;
mod error;
pub mod explain;
pub mod pipeline;
pub mod query;
pub mod report;
pub mod rewrite;
pub mod wire;

pub use detect::{detect_bias, BiasReport};
pub use effect::{adjusted_averages, natural_direct_effect, EffectEstimate, EffectKind};
pub use error::{Error, Result};
pub use explain::{coarse_explanations, fine_explanations, Explanations, FineExplanation};
pub use hypdb_causal::oracle::{OracleCache, OracleStats};
pub use pipeline::{AnalysisReport, ContextReport, HypDb, HypDbConfig, Timings};
pub use query::{Query, QueryBuilder};
pub use rewrite::{rewrite_spec, RewriteResult};
pub use wire::{AnalyzeRequest, DetectContext, DetectReport};
