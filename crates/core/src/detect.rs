//! Bias detection (Def 3.1, Prop 3.2): a query is *balanced* w.r.t. a
//! variable set `V` in a context `Γ_i` iff `(T ⊥⊥ V | Γ_i)` — the
//! treatment groups then have the same distribution of covariates, and
//! the naive group-by difference is an unbiased effect estimate.
//!
//! The check is an independence test between `T` and the *joint*
//! variable `V` on the context's rows: `I(T; V | Γ_i) = 0`.

use hypdb_stats::crosstab::CrossTab;
use hypdb_stats::independence::{chi2_test, hymit, MitConfig, Strata, TestOutcome};
use hypdb_table::hash::FxHashMap;
use hypdb_table::{AttrId, ColRef, RowSet, Scan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of a bias check in one context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasReport {
    /// The independence-test outcome for `I(T; V | Γ)`.
    pub test: TestOutcome,
    /// Significance level used for the verdict.
    pub alpha: f64,
    /// True when the null `I(T;V|Γ) = 0` was rejected: the query is
    /// biased w.r.t. `V` in this context.
    pub biased: bool,
    /// Number of distinct observed value combinations of `V`.
    pub v_support: usize,
}

/// Builds the `T × joint(V)` cross tab over the context rows. The joint
/// domain of `V` is compacted to its observed combinations (first-seen
/// order), which keeps the table linear in the data.
pub fn joint_crosstab<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    v: &[AttrId],
) -> CrossTab {
    let r = table.cardinality(t).max(1) as usize;
    let tcol = table.col(t);
    let vcols: Vec<ColRef<'_>> = v.iter().map(|&a| table.col(a)).collect();
    // First pass: index observed V-combinations.
    let mut index: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
    let mut cells: Vec<(usize, usize)> = Vec::with_capacity(rows.len());
    let mut key = vec![0u32; v.len()];
    for row in rows.iter() {
        for (slot, col) in key.iter_mut().zip(&vcols) {
            *slot = col.at(row);
        }
        let next = index.len();
        let j = *index.entry(key.clone().into_boxed_slice()).or_insert(next);
        cells.push((tcol.at(row) as usize, j));
    }
    let c = index.len().max(1);
    let mut tab = CrossTab::zeros(r, c);
    for (i, j) in cells {
        tab.add(i, j, 1);
    }
    tab
}

/// Tests whether the query is balanced w.r.t. `v` on `rows`
/// (`Γ` = the context selection). Uses HyMIT: χ² when the sample is
/// large relative to the joint support, the MIT permutation test
/// otherwise.
pub fn detect_bias<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    v: &[AttrId],
    alpha: f64,
    mit_cfg: &MitConfig,
    seed: u64,
) -> BiasReport {
    if v.is_empty() || rows.is_empty() {
        // Nothing to be imbalanced against.
        let strata = Strata::new(vec![]);
        let test = chi2_test(&strata);
        return BiasReport {
            biased: false,
            alpha,
            v_support: 0,
            test,
        };
    }
    let tab = joint_crosstab(table, rows, t, v);
    let v_support = tab.ncols();
    let strata = Strata::single(tab);
    let mut rng = StdRng::seed_from_u64(seed);
    let test = hymit(&strata, mit_cfg, &mut rng);
    BiasReport {
        biased: test.dependent(alpha),
        alpha,
        v_support,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    /// Confounded data: Z skews both T and Y.
    fn confounded() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            ("t1", "1", "a", 30u32),
            ("t1", "0", "a", 10),
            ("t0", "1", "a", 5),
            ("t0", "0", "a", 5),
            ("t1", "1", "b", 5),
            ("t1", "0", "b", 10),
            ("t0", "1", "b", 10),
            ("t0", "0", "b", 40),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        b.finish()
    }

    /// Balanced data: T assigned 50/50 within each Z group.
    fn balanced() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            ("t1", "1", "a", 20u32),
            ("t1", "0", "a", 10),
            ("t0", "1", "a", 20),
            ("t0", "0", "a", 10),
            ("t1", "1", "b", 5),
            ("t1", "0", "b", 25),
            ("t0", "1", "b", 5),
            ("t0", "0", "b", 25),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        b.finish()
    }

    fn check(table: &Table, v_names: &[&str]) -> BiasReport {
        let t = table.attr("T").unwrap();
        let v: Vec<AttrId> = v_names.iter().map(|n| table.attr(n).unwrap()).collect();
        detect_bias(
            table,
            &table.all_rows(),
            t,
            &v,
            0.01,
            &MitConfig::default(),
            7,
        )
    }

    #[test]
    fn detects_confounding() {
        let rep = check(&confounded(), &["Z"]);
        assert!(rep.biased, "p={}", rep.test.p_value);
        assert_eq!(rep.v_support, 2);
    }

    #[test]
    fn accepts_balanced_assignment() {
        let rep = check(&balanced(), &["Z"]);
        assert!(!rep.biased, "p={}", rep.test.p_value);
    }

    #[test]
    fn empty_covariates_never_biased() {
        let rep = check(&confounded(), &[]);
        assert!(!rep.biased);
        assert_eq!(rep.v_support, 0);
    }

    #[test]
    fn joint_crosstab_combines_attrs() {
        let t = confounded();
        let tid = t.attr("T").unwrap();
        let z = t.attr("Z").unwrap();
        let y = t.attr("Y").unwrap();
        let tab = joint_crosstab(&t, &t.all_rows(), tid, &[z, y]);
        // Joint support of (Z, Y) is 4; T has 2 levels.
        assert_eq!(tab.ncols(), 4);
        assert_eq!(tab.nrows(), 2);
        assert_eq!(tab.total(), 115);
    }

    #[test]
    fn bias_wrt_joint_detected_even_if_each_balanced() {
        // T balanced w.r.t. Z1 alone and Z2 alone, but not jointly:
        // T=1 iff Z1==Z2 (within noise).
        let mut b = TableBuilder::new(["T", "Z1", "Z2"]);
        for (t, z1, z2, n) in [
            ("1", "a", "a", 25u32),
            ("1", "b", "b", 25),
            ("0", "a", "b", 25),
            ("0", "b", "a", 25),
        ] {
            for _ in 0..n {
                b.push_row([t, z1, z2]).unwrap();
            }
        }
        let t = b.finish();
        let tid = t.attr("T").unwrap();
        let z1 = t.attr("Z1").unwrap();
        let z2 = t.attr("Z2").unwrap();
        let single1 = detect_bias(
            &t,
            &t.all_rows(),
            tid,
            &[z1],
            0.01,
            &MitConfig::default(),
            7,
        );
        let joint = detect_bias(
            &t,
            &t.all_rows(),
            tid,
            &[z1, z2],
            0.01,
            &MitConfig::default(),
            7,
        );
        assert!(!single1.biased, "marginal Z1 is balanced");
        assert!(joint.biased, "joint (Z1,Z2) must reveal the imbalance");
    }
}
