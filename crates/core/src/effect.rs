//! Effect estimation: the adjustment formula (Eq 2) for the total
//! effect and the mediator formula (Eq 3) for the natural direct
//! effect, both with **exact matching** (§3.3): blocks that do not
//! contain every compared treatment level are discarded and the block
//! weights renormalised — the SQL `HAVING count(DISTINCT T) = k` guard.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use hypdb_stats::independence::{mit_auto, MitConfig, TestOutcome};
use hypdb_table::contingency::Stratified;
use hypdb_table::hash::FxHashMap;
use hypdb_table::{AttrId, ColRef, RowSet, Scan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Total (ATE) vs natural direct (NDE) effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffectKind {
    /// Average treatment effect: all causal paths `T ⇝ Y`.
    Total,
    /// Natural direct effect: only the direct edge `T → Y`, mediators
    /// held at their natural (control) values.
    Direct,
}

/// An adjusted-effect estimate for one context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectEstimate {
    /// Which effect this estimates.
    pub kind: EffectKind,
    /// Compared treatment levels (dictionary codes, ascending).
    pub levels: Vec<u32>,
    /// Adjusted `avg(Y_o)` per `levels[i]`: `adjusted[i][o]`.
    pub adjusted: Vec<Vec<f64>>,
    /// `adjusted[1] − adjusted[0]` per outcome when exactly two levels
    /// are compared (the ATE / NDE estimate).
    pub diff: Option<Vec<f64>>,
    /// Significance of the adjusted difference per outcome: the test of
    /// `I(Y_o; T | Z[, M]) = 0` (§7.1).
    pub significance: Vec<TestOutcome>,
    /// Blocks that satisfied the overlap guard.
    pub matched_blocks: usize,
    /// All blocks in the context.
    pub total_blocks: usize,
    /// Fraction of context rows inside matched blocks.
    pub matched_fraction: f64,
}

struct BlockAcc {
    total: u64,
    /// Per compared level: (count, per-outcome sum).
    per_level: Vec<(u64, Vec<f64>)>,
}

/// The adjustment formula (Eq 2) with exact matching: groups the
/// context rows into blocks homogeneous on `z`, discards blocks missing
/// any of `levels`, and returns the weighted per-level averages where
/// weights are the retained blocks' probabilities.
///
/// With `z = ∅` this degenerates to the plain SQL answer.
#[allow(clippy::too_many_arguments)]
pub fn adjusted_averages<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    levels: &[u32],
    outcomes: &[AttrId],
    z: &[AttrId],
    mit_cfg: &MitConfig,
    seed: u64,
) -> Result<EffectEstimate> {
    if rows.is_empty() {
        return Err(Error::EmptySelection);
    }
    if levels.len() < 2 {
        return Err(Error::DegenerateTreatment {
            attr: table.schema().name(t).to_string(),
            levels: levels.len(),
        });
    }
    let numeric: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|&y| table.numeric_codes(y))
        .collect::<std::result::Result<_, _>>()?;
    let tcol = table.col(t);
    let ycols: Vec<ColRef<'_>> = outcomes.iter().map(|&y| table.col(y)).collect();
    let zcols: Vec<ColRef<'_>> = z.iter().map(|&a| table.col(a)).collect();
    let level_of: FxHashMap<u32, usize> = levels.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    // Blocks in canonical key order: the matched-block weights feed a
    // floating-point sum, so the visit order must not depend on hash
    // bucket layout.
    let mut blocks: BTreeMap<Box<[u32]>, BlockAcc> = BTreeMap::new();
    let mut key = vec![0u32; z.len()];
    for row in rows.iter() {
        for (slot, col) in key.iter_mut().zip(&zcols) {
            *slot = col.at(row);
        }
        let acc = blocks
            .entry(key.clone().into_boxed_slice())
            .or_insert_with(|| BlockAcc {
                total: 0,
                per_level: vec![(0, vec![0.0; outcomes.len()]); levels.len()],
            });
        acc.total += 1;
        if let Some(&li) = level_of.get(&tcol.at(row)) {
            let (count, sums) = &mut acc.per_level[li];
            *count += 1;
            for ((s, vals), col) in sums.iter_mut().zip(&numeric).zip(&ycols) {
                *s += vals[col.at(row) as usize];
            }
        }
    }

    let total_blocks = blocks.len();
    let matched: Vec<&BlockAcc> = blocks
        .values()
        .filter(|b| b.per_level.iter().all(|(c, _)| *c > 0))
        .collect();
    let matched_blocks = matched.len();
    let matched_total: u64 = matched.iter().map(|b| b.total).sum();
    let mut adjusted = vec![vec![0.0; outcomes.len()]; levels.len()];
    if matched_total > 0 {
        for b in &matched {
            let w = b.total as f64 / matched_total as f64;
            for (li, (count, sums)) in b.per_level.iter().enumerate() {
                for (o, s) in sums.iter().enumerate() {
                    adjusted[li][o] += w * (s / *count as f64);
                }
            }
        }
    }

    let diff = (levels.len() == 2).then(|| {
        (0..outcomes.len())
            .map(|o| adjusted[1][o] - adjusted[0][o])
            .collect()
    });

    // Significance of the adjusted difference: I(Y; T | Z) = 0 iff the
    // rewritten query reports no difference. Per §7.1 this is always a
    // permutation test (the χ² shortcut is anti-conservative on the
    // finely-stratified blocks the rewriter produces).
    let mut rng = StdRng::seed_from_u64(seed);
    let significance = outcomes
        .iter()
        .map(|&y| {
            let strata = Stratified::build(table, rows, t, y, z);
            mit_auto(&strata, mit_cfg.permutations, &mut rng)
        })
        .collect();

    Ok(EffectEstimate {
        kind: EffectKind::Total,
        levels: levels.to_vec(),
        adjusted,
        diff,
        significance,
        matched_blocks,
        total_blocks,
        matched_fraction: if rows.is_empty() {
            0.0
        } else {
            matched_total as f64 / rows.len() as f64
        },
    })
}

/// The mediator formula (Eq 3 / Pearl 2001) with exact matching over
/// `(z, m)` blocks:
///
/// `value(t) = Σ_z P(z) Σ_m P(m | t_ctrl, z) · E[Y | T = t, z, m]`
///
/// reported for every compared level `t`, with the mediator
/// distribution held at the **control** level `levels[0]`; the NDE is
/// `value(levels[1]) − value(levels[0])`. We condition the inner
/// expectation on `z` as well as `m` (the standard mediation formula);
/// the paper's printed Eq 3 conditions on `m` only, which coincides
/// when `Y ⊥ Z | T, M`.
#[allow(clippy::too_many_arguments)]
pub fn natural_direct_effect<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    t: AttrId,
    levels: &[u32],
    outcomes: &[AttrId],
    z: &[AttrId],
    mediators: &[AttrId],
    mit_cfg: &MitConfig,
    seed: u64,
) -> Result<EffectEstimate> {
    if rows.is_empty() {
        return Err(Error::EmptySelection);
    }
    if levels.len() < 2 {
        return Err(Error::DegenerateTreatment {
            attr: table.schema().name(t).to_string(),
            levels: levels.len(),
        });
    }
    let numeric: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|&y| table.numeric_codes(y))
        .collect::<std::result::Result<_, _>>()?;
    let tcol = table.col(t);
    let ycols: Vec<ColRef<'_>> = outcomes.iter().map(|&y| table.col(y)).collect();
    let zcols: Vec<ColRef<'_>> = z.iter().map(|&a| table.col(a)).collect();
    let mcols: Vec<ColRef<'_>> = mediators.iter().map(|&a| table.col(a)).collect();
    let level_of: FxHashMap<u32, usize> = levels.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    // Blocks keyed by (z, m); stored grouped under their z-part so the
    // conditional P(m | t_ctrl, z) can be renormalised within z.
    struct ZmAcc {
        per_level: Vec<(u64, Vec<f64>)>,
    }
    #[derive(Default)]
    struct ZAcc {
        total: u64,
        ms: BTreeMap<Box<[u32]>, ZmAcc>,
    }
    // Canonical key order at both levels: the nested weighted float
    // sums below must visit (z, m) blocks in a hash-independent order.
    let mut zblocks: BTreeMap<Box<[u32]>, ZAcc> = BTreeMap::new();
    let mut zkey = vec![0u32; z.len()];
    let mut mkey = vec![0u32; mediators.len()];
    for row in rows.iter() {
        for (slot, col) in zkey.iter_mut().zip(&zcols) {
            *slot = col.at(row);
        }
        for (slot, col) in mkey.iter_mut().zip(&mcols) {
            *slot = col.at(row);
        }
        let zacc = zblocks.entry(zkey.clone().into_boxed_slice()).or_default();
        zacc.total += 1;
        let macc = zacc
            .ms
            .entry(mkey.clone().into_boxed_slice())
            .or_insert_with(|| ZmAcc {
                per_level: vec![(0, vec![0.0; outcomes.len()]); levels.len()],
            });
        if let Some(&li) = level_of.get(&tcol.at(row)) {
            let (count, sums) = &mut macc.per_level[li];
            *count += 1;
            for ((s, vals), col) in sums.iter_mut().zip(&numeric).zip(&ycols) {
                *s += vals[col.at(row) as usize];
            }
        }
    }

    // Exact matching on (z, m): keep blocks with every level present.
    let ctrl = 0usize; // mediator distribution fixed at levels[0]
    let mut total_blocks = 0usize;
    let mut matched_blocks = 0usize;
    let mut matched_rows = 0u64;
    // First pass: per z, the retained m's and the control counts.
    struct ZRetained<'a> {
        z_total: u64,
        ctrl_total: u64,
        ms: Vec<&'a ZmAcc>,
    }
    let mut retained: Vec<ZRetained<'_>> = Vec::new();
    for zacc in zblocks.values() {
        let mut keep = Vec::new();
        let mut ctrl_total = 0u64;
        for macc in zacc.ms.values() {
            total_blocks += 1;
            if macc.per_level.iter().all(|(c, _)| *c > 0) {
                matched_blocks += 1;
                ctrl_total += macc.per_level[ctrl].0;
                matched_rows += macc.per_level.iter().map(|(c, _)| c).sum::<u64>();
                keep.push(macc);
            }
        }
        if !keep.is_empty() && ctrl_total > 0 {
            retained.push(ZRetained {
                z_total: zacc.total,
                ctrl_total,
                ms: keep,
            });
        }
    }
    let retained_z_total: u64 = retained.iter().map(|r| r.z_total).sum();

    let mut adjusted = vec![vec![0.0; outcomes.len()]; levels.len()];
    if retained_z_total > 0 {
        for r in &retained {
            let pz = r.z_total as f64 / retained_z_total as f64;
            for macc in &r.ms {
                let pm = macc.per_level[ctrl].0 as f64 / r.ctrl_total as f64;
                for (li, (count, sums)) in macc.per_level.iter().enumerate() {
                    for (o, s) in sums.iter().enumerate() {
                        adjusted[li][o] += pz * pm * (s / *count as f64);
                    }
                }
            }
        }
    }

    let diff = (levels.len() == 2).then(|| {
        (0..outcomes.len())
            .map(|o| adjusted[1][o] - adjusted[0][o])
            .collect()
    });

    // Significance: I(Y; T | Z ∪ M), by permutation test (§7.1).
    let mut cond: Vec<AttrId> = z.to_vec();
    cond.extend_from_slice(mediators);
    let mut rng = StdRng::seed_from_u64(seed);
    let significance = outcomes
        .iter()
        .map(|&y| {
            let strata = Stratified::build(table, rows, t, y, &cond);
            mit_auto(&strata, mit_cfg.permutations, &mut rng)
        })
        .collect();

    Ok(EffectEstimate {
        kind: EffectKind::Direct,
        levels: levels.to_vec(),
        adjusted,
        diff,
        significance,
        matched_blocks,
        total_blocks,
        matched_fraction: if rows.is_empty() {
            0.0
        } else {
            matched_rows as f64 / rows.len() as f64
        },
    })
}

/// Renders the compared levels as strings.
pub fn level_labels<S: Scan + ?Sized>(table: &S, t: AttrId, levels: &[u32]) -> Vec<String> {
    levels
        .iter()
        .map(|&c| table.dict(t).value(c).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    /// The quickstart confounding example: Z -> T, Z -> Y; true
    /// conditional effect of T on Y is zero within each Z block by
    /// construction, but the naive difference is large.
    fn confounded() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            // Z=a: P(Y=1) = 0.75 for both T levels; T skewed to t1.
            ("t1", "1", "a", 30u32),
            ("t1", "0", "a", 10),
            ("t0", "1", "a", 6),
            ("t0", "0", "a", 2),
            // Z=b: P(Y=1) = 0.2 for both T levels; T skewed to t0.
            ("t1", "1", "b", 2),
            ("t1", "0", "b", 8),
            ("t0", "1", "b", 10),
            ("t0", "0", "b", 40),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        b.finish()
    }

    fn ids(t: &Table) -> (AttrId, AttrId, AttrId) {
        (
            t.attr("T").unwrap(),
            t.attr("Y").unwrap(),
            t.attr("Z").unwrap(),
        )
    }

    #[test]
    fn adjustment_removes_confounding() {
        let tab = confounded();
        let (t, y, z) = ids(&tab);
        let rows = tab.all_rows();
        let levels = [0u32, 1u32]; // t1 first-seen => code 0; t0 => 1

        // Naive (unadjusted) difference is large:
        let naive = adjusted_averages(&tab, &rows, t, &levels, &[y], &[], &MitConfig::default(), 1)
            .unwrap();
        let naive_diff = naive.diff.clone().unwrap()[0].abs();
        assert!(naive_diff > 0.2, "naive diff {naive_diff}");

        // Adjusted difference vanishes (Y ⊥ T | Z by construction).
        let adj = adjusted_averages(
            &tab,
            &rows,
            t,
            &levels,
            &[y],
            &[z],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        let adj_diff = adj.diff.clone().unwrap()[0].abs();
        assert!(adj_diff < 1e-9, "adjusted diff {adj_diff}");
        assert_eq!(adj.matched_blocks, 2);
        assert!((adj.matched_fraction - 1.0).abs() < 1e-12);
        // And the significance test agrees: not significant.
        assert!(adj.significance[0].p_value > 0.05);
        // While the naive association is significant.
        assert!(naive.significance[0].p_value < 0.01);
    }

    #[test]
    fn adjusted_values_match_hand_computation() {
        let tab = confounded();
        let (t, y, z) = ids(&tab);
        let adj = adjusted_averages(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[z],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        // P(a) = 48/108, P(b) = 60/108; E[Y|*, a] = .75, E[Y|*, b] = .2.
        let expect = 48.0 / 108.0 * 0.75 + 60.0 / 108.0 * 0.2;
        assert!((adj.adjusted[0][0] - expect).abs() < 1e-12);
        assert!((adj.adjusted[1][0] - expect).abs() < 1e-12);
    }

    #[test]
    fn exact_matching_drops_unmatched_blocks() {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            ("t0", "1", "a", 5u32),
            ("t1", "0", "a", 5),
            // Z=b only has t0: must be pruned.
            ("t0", "1", "b", 50),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        let tab = b.finish();
        let (t, y, z) = ids(&tab);
        let adj = adjusted_averages(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[z],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(adj.total_blocks, 2);
        assert_eq!(adj.matched_blocks, 1);
        assert!((adj.matched_fraction - 10.0 / 60.0).abs() < 1e-12);
        // Within the matched block: E[Y|t0]=1, E[Y|t1]=0.
        assert_eq!(adj.adjusted[0][0], 1.0);
        assert_eq!(adj.adjusted[1][0], 0.0);
    }

    #[test]
    fn degenerate_treatment_rejected() {
        let tab = confounded();
        let (t, y, _) = ids(&tab);
        let err = adjusted_averages(
            &tab,
            &tab.all_rows(),
            t,
            &[0],
            &[y],
            &[],
            &MitConfig::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, Error::DegenerateTreatment { .. }));
    }

    /// Pure mediation: T -> M -> Y, no direct edge. Total effect is
    /// nonzero; direct effect must be ≈ 0.
    fn mediated() -> Table {
        let mut b = TableBuilder::new(["T", "M", "Y"]);
        // P(M=1|T=1)=0.8, P(M=1|T=0)=0.2; Y = M deterministically.
        for (t, m, y, n) in [
            ("0", "0", "0", 40u32),
            ("0", "1", "1", 10),
            ("1", "0", "0", 10),
            ("1", "1", "1", 40),
        ] {
            for _ in 0..n {
                b.push_row([t, m, y]).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn nde_vanishes_under_pure_mediation() {
        let tab = mediated();
        let t = tab.attr("T").unwrap();
        let m = tab.attr("M").unwrap();
        let y = tab.attr("Y").unwrap();
        let nde = natural_direct_effect(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[],
            &[m],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        let d = nde.diff.clone().unwrap()[0].abs();
        assert!(d < 1e-9, "direct effect should vanish, got {d}");
        // Total effect is large by contrast.
        let ate = adjusted_averages(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        assert!(ate.diff.unwrap()[0] > 0.5);
        // Significance of the direct effect: I(T;Y|M) = 0 here.
        assert!(nde.significance[0].p_value > 0.05);
    }

    /// Pure direct effect: T -> Y with a spectator mediator candidate.
    #[test]
    fn nde_equals_ate_without_mediation() {
        let mut b = TableBuilder::new(["T", "M", "Y"]);
        for (t, m, y, n) in [
            ("0", "0", "0", 20u32),
            ("0", "1", "0", 20),
            ("0", "0", "1", 5),
            ("0", "1", "1", 5),
            ("1", "0", "1", 20),
            ("1", "1", "1", 20),
            ("1", "0", "0", 5),
            ("1", "1", "0", 5),
        ] {
            for _ in 0..n {
                b.push_row([t, m, y]).unwrap();
            }
        }
        let tab = b.finish();
        let t = tab.attr("T").unwrap();
        let m = tab.attr("M").unwrap();
        let y = tab.attr("Y").unwrap();
        let nde = natural_direct_effect(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[],
            &[m],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        let ate = adjusted_averages(
            &tab,
            &tab.all_rows(),
            t,
            &[0, 1],
            &[y],
            &[],
            &MitConfig::default(),
            1,
        )
        .unwrap();
        let d_nde = nde.diff.unwrap()[0];
        let d_ate = ate.diff.unwrap()[0];
        assert!((d_nde - d_ate).abs() < 1e-9, "{d_nde} vs {d_ate}");
        assert!(d_nde > 0.5);
    }

    #[test]
    fn level_labels_render() {
        let tab = confounded();
        let (t, _, _) = ids(&tab);
        assert_eq!(level_labels(&tab, t, &[0, 1]), vec!["t1", "t0"]);
    }
}
