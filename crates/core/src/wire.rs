//! The wire schema: one serializable request/response pair shared by
//! the CLI, the tests, and `hypdb-serve`.
//!
//! [`AnalyzeRequest`] is the JSON form of "audit this group-by query"
//! (Listing 1 plus the knobs [`HypDbConfig`] exposes per request). The
//! module factors `analyze()`'s report construction out of any one
//! front-end:
//!
//! * [`AnalyzeRequest::canonical_json`] re-serializes a parsed request
//!   into a canonical byte string (declaration-ordered fields, explicit
//!   `null`s), so logically identical requests — whatever their key
//!   order or whitespace — hash to the same [`fingerprint`]
//!   (`AnalyzeRequest::fingerprint`).
//! * [`AnalyzeRequest::config`] derives the request-scoped
//!   [`HypDbConfig`]: every RNG seed comes from the *server's* base
//!   seed mixed with the request fingerprint (or from an explicit
//!   `seed` field), so a request's report is a pure function of
//!   (data, base config, request bytes) — cacheable and reproducible
//!   on any thread count or shard layout.
//! * [`analyze`] / [`detect`] run the full pipeline or the cheap
//!   detection-only path against any [`Scan`] storage.
//! * [`report_body`] / [`detect_body`] render the canonical response
//!   bytes: compact JSON with wall-clock timings zeroed — the one
//!   nondeterministic field — so two runs of the same request are
//!   **byte-identical**, online or offline.

use crate::context::contexts;
use crate::detect::{detect_bias, BiasReport};
use crate::error::{Error, Result};
use crate::pipeline::{AnalysisReport, HypDb, HypDbConfig, Timings};
use crate::query::Query;
use hypdb_causal::oracle::OracleCache;
use hypdb_exec::{seed, ThreadPool};
use hypdb_table::Scan;
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// A bias-analysis request: the query text plus per-request overrides.
///
/// Only `dataset` and `sql` are required on the wire; every other field
/// may be omitted (or `null`) and falls back to the server's base
/// configuration. The SQL text is parsed with `hypdb-sql` and must be a
/// Listing-1 group-by-average query; the **first** `GROUP BY` column is
/// the treatment unless `treatment` names another grouped column.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Name of the dataset to analyze (server-side registry key).
    pub dataset: String,
    /// The group-by query, e.g.
    /// `SELECT Carrier, avg(Delayed) FROM F GROUP BY Carrier`.
    pub sql: String,
    /// Treatment attribute; defaults to the first `GROUP BY` column.
    pub treatment: Option<String>,
    /// Known covariates `Z` (skips CD discovery when given).
    pub covariates: Option<Vec<String>>,
    /// Known mediators (applied to every outcome) — skips discovery.
    pub mediators: Option<Vec<String>>,
    /// Fine-grained explanations to report (default: base config).
    pub top_k: Option<usize>,
    /// Whether to estimate direct effects (default: base config).
    pub compute_direct: Option<bool>,
    /// Explicit RNG seed. When omitted, the effective seed is
    /// `mix(base seed, request fingerprint)`.
    pub seed: Option<u64>,
    /// Attach the planner's deterministic EXPLAIN document to the
    /// response (`{"explain":…,"report":…}` instead of the bare
    /// report). Never changes the report itself: the seed fingerprint
    /// ignores this flag, so `explain:true` reproduces the exact bytes
    /// of the plain report inside the wrapper.
    pub explain: bool,
}

impl AnalyzeRequest {
    /// A request with only the required fields set.
    pub fn new(dataset: impl Into<String>, sql: impl Into<String>) -> Self {
        AnalyzeRequest {
            dataset: dataset.into(),
            sql: sql.into(),
            treatment: None,
            covariates: None,
            mediators: None,
            top_k: None,
            compute_direct: None,
            seed: None,
            explain: false,
        }
    }

    /// The canonical byte form: compact JSON with fields in declaration
    /// order and omitted options as explicit `null`s. Parsing any
    /// equivalent JSON spelling and re-serializing lands here.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }

    /// FNV-1a hash of [`Self::canonical_json`] — the per-request seed
    /// label (and, for non-explain requests, the report-cache key; the
    /// server keys its cache on the canonical bytes, which *do* carry
    /// the `explain` flag). The hash ignores `explain`, so an explained
    /// request derives the same seed — and therefore the same report —
    /// as its plain twin. Callers that already hold the canonical JSON
    /// of a plain request can use [`fingerprint_json`] to avoid
    /// re-serializing.
    pub fn fingerprint(&self) -> u64 {
        if self.explain {
            let mut plain = self.clone();
            plain.explain = false;
            fingerprint_json(&plain.canonical_json())
        } else {
            fingerprint_json(&self.canonical_json())
        }
    }

    /// The request-scoped pipeline configuration: `base` with this
    /// request's overrides applied and the RNG seed derived from the
    /// base seed and the request fingerprint (unless pinned by `seed`).
    pub fn config(&self, base: &HypDbConfig) -> HypDbConfig {
        let mut cfg = *base;
        if let Some(k) = self.top_k {
            cfg.top_k = k;
        }
        if let Some(d) = self.compute_direct {
            cfg.compute_direct = d;
        }
        cfg.ci.seed = match self.seed {
            Some(s) => s,
            None => seed::mix(base.ci.seed, self.fingerprint()),
        };
        cfg
    }

    /// Resolves the SQL text into a [`Query`] against `table`,
    /// honouring the `treatment` override.
    pub fn query<S: Scan + ?Sized>(&self, table: &S) -> Result<Query> {
        match &self.treatment {
            None => Query::from_sql(&self.sql, table),
            Some(t) => {
                let stmt = hypdb_sql::parse_query(&self.sql)
                    .map_err(|e| Error::Invalid(format!("parse error: {e}")))?;
                Query::from_statement(&stmt, table, t)
            }
        }
    }

    fn bind<'a, S: Scan + ?Sized>(&self, table: &'a S, cfg: HypDbConfig) -> Result<HypDb<'a, S>> {
        let mut db = HypDb::new(table).with_config(cfg);
        if let Some(z) = &self.covariates {
            db = db.with_covariates(z)?;
        }
        if let Some(m) = &self.mediators {
            db = db.with_mediators(m)?;
        }
        Ok(db)
    }
}

// Hand-written (rather than derived) so the canonical bytes of every
// pre-`explain` request stay exactly what they were: the `explain` key
// is *appended*, and only when true. A derived impl would emit
// `"explain":false` into every canonical string, silently re-keying
// every fingerprint-derived seed and cache entry in existence.
impl Serialize for AnalyzeRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("dataset".to_string(), self.dataset.to_value()),
            ("sql".to_string(), self.sql.to_value()),
            ("treatment".to_string(), self.treatment.to_value()),
            ("covariates".to_string(), self.covariates.to_value()),
            ("mediators".to_string(), self.mediators.to_value()),
            ("top_k".to_string(), self.top_k.to_value()),
            ("compute_direct".to_string(), self.compute_direct.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if self.explain {
            fields.push(("explain".to_string(), Value::Bool(true)));
        }
        Value::Obj(fields)
    }
}

// Hand-written (rather than derived) so that optional fields may be
// *omitted*, not just `null`, and unknown fields fail loudly instead of
// being silently dropped — a typo'd `covariatse` must not run a
// different analysis than the caller asked for.
impl Deserialize for AnalyzeRequest {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::Error::new("expected a JSON object"))?;
        let mut dataset: Option<String> = None;
        let mut sql: Option<String> = None;
        let mut req = AnalyzeRequest::new("", "");
        for (key, val) in obj {
            match key.as_str() {
                "dataset" => dataset = Some(String::from_value(val)?),
                "sql" => sql = Some(String::from_value(val)?),
                "treatment" => req.treatment = Deserialize::from_value(val)?,
                "covariates" => req.covariates = Deserialize::from_value(val)?,
                "mediators" => req.mediators = Deserialize::from_value(val)?,
                "top_k" => req.top_k = Deserialize::from_value(val)?,
                "compute_direct" => req.compute_direct = Deserialize::from_value(val)?,
                "seed" => req.seed = Deserialize::from_value(val)?,
                "explain" => {
                    req.explain = <Option<bool>>::from_value(val)?.unwrap_or(false);
                }
                other => {
                    return Err(serde::Error::new(format!(
                        "unknown field `{other}` (expected dataset, sql, treatment, \
                         covariates, mediators, top_k, compute_direct, seed, explain)"
                    )))
                }
            }
        }
        req.dataset = dataset.ok_or_else(|| serde::Error::new("missing field `dataset`"))?;
        req.sql = sql.ok_or_else(|| serde::Error::new("missing field `sql`"))?;
        Ok(req)
    }
}

/// Parses a request from JSON bytes (the HTTP body).
pub fn parse_request(body: &str) -> Result<AnalyzeRequest> {
    serde_json::from_str(body).map_err(|e| Error::Invalid(format!("bad request: {e}")))
}

/// Runs the full pipeline for `req` against `table` under the
/// request-scoped configuration. This is *the* analyze entry point:
/// the CLI, the test suite, and `hypdb-serve` all call it, so their
/// reports agree byte for byte.
pub fn analyze<S: Scan + ?Sized>(
    table: &S,
    req: &AnalyzeRequest,
    base: &HypDbConfig,
) -> Result<AnalysisReport> {
    analyze_cached(table, req, base, None)
}

/// [`analyze`] with an optional shared [`OracleCache`] for the
/// discovery phase. The cache must belong to this `(table, WHERE
/// selection)`; sharing one across concurrent identical-selection
/// requests coalesces their independence-statement batches (and lets
/// the caller read the accumulated `OracleStats` afterwards) without
/// changing a single response byte.
pub fn analyze_cached<S: Scan + ?Sized>(
    table: &S,
    req: &AnalyzeRequest,
    base: &HypDbConfig,
    cache: Option<&Arc<OracleCache>>,
) -> Result<AnalysisReport> {
    let query = req.query(table)?;
    let mut db = req.bind(table, req.config(base))?;
    if let Some(c) = cache {
        db = db.with_oracle_cache(Arc::clone(c));
    }
    db.analyze(&query)
}

/// [`analyze_cached`] plus the planner's deterministic EXPLAIN
/// document: runs the pipeline under an explain-collecting tracer and
/// replays the recorded planner rounds through
/// [`hypdb_causal::explain::assemble`]. The report is byte-for-byte the
/// one [`analyze_cached`] produces for the explain-stripped request
/// (same fingerprint, same seeds), and the document itself replays the
/// cost model from data-deterministic facts only, so it too is
/// identical at any thread count, shard layout, or plan-force setting.
pub fn analyze_explained<S: Scan + ?Sized>(
    table: &S,
    req: &AnalyzeRequest,
    base: &HypDbConfig,
    cache: Option<&Arc<OracleCache>>,
) -> Result<(AnalysisReport, Value)> {
    // When an explain-capable tracer is already installed (e.g. the
    // CLI's or server's `HYPDB_TRACE` middleware), reuse it: installing
    // a nested tracer here would hide every compute span from the outer
    // slow-request dump. The entries drain in canonical (path, seq)
    // order either way, so the assembled document is identical.
    if hypdb_obs::explain_active() {
        let report = analyze_cached(table, req, base, cache)?;
        let entries = hypdb_obs::take_explain_here();
        return Ok((report, hypdb_causal::explain::assemble(&entries)));
    }
    let tracer = hypdb_obs::Tracer::with_explain();
    let report = hypdb_obs::with_request(&tracer, || analyze_cached(table, req, base, cache))?;
    let entries = tracer.take_explain();
    Ok((report, hypdb_causal::explain::assemble(&entries)))
}

/// One context's detection verdict (the cheap path's row block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectContext {
    /// Context label (`Quarter=1, …` or `(all)`).
    pub label: String,
    /// Rows in the context.
    pub n_rows: usize,
    /// Balance test w.r.t. the covariates (total-effect bias) — the
    /// same statement, seeds, and verdict as `analyze`'s `bias_total`
    /// for an identical request.
    pub bias: BiasReport,
}

/// Detection-only output: covariate discovery plus the per-context
/// balance test, skipping explanations and effect estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectReport {
    /// Relation name.
    pub from: String,
    /// Treatment attribute name.
    pub treatment: String,
    /// Discovered (or supplied) covariates `Z`.
    pub covariates: Vec<String>,
    /// True when CD found no parents and `MB(T)` was used instead (§4).
    pub used_fallback: bool,
    /// Per-context verdicts.
    pub contexts: Vec<DetectContext>,
}

impl DetectReport {
    /// True when any context's balance test rejected.
    pub fn biased(&self) -> bool {
        self.contexts.iter().any(|c| c.bias.biased)
    }
}

/// Runs the detection-only path (`POST /detect`'s cheap lane): covariate
/// discovery — with direct-effect discovery forced off, the expensive
/// half of `discover` — then one balance test per context.
pub fn detect<S: Scan + ?Sized>(
    table: &S,
    req: &AnalyzeRequest,
    base: &HypDbConfig,
) -> Result<DetectReport> {
    detect_cached(table, req, base, None)
}

/// [`detect`] with an optional shared [`OracleCache`] (see
/// [`analyze_cached`]); the cheap lane's covariate discovery is exactly
/// the batch-heavy phase that cross-request sharing accelerates.
pub fn detect_cached<S: Scan + ?Sized>(
    table: &S,
    req: &AnalyzeRequest,
    base: &HypDbConfig,
    cache: Option<&Arc<OracleCache>>,
) -> Result<DetectReport> {
    let mut cfg = req.config(base);
    cfg.compute_direct = false;
    let query = req.query(table)?;
    let mut db = req.bind(table, cfg)?;
    if let Some(c) = cache {
        db = db.with_oracle_cache(Arc::clone(c));
    }
    let discovery = db.discover(&query)?;
    let ctxs = contexts(table, &query);
    let pool = cfg
        .threads
        .map(ThreadPool::new)
        .unwrap_or_else(ThreadPool::current);
    // The 0xB1A5 tweak matches `analyze`'s detection phase, so the
    // cheap path reproduces the full report's `bias_total` exactly.
    let reports = pool.parallel_map(&ctxs, |_, ctx| DetectContext {
        label: ctx.label(table),
        n_rows: ctx.rows.len(),
        bias: detect_bias(
            table,
            &ctx.rows,
            query.treatment,
            &discovery.covariates,
            cfg.ci.alpha,
            &cfg.ci.mit,
            cfg.ci.seed ^ 0xB1A5,
        ),
    });
    let name = |a| table.schema().name(a).to_string();
    Ok(DetectReport {
        from: query.from.clone(),
        treatment: name(query.treatment),
        covariates: discovery.covariates.iter().copied().map(name).collect(),
        used_fallback: discovery.used_fallback,
        contexts: reports,
    })
}

/// Serializes an analysis report as the canonical response body:
/// compact JSON with the wall-clock [`Timings`] zeroed, so identical
/// requests produce **byte-identical** bodies at any thread count,
/// shard layout, or load — the property the report cache and the
/// online/offline equivalence tests rely on.
pub fn report_body(report: &AnalysisReport) -> String {
    let mut stamped = report.clone();
    stamped.timings = Timings::default();
    serde_json::to_string(&stamped).expect("report serializes")
}

/// Serializes a detection report as the canonical response body
/// (already timing-free).
pub fn detect_body(report: &DetectReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// Canonical response body for an `explain:true` request:
/// `{"explain":…,"report":…}` with the report stamped exactly as
/// [`report_body`] stamps it (timings zeroed), so the `report` value
/// inside the wrapper is byte-identical to the plain response and the
/// whole body is deterministic.
pub fn explain_body(report: &AnalysisReport, explain: &Value) -> String {
    let mut stamped = report.clone();
    stamped.timings = Timings::default();
    let body = Value::Obj(vec![
        ("explain".to_string(), explain.clone()),
        ("report".to_string(), stamped.to_value()),
    ]);
    serde_json::to_string(&body).expect("explain body serializes")
}

/// The fingerprint of a canonical request JSON string (see
/// [`AnalyzeRequest::fingerprint`]). A 64-bit non-cryptographic hash
/// *can* collide, so anything keyed on it (the report cache) must also
/// compare the canonical bytes before trusting a match.
pub fn fingerprint_json(canonical: &str) -> u64 {
    fnv1a64(canonical.as_bytes())
}

/// Formats a request sequence number as the `X-Hypdb-Request-Id`
/// header value (and the journal's `id` field): `req-<seq>`, zero-
/// padded so ids sort lexically in journal order. Ids live in response
/// **headers** only — bodies stay byte-identical with or without the
/// flight recorder.
pub fn request_id(seq: u64) -> String {
    format!("req-{seq:08}")
}

/// The flight recorder's response-body fingerprint: FNV-1a 64 over the
/// exact response bytes, rendered as 16 hex digits. Replay recomputes
/// this over the bytes it receives; equality is the byte-identity pass
/// criterion.
pub fn body_fnv_hex(body: &str) -> String {
    format!("{:016x}", fnv1a64(body.as_bytes()))
}

/// FNV-1a 64-bit over raw bytes: tiny, dependency-free, and stable
/// across platforms and runs — everything a wire fingerprint needs.
/// Public so other fingerprints (e.g. the serving registry's
/// per-selection oracle slots) reuse one hash definition.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    /// Small confounded population: Z skews both T and Y.
    fn confounded() -> Table {
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z, n) in [
            ("t1", "1", "a", 30u32),
            ("t1", "0", "a", 10),
            ("t0", "1", "a", 5),
            ("t0", "0", "a", 5),
            ("t1", "1", "b", 5),
            ("t1", "0", "b", 10),
            ("t0", "1", "b", 10),
            ("t0", "0", "b", 40),
        ] {
            for _ in 0..n {
                b.push_row([t, y, z]).unwrap();
            }
        }
        b.finish()
    }

    fn demo_request() -> AnalyzeRequest {
        let mut req = AnalyzeRequest::new("demo", "SELECT T, avg(Y) FROM D GROUP BY T");
        req.covariates = Some(vec!["Z".to_string()]);
        req
    }

    #[test]
    fn minimal_json_parses_with_defaults() {
        let req = parse_request(r#"{"dataset":"d","sql":"SELECT T, avg(Y) FROM D GROUP BY T"}"#)
            .expect("parse");
        assert_eq!(req.dataset, "d");
        assert!(req.treatment.is_none() && req.seed.is_none());
        assert!(req.covariates.is_none());
    }

    #[test]
    fn key_order_and_nulls_do_not_change_the_fingerprint() {
        let a = parse_request(r#"{"dataset":"d","sql":"q"}"#).unwrap();
        let b = parse_request(r#"{"sql":"q","seed":null,"dataset":"d"}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn distinct_requests_have_distinct_fingerprints() {
        let a = AnalyzeRequest::new("d", "SELECT T, avg(Y) FROM D GROUP BY T");
        let mut b = a.clone();
        b.seed = Some(7);
        let mut c = a.clone();
        c.dataset = "other".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn unknown_and_missing_fields_are_rejected() {
        let err = parse_request(r#"{"dataset":"d","sql":"q","covariatse":["Z"]}"#).unwrap_err();
        assert!(err.to_string().contains("covariatse"), "{err}");
        let err = parse_request(r#"{"dataset":"d"}"#).unwrap_err();
        assert!(err.to_string().contains("sql"), "{err}");
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn request_round_trips_through_canonical_json() {
        let mut req = demo_request();
        req.top_k = Some(3);
        req.seed = Some(42);
        let back: AnalyzeRequest = serde_json::from_str(&req.canonical_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn config_derives_seed_from_fingerprint() {
        let base = HypDbConfig::default();
        let req = demo_request();
        let cfg = req.config(&base);
        assert_ne!(cfg.ci.seed, base.ci.seed, "seed must be request-scoped");
        assert_eq!(cfg.ci.seed, req.config(&base).ci.seed, "…but deterministic");
        let mut pinned = req.clone();
        pinned.seed = Some(1234);
        assert_eq!(pinned.config(&base).ci.seed, 1234);
        let mut other = req.clone();
        other.sql.push(' ');
        assert_ne!(other.config(&base).ci.seed, cfg.ci.seed);
    }

    #[test]
    fn analyze_body_is_reproducible_and_timing_free() {
        let table = confounded();
        let req = demo_request();
        let base = HypDbConfig::default();
        let a = report_body(&analyze(&table, &req, &base).unwrap());
        let b = report_body(&analyze(&table, &req, &base).unwrap());
        assert_eq!(a, b, "same request twice must be byte-identical");
        assert!(a.contains("\"timings\":{\"detection\":0.0"));
        let back: AnalysisReport = serde_json::from_str(&a).unwrap();
        assert_eq!(back.covariates, vec!["Z"]);
    }

    #[test]
    fn explain_flag_appends_to_canonical_and_never_moves_the_seed() {
        let plain = demo_request();
        let mut ex = plain.clone();
        ex.explain = true;
        assert!(!plain.canonical_json().contains("explain"));
        assert!(ex.canonical_json().ends_with(",\"explain\":true}"));
        assert_eq!(plain.fingerprint(), ex.fingerprint());
        let back: AnalyzeRequest = serde_json::from_str(&ex.canonical_json()).unwrap();
        assert_eq!(back, ex);
        // `false` and `null` both mean "plain" and canonicalize away.
        for spelled in [
            r#"{"dataset":"d","sql":"q","explain":false}"#,
            r#"{"dataset":"d","sql":"q","explain":null}"#,
        ] {
            let req = parse_request(spelled).unwrap();
            assert!(!req.explain);
            assert!(!req.canonical_json().contains("explain"));
        }
    }

    #[test]
    fn explained_analysis_reproduces_the_plain_report() {
        let table = confounded();
        let base = HypDbConfig::default();
        let mut req = demo_request();
        let plain = report_body(&analyze(&table, &req, &base).unwrap());
        req.explain = true;
        let (report, explain) = analyze_explained(&table, &req, &base, None).unwrap();
        assert_eq!(
            report_body(&report),
            plain,
            "explain must not perturb the report"
        );
        let body = explain_body(&report, &explain);
        assert!(body.starts_with(r#"{"explain":{"#), "{body}");
        assert!(body.contains(r#""schema":"hypdb-explain/v1""#), "{body}");
        assert!(body.contains(r#""report":{"#));
        let (r2, e2) = analyze_explained(&table, &req, &base, None).unwrap();
        assert_eq!(explain_body(&r2, &e2), body, "explain body must be stable");
    }

    #[test]
    fn treatment_override_is_honoured() {
        let table = confounded();
        let mut req = AnalyzeRequest::new("demo", "SELECT Z, T, avg(Y) FROM D GROUP BY Z, T");
        req.treatment = Some("T".to_string());
        req.covariates = Some(vec![]);
        let report = analyze(&table, &req, &HypDbConfig::default()).unwrap();
        assert_eq!(report.treatment, "T");
    }

    #[test]
    fn detect_matches_analyze_bias_total() {
        let table = confounded();
        let req = demo_request();
        let base = HypDbConfig::default();
        let det = detect(&table, &req, &base).unwrap();
        assert!(det.biased(), "confounded query must be flagged");
        assert_eq!(det.contexts.len(), 1);
        let full = analyze(&table, &req, &base).unwrap();
        assert_eq!(det.contexts[0].bias, full.contexts[0].bias_total);
        assert_eq!(det.covariates, full.covariates);
        // And the detect body round-trips.
        let back: DetectReport = serde_json::from_str(&detect_body(&det)).unwrap();
        assert_eq!(back, det);
    }

    #[test]
    fn wire_errors_are_invalid() {
        let table = confounded();
        let base = HypDbConfig::default();
        let req = AnalyzeRequest::new("demo", "SELECT nope FROM D");
        assert!(matches!(
            analyze(&table, &req, &base),
            Err(Error::Invalid(_))
        ));
        let req = AnalyzeRequest::new("demo", "SELECT Missing, avg(Y) FROM D GROUP BY Missing");
        assert!(analyze(&table, &req, &base).is_err());
    }
}
