//! The request journal writer: a bounded channel in front of a
//! dedicated writer thread.
//!
//! The flight recorder's durability layer. Producers (the serve
//! middleware, or any front end) render one JSONL record per request
//! and hand the finished line to [`Journal::append`]; a single writer
//! thread drains the channel and writes lines to the sink in arrival
//! order. The channel is **bounded**: when the writer falls behind
//! (slow disk, burst traffic) `append` drops the line and counts it in
//! the process-wide [`dropped_total`] counter instead of blocking —
//! journaling must never add latency to the request path, and a gap in
//! the journal is always preferable to a stalled worker.
//!
//! The record *schema* ([`SCHEMA`] = `hypdb-journal/v1`) is defined by
//! the producers (see `hypdb-serve`'s `journal` module); this module
//! only moves finished lines. Lines are flushed as they are written,
//! so a journal can be tailed while the process is live and is
//! complete once [`Journal::close`] (or drop) has joined the writer.

use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// The journal record schema identifier every record carries.
pub const SCHEMA: &str = "hypdb-journal/v1";

/// Default bound on lines queued for the writer thread.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Lines dropped because the writer's channel was full (or the writer
/// had exited). Process-wide, monotonic: the `/metrics` export
/// `hypdb_journal_dropped_total`.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Total journal lines dropped by every journal in this process.
pub fn dropped_total() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// A running journal: the producer handle plus the writer thread.
///
/// Cheap to share behind an `Arc`; `append` is lock-free up to the
/// channel. Dropping the journal closes the channel and joins the
/// writer, so every accepted line reaches the sink.
pub struct Journal {
    tx: Option<SyncSender<String>>,
    writer: Option<JoinHandle<()>>,
}

impl Journal {
    /// Opens (creates or truncates) a journal file at `path` with the
    /// default channel capacity.
    pub fn open(path: &str) -> io::Result<Journal> {
        Self::open_with_capacity(path, DEFAULT_CAPACITY)
    }

    /// [`Journal::open`] with an explicit channel capacity.
    pub fn open_with_capacity(path: &str, capacity: usize) -> io::Result<Journal> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file), capacity))
    }

    /// A journal over an arbitrary sink — the seam the backpressure
    /// tests use (a deliberately slow writer) and the file constructors
    /// wrap. `capacity` bounds the lines queued ahead of the writer.
    pub fn to_writer(sink: Box<dyn Write + Send>, capacity: usize) -> Journal {
        let (tx, rx): (SyncSender<String>, Receiver<String>) = sync_channel(capacity.max(1));
        let writer = std::thread::Builder::new()
            .name("hypdb-journal".into())
            .spawn(move || {
                let mut out = BufWriter::new(sink);
                while let Ok(line) = rx.recv() {
                    // A sink error retires the writer; subsequent
                    // appends count as drops via the closed channel.
                    if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                        return;
                    }
                    // Flush per record so the journal is tail-able and
                    // survives an abrupt exit; record rates are far
                    // below what a buffered flush would be needed for.
                    if out.flush().is_err() {
                        return;
                    }
                }
            })
            .ok();
        Journal {
            tx: Some(tx),
            writer,
        }
    }

    /// Enqueues one finished record line. **Never blocks**: when the
    /// writer is behind (channel full) or gone, the line is dropped and
    /// counted in [`dropped_total`].
    pub fn append(&self, line: String) {
        let Some(tx) = &self.tx else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match tx.try_send(line) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Closes the channel and joins the writer: every line accepted by
    /// [`Journal::append`] is on disk when this returns. Also performed
    /// on drop; `close` is for callers that want the completion point.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.close_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A sink that appends to a shared buffer, optionally stalling per
    /// write to simulate a slow disk.
    struct SharedSink {
        buf: Arc<Mutex<Vec<u8>>>,
        stall: std::time::Duration,
    }

    impl Write for SharedSink {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if !self.stall.is_zero() {
                std::thread::sleep(self.stall);
            }
            self.buf.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_arrive_in_order_and_close_flushes() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let journal = Journal::to_writer(
            Box::new(SharedSink {
                buf: Arc::clone(&buf),
                stall: std::time::Duration::ZERO,
            }),
            8,
        );
        for i in 0..5 {
            journal.append(format!("{{\"id\":{i}}}"));
        }
        journal.close();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "{\"id\":0}");
        assert_eq!(lines[4], "{\"id\":4}");
    }

    #[test]
    fn full_channel_drops_without_blocking() {
        let before = dropped_total();
        let buf = Arc::new(Mutex::new(Vec::new()));
        // A writer that takes 50 ms per line behind a 1-slot channel:
        // a burst must drop, not block.
        let journal = Journal::to_writer(
            Box::new(SharedSink {
                buf: Arc::clone(&buf),
                stall: std::time::Duration::from_millis(50),
            }),
            1,
        );
        let t0 = crate::Tick::now();
        for i in 0..64 {
            journal.append(format!("line {i}"));
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(500),
            "append must never block on a slow writer (took {elapsed:?})"
        );
        let dropped = dropped_total() - before;
        assert!(dropped > 0, "a 1-slot channel under a burst must drop");
        journal.close();
        let written = String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .count() as u64;
        assert_eq!(written + dropped, 64, "every line is written or counted");
    }

    #[test]
    fn file_journal_round_trips() {
        let path =
            std::env::temp_dir().join(format!("hypdb-journal-test-{}.jsonl", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        let journal = Journal::open(&path_str).unwrap();
        journal.append("{\"a\":1}".to_string());
        journal.append("{\"b\":2}".to_string());
        journal.close();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
