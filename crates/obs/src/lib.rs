//! `hypdb-obs` — std-only observability primitives for the workspace.
//!
//! Every other crate funnels its timing and plan-visibility needs
//! through here, which keeps the workspace's byte-identity invariant
//! auditable in one place:
//!
//! * [`clock`] — [`Tick`] and [`Deadline`], the **only** place the
//!   workspace constructs `std::time::Instant` (enforced by
//!   `hypdb-lint`'s `raw-instant-outside-obs` rule). Anything a `Tick`
//!   measures may reach logs, histograms, and trace dumps — never a
//!   report body.
//! * [`ctx`] — the per-thread tracing context: hierarchical span paths
//!   (`request/discovery/#2/planner_round`), lock-cheap aggregation
//!   keyed by path, explicit capture/install so `hypdb-exec`'s scoped
//!   pool propagates the context into its workers, and the EXPLAIN
//!   sink. The *structural* side (paths, counts, explain payloads) is
//!   strictly separated from the *timing* side (nanoseconds), so
//!   deterministic surfaces consume structure only.
//! * [`hist`] — fixed-bucket latency histograms with atomic counters,
//!   rendered in Prometheus exposition format. The process-wide
//!   [`MIT_SETTLE`] and [`CONTINGENCY_BUILD`] histograms live here so
//!   the stats and causal layers can observe without a serve
//!   dependency.
//! * [`trace`] — the `HYPDB_TRACE` slow-request dump: a JSON span tree
//!   (with timings) written to **stderr only**, never into a response
//!   body.
//! * [`journal`] — the flight recorder's durability layer: a bounded
//!   channel in front of a dedicated writer thread that appends one
//!   JSONL record per request ([`journal::SCHEMA`] =
//!   `hypdb-journal/v1`), dropping (and counting) rather than ever
//!   blocking the request path.
//! * [`ring`] — in-memory retention of finished span trees (last N +
//!   K slowest) behind `HYPDB_DEBUG_TRACES`, serialized through
//!   [`TraceEntry`] — the **single** trace renderer, shared with the
//!   stderr dump.
//! * [`window`] — rolling 1m/5m per-second request summaries
//!   (count/errors/latency) for `/metrics`, all-atomic, no sweeper.
//!
//! The crate depends on nothing and is `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod ctx;
pub mod hist;
pub mod journal;
pub mod ring;
pub mod trace;
pub mod window;

pub use clock::{Deadline, Tick};
pub use ctx::{
    capture, explain_active, frame, install, item, record_explain, span, take_explain_here,
    with_request, CtxHandle, ExplainEntry, SpanReport, TraceReport, Tracer,
};
pub use hist::{Histogram, HistogramSnapshot, CONTINGENCY_BUILD, MIT_SETTLE};
pub use journal::Journal;
pub use ring::{TraceEntry, TraceRing};
pub use trace::{maybe_dump, trace_threshold};
pub use window::{RollingWindow, WindowSummary};
