//! `hypdb-obs` — std-only observability primitives for the workspace.
//!
//! Every other crate funnels its timing and plan-visibility needs
//! through here, which keeps the workspace's byte-identity invariant
//! auditable in one place:
//!
//! * [`clock`] — [`Tick`] and [`Deadline`], the **only** place the
//!   workspace constructs `std::time::Instant` (enforced by
//!   `hypdb-lint`'s `raw-instant-outside-obs` rule). Anything a `Tick`
//!   measures may reach logs, histograms, and trace dumps — never a
//!   report body.
//! * [`ctx`] — the per-thread tracing context: hierarchical span paths
//!   (`request/discovery/#2/planner_round`), lock-cheap aggregation
//!   keyed by path, explicit capture/install so `hypdb-exec`'s scoped
//!   pool propagates the context into its workers, and the EXPLAIN
//!   sink. The *structural* side (paths, counts, explain payloads) is
//!   strictly separated from the *timing* side (nanoseconds), so
//!   deterministic surfaces consume structure only.
//! * [`hist`] — fixed-bucket latency histograms with atomic counters,
//!   rendered in Prometheus exposition format. The process-wide
//!   [`MIT_SETTLE`] and [`CONTINGENCY_BUILD`] histograms live here so
//!   the stats and causal layers can observe without a serve
//!   dependency.
//! * [`trace`] — the `HYPDB_TRACE` slow-request dump: a JSON span tree
//!   (with timings) written to **stderr only**, never into a response
//!   body.
//!
//! The crate depends on nothing and is `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod ctx;
pub mod hist;
pub mod trace;

pub use clock::{Deadline, Tick};
pub use ctx::{
    capture, explain_active, frame, install, item, record_explain, span, take_explain_here,
    with_request, CtxHandle, ExplainEntry, SpanReport, TraceReport, Tracer,
};
pub use hist::{Histogram, HistogramSnapshot, CONTINGENCY_BUILD, MIT_SETTLE};
pub use trace::{maybe_dump, trace_threshold};
