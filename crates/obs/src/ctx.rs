//! The per-thread tracing context: hierarchical span paths, lock-cheap
//! aggregation, pool propagation, and the deterministic EXPLAIN sink.
//!
//! A request installs a [`Tracer`] with [`with_request`]; everything
//! underneath may then open named [`span`]s (timed + counted), extend
//! the path with structural [`frame`]s / [`item`]s (pool fan-out
//! indices), and append [`record_explain`] payloads. When no tracer is
//! installed every entry point is a single thread-local check — the
//! pipeline pays (almost) nothing for the instrumentation it isn't
//! using.
//!
//! **Structural vs timing separation.** A span path and its count, and
//! every explain payload, are pure functions of the input data: paths
//! embed pool *item indices* (never thread ids), and per-path sequence
//! numbers are assigned in program order within one logical task. The
//! nanosecond side lives next to them but is only ever read by the
//! trace dump and histograms — [`Tracer::take_explain`] returns
//! structure alone, sorted by `(path, seq)`, so EXPLAIN output is
//! byte-identical across worker counts, shard layouts, and plan
//! strategies.
//!
//! **Pool propagation.** `hypdb-exec`'s scoped pool [`capture`]s the
//! submitting thread's context before spawning and [`install`]s it in
//! each worker, so spans recorded inside a fan-out land under the
//! submitter's path plus a deterministic `#index` frame.

use crate::clock::Tick;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One path segment: a static span/frame name or a fan-out item index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Name(&'static str),
    Item(usize),
}

/// Aggregated measurements of one span path.
#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    nanos: u64,
}

/// One EXPLAIN payload, addressed by `(path, seq)` — the deterministic
/// coordinates that let entries recorded concurrently be merged into
/// one canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainEntry {
    /// Span path at record time (`request/discovery/#0/...`).
    pub path: String,
    /// 0-based sequence number among this path's entries.
    pub seq: u64,
    /// Opaque payload (JSON text by convention; obs never parses it).
    pub payload: String,
}

#[derive(Default)]
struct ExplainLog {
    entries: Vec<ExplainEntry>,
    seqs: BTreeMap<String, u64>,
}

/// The shared accumulation target behind one [`Tracer`].
#[derive(Default)]
struct TraceShared {
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    explain: Option<Mutex<ExplainLog>>,
}

/// A per-request trace collector. Install with [`with_request`], then
/// read the result with [`Tracer::finish`] / [`Tracer::take_explain`].
pub struct Tracer {
    shared: Arc<TraceShared>,
}

impl Tracer {
    /// A tracer collecting spans only.
    pub fn new() -> Tracer {
        Tracer {
            shared: Arc::new(TraceShared::default()),
        }
    }

    /// A tracer that additionally collects EXPLAIN payloads.
    pub fn with_explain() -> Tracer {
        Tracer {
            shared: Arc::new(TraceShared {
                spans: Mutex::default(),
                explain: Some(Mutex::default()),
            }),
        }
    }

    /// The merged span report (structure + timings), sorted by path.
    pub fn finish(&self) -> TraceReport {
        let spans = lock_ok(&self.shared.spans);
        TraceReport {
            spans: spans
                .iter()
                .map(|(path, agg)| SpanReport {
                    path: path.clone(),
                    count: agg.count,
                    nanos: agg.nanos,
                })
                .collect(),
        }
    }

    /// Drains the EXPLAIN entries in canonical `(path, seq)` order —
    /// the structural record only, no timings. Empty for a tracer
    /// built with [`Tracer::new`].
    pub fn take_explain(&self) -> Vec<ExplainEntry> {
        drain_explain(&self.shared)
    }
}

fn drain_explain(shared: &TraceShared) -> Vec<ExplainEntry> {
    let Some(log) = &shared.explain else {
        return Vec::new();
    };
    let mut entries = std::mem::take(&mut lock_ok(log).entries);
    entries.sort_by(|a, b| a.path.cmp(&b.path).then(a.seq.cmp(&b.seq)));
    entries
}

/// Drains the *installed* tracer's EXPLAIN entries (canonical order,
/// like [`Tracer::take_explain`]). Lets a layer that finds itself
/// already under an explain-collecting tracer — e.g. a request
/// middleware's — consume the entries it just recorded instead of
/// nesting a second tracer and hiding its spans from the outer trace
/// dump. Empty when no explain-capable context is installed.
pub fn take_explain_here() -> Vec<ExplainEntry> {
    CTX.with(|c| match c.borrow().as_ref() {
        Some(ctx) => drain_explain(&ctx.shared),
        None => Vec::new(),
    })
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// One aggregated span in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanReport {
    /// `/`-joined span path.
    pub path: String,
    /// Number of times the span ran.
    pub count: u64,
    /// Total nanoseconds across runs (timing side — trace dumps and
    /// histograms only, never report bytes).
    pub nanos: u64,
}

/// The merged spans of one request, sorted by path.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Aggregated spans, path-sorted.
    pub spans: Vec<SpanReport>,
}

impl TraceReport {
    /// Renders the span tree as JSON (`{"name","count","ms","children"}`),
    /// nesting paths on `/`. This is the `HYPDB_TRACE` dump body.
    pub fn to_json_tree(&self) -> String {
        #[derive(Default)]
        struct Node {
            count: u64,
            nanos: u64,
            children: BTreeMap<String, Node>,
        }
        let mut root = Node::default();
        for s in &self.spans {
            let mut node = &mut root;
            for seg in s.path.split('/') {
                node = node.children.entry(seg.to_string()).or_default();
            }
            node.count += s.count;
            node.nanos += s.nanos;
        }
        fn write_children(out: &mut String, node: &Node) {
            out.push('[');
            for (i, (name, child)) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{:?},\"count\":{},\"ms\":{:.3},\"children\":",
                    name,
                    child.count,
                    child.nanos as f64 / 1e6
                );
                write_children(out, child);
                out.push('}');
            }
            out.push(']');
        }
        let mut out = String::new();
        write_children(&mut out, &root);
        out
    }
}

/// The thread's installed context: the shared sink plus this thread's
/// current path. Cloned on [`capture`]; cheap (an `Arc` + small `Vec`).
#[derive(Clone)]
struct Ctx {
    shared: Arc<TraceShared>,
    path: Vec<Seg>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Ignore mutex poisoning: the sinks hold pure accumulation state, and
/// a panicking request must not wedge tracing for its neighbours.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// True when a tracer is installed on this thread.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// True when the installed tracer collects EXPLAIN payloads — gate for
/// callers whose payload construction is not free.
pub fn explain_active() -> bool {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| ctx.shared.explain.is_some())
    })
}

/// Runs `f` with `tracer` installed as this thread's context, rooted at
/// the `request` span (timed like any other span). The previous context
/// (if any) is restored afterwards.
pub fn with_request<R>(tracer: &Tracer, f: impl FnOnce() -> R) -> R {
    let ctx = Ctx {
        shared: Arc::clone(&tracer.shared),
        path: Vec::new(),
    };
    let prev = CTX.with(|c| c.replace(Some(ctx)));
    let out = span("request", f);
    CTX.with(|c| *c.borrow_mut() = prev);
    out
}

fn joined_path(path: &[Seg]) -> String {
    let mut out = String::new();
    for (i, seg) in path.iter().enumerate() {
        if i > 0 {
            out.push('/');
        }
        match seg {
            Seg::Name(n) => out.push_str(n),
            Seg::Item(i) => {
                let _ = write!(out, "#{i}");
            }
        }
    }
    out
}

fn push_seg(seg: Seg) -> bool {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.path.push(seg);
            true
        } else {
            false
        }
    })
}

fn pop_seg() {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.path.pop();
        }
    });
}

fn record_span(nanos: u64) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            let path = joined_path(&ctx.path);
            let mut spans = lock_ok(&ctx.shared.spans);
            let agg = spans.entry(path).or_default();
            agg.count += 1;
            agg.nanos += nanos;
        }
    });
}

/// Runs `f` inside a named, timed span. A no-op wrapper when no tracer
/// is installed.
pub fn span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !push_seg(Seg::Name(name)) {
        return f();
    }
    let t = Tick::now();
    let out = f();
    record_span(t.elapsed_nanos());
    pop_seg();
    out
}

/// Runs `f` inside a structural path frame: extends the span path
/// without recording a timing of its own (children record under it).
pub fn frame<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !push_seg(Seg::Name(name)) {
        return f();
    }
    let out = f();
    pop_seg();
    out
}

/// Runs `f` inside a fan-out item frame (`#index`). Index-based, never
/// thread-based, so paths are identical at any worker count. This is
/// the pool's per-item hook; it is structural only and allocation-free
/// on the push.
pub fn item<R>(index: usize, f: impl FnOnce() -> R) -> R {
    if !push_seg(Seg::Item(index)) {
        return f();
    }
    let out = f();
    pop_seg();
    out
}

/// A captured context, ready to [`install`] on another thread. Captures
/// on a thread without a context produce a handle that installs
/// nothing (workers then run untraced, exactly like their submitter).
#[derive(Clone)]
pub struct CtxHandle(Option<Ctx>);

/// Snapshots this thread's context (shared sink + current path).
pub fn capture() -> CtxHandle {
    CtxHandle(CTX.with(|c| c.borrow().clone()))
}

/// Runs `f` with a captured context installed, restoring the thread's
/// previous context afterwards.
pub fn install<R>(handle: &CtxHandle, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = &handle.0 else {
        return f();
    };
    let prev = CTX.with(|c| c.replace(Some(ctx.clone())));
    let out = f();
    CTX.with(|c| *c.borrow_mut() = prev);
    out
}

/// Appends an EXPLAIN payload at the current path, assigning the next
/// per-path sequence number. The payload closure runs only when an
/// explain-collecting tracer is installed.
pub fn record_explain(payload: impl FnOnce() -> String) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if let Some(log) = &ctx.shared.explain {
                let path = joined_path(&ctx.path);
                let mut log = lock_ok(log);
                let seq = log.seqs.entry(path.clone()).or_insert(0);
                let entry = ExplainEntry {
                    path,
                    seq: *seq,
                    payload: payload(),
                };
                *seq += 1;
                log.entries.push(entry);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_context_is_passthrough() {
        assert!(!active());
        assert!(!explain_active());
        assert_eq!(span("x", || 7), 7);
        assert_eq!(frame("y", || 8), 8);
        assert_eq!(item(3, || 9), 9);
        record_explain(|| panic!("must not run"));
    }

    #[test]
    fn spans_aggregate_by_path() {
        let tracer = Tracer::new();
        with_request(&tracer, || {
            span("detect", || {
                span("round", || {});
                span("round", || {});
            });
        });
        let report = tracer.finish();
        let paths: Vec<(&str, u64)> = report
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("request", 1),
                ("request/detect", 1),
                ("request/detect/round", 2),
            ]
        );
        let tree = report.to_json_tree();
        assert!(tree.contains("\"name\":\"request\""));
        assert!(tree.contains("\"children\":[{\"name\":\"detect\""));
    }

    #[test]
    fn explain_entries_sort_by_path_then_seq() {
        let tracer = Tracer::with_explain();
        with_request(&tracer, || {
            assert!(explain_active());
            frame("discovery", || {
                item(1, || record_explain(|| "b".into()));
                item(0, || {
                    record_explain(|| "a0".into());
                    record_explain(|| "a1".into());
                });
            });
        });
        let entries = tracer.take_explain();
        let got: Vec<(String, u64, String)> = entries
            .into_iter()
            .map(|e| (e.path, e.seq, e.payload))
            .collect();
        assert_eq!(
            got,
            vec![
                ("request/discovery/#0".into(), 0, "a0".into()),
                ("request/discovery/#0".into(), 1, "a1".into()),
                ("request/discovery/#1".into(), 0, "b".into()),
            ]
        );
        // Drained: a second take is empty.
        assert!(tracer.take_explain().is_empty());
    }

    #[test]
    fn capture_install_carries_the_path() {
        let tracer = Tracer::new();
        with_request(&tracer, || {
            frame("phase", || {
                let handle = capture();
                std::thread::scope(|s| {
                    s.spawn(|| {
                        install(&handle, || {
                            item(2, || span("work", || {}));
                        });
                    });
                });
            });
        });
        let report = tracer.finish();
        assert!(report
            .spans
            .iter()
            .any(|s| s.path == "request/phase/#2/work" && s.count == 1));
    }

    #[test]
    fn take_explain_here_drains_the_installed_tracer() {
        // No context installed: nothing to drain, no panic.
        assert!(take_explain_here().is_empty());

        let tracer = Tracer::with_explain();
        with_request(&tracer, || {
            frame("discovery", || {
                item(1, || record_explain(|| "late".into()));
                item(0, || record_explain(|| "early".into()));
            });
            // Draining from *inside* the request sees the same
            // canonical (path, seq) order `take_explain` would, and
            // empties the shared log.
            let got: Vec<String> = take_explain_here().into_iter().map(|e| e.payload).collect();
            assert_eq!(got, vec!["early".to_string(), "late".to_string()]);
        });
        assert!(tracer.take_explain().is_empty(), "already drained");
    }

    #[test]
    fn plain_tracer_collects_no_explain() {
        let tracer = Tracer::new();
        with_request(&tracer, || {
            assert!(active());
            assert!(!explain_active());
            record_explain(|| panic!("explain sink disabled"));
        });
        assert!(tracer.take_explain().is_empty());
    }
}
