//! Rolling-window request summaries: per-second atomic slots covering
//! the last five minutes, summarised over 1m/5m horizons for
//! `/metrics`.
//!
//! Histograms accumulate forever; operators also want "what is the
//! error rate *right now*". A [`RollingWindow`] keeps 300 one-second
//! slots, each a bundle of atomics stamped with the epoch second it
//! belongs to. Observation CASes the stamp: the first observation of a
//! new second resets the slot, later ones accumulate. Summaries walk
//! the slots and keep only those inside the asked horizon — no
//! background sweeper thread, no locks.
//!
//! Time here is the elapsed seconds since the window was created (a
//! [`Tick`]), not wall-clock: windows are timing-side observability
//! and never reach a response body.

use crate::clock::Tick;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seconds of history a window retains (the 5m horizon).
pub const WINDOW_SLOTS: usize = 300;

/// One second of accumulation. `epoch` stamps which second the counts
/// belong to; a slot whose stamp has fallen out of the horizon is dead
/// weight until an observation recycles it.
struct Slot {
    /// The 1-based second this slot currently holds (0 = never used).
    epoch: AtomicU64,
    count: AtomicU64,
    errors: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// Aggregated view of one horizon, as returned by
/// [`RollingWindow::summary`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSummary {
    /// Requests observed inside the horizon.
    pub count: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Mean latency in seconds (0 when `count` is 0).
    pub avg_seconds: f64,
    /// Maximum latency in seconds.
    pub max_seconds: f64,
}

/// A 5-minute sliding record of request outcomes, queryable over any
/// horizon up to [`WINDOW_SLOTS`] seconds.
pub struct RollingWindow {
    start: Tick,
    slots: Vec<Slot>,
}

impl RollingWindow {
    /// An empty window starting now.
    pub fn new() -> RollingWindow {
        RollingWindow {
            start: Tick::now(),
            slots: (0..WINDOW_SLOTS).map(|_| Slot::new()).collect(),
        }
    }

    /// The current 1-based second since the window started.
    fn now_epoch(&self) -> u64 {
        self.start.elapsed().as_secs() + 1
    }

    /// Records one finished request: its latency and whether it was an
    /// error (HTTP 4xx/5xx from the caller's point of view).
    pub fn observe(&self, seconds: f64, error: bool) {
        let epoch = self.now_epoch();
        let slot = &self.slots[(epoch as usize) % WINDOW_SLOTS];
        let stamped = slot.epoch.load(Ordering::Acquire);
        if stamped != epoch {
            // First observation of this second: try to claim and reset
            // the slot. A racing loser just accumulates into the
            // winner's fresh slot, which is the semantics we want.
            if slot
                .epoch
                .compare_exchange(stamped, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
                slot.errors.store(0, Ordering::Relaxed);
                slot.sum_nanos.store(0, Ordering::Relaxed);
                slot.max_nanos.store(0, Ordering::Relaxed);
            }
        }
        let nanos = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9) as u64
        } else {
            0
        };
        slot.count.fetch_add(1, Ordering::Relaxed);
        if error {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        slot.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Aggregates the last `horizon_secs` seconds (clamped to
    /// [`WINDOW_SLOTS`]). The current partial second is included.
    pub fn summary(&self, horizon_secs: u64) -> WindowSummary {
        let now = self.now_epoch();
        let horizon = horizon_secs.clamp(1, WINDOW_SLOTS as u64);
        let oldest = now.saturating_sub(horizon - 1);
        let mut out = WindowSummary::default();
        let mut sum_nanos = 0u64;
        let mut max_nanos = 0u64;
        for slot in &self.slots {
            let stamped = slot.epoch.load(Ordering::Acquire);
            if stamped < oldest || stamped > now || stamped == 0 {
                continue;
            }
            out.count += slot.count.load(Ordering::Relaxed);
            out.errors += slot.errors.load(Ordering::Relaxed);
            sum_nanos += slot.sum_nanos.load(Ordering::Relaxed);
            max_nanos = max_nanos.max(slot.max_nanos.load(Ordering::Relaxed));
        }
        if out.count > 0 {
            out.avg_seconds = sum_nanos as f64 / 1e9 / out.count as f64;
        }
        out.max_seconds = max_nanos as f64 / 1e9;
        out
    }
}

impl Default for RollingWindow {
    fn default() -> Self {
        RollingWindow::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_accumulate_within_the_horizon() {
        let w = RollingWindow::new();
        w.observe(0.010, false);
        w.observe(0.030, true);
        w.observe(0.020, false);
        let s = w.summary(60);
        assert_eq!(s.count, 3);
        assert_eq!(s.errors, 1);
        assert!((s.avg_seconds - 0.020).abs() < 1e-6);
        assert!((s.max_seconds - 0.030).abs() < 1e-6);
        // The 5m horizon sees the same young data.
        assert_eq!(w.summary(300).count, 3);
    }

    #[test]
    fn empty_window_summarises_to_zero() {
        let w = RollingWindow::new();
        assert_eq!(w.summary(60), WindowSummary::default());
        assert_eq!(w.summary(300), WindowSummary::default());
    }

    #[test]
    fn degenerate_latencies_are_clamped() {
        let w = RollingWindow::new();
        w.observe(f64::NAN, false);
        w.observe(-5.0, true);
        let s = w.summary(60);
        assert_eq!(s.count, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.avg_seconds, 0.0);
        assert_eq!(s.max_seconds, 0.0);
    }

    #[test]
    fn concurrent_observation_loses_nothing_within_one_second() {
        // All observations land inside the first slots of a fresh
        // window, so totals must be exact.
        let w = std::sync::Arc::new(RollingWindow::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..250 {
                        w.observe(0.001, i % 10 == 0);
                    }
                });
            }
        });
        let s = w.summary(300);
        assert_eq!(s.count, 1000);
        assert_eq!(s.errors, 100);
    }

    #[test]
    fn horizon_is_clamped_to_the_window() {
        let w = RollingWindow::new();
        w.observe(0.001, false);
        assert_eq!(w.summary(10_000).count, 1);
        assert_eq!(w.summary(0).count, 1);
    }
}
