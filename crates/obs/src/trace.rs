//! The `HYPDB_TRACE` slow-request dump.
//!
//! `HYPDB_TRACE=<ms>` arms the dump: any traced request whose total
//! wall time reaches the threshold writes its span tree (with
//! timings) as one JSON line to **stderr** — never into a response
//! body, so the byte-identity invariant is untouched. `HYPDB_TRACE=0`
//! dumps every traced request. Redirect stderr to keep a file.
//!
//! The dumped JSON is a [`TraceEntry`] document — the same
//! serialization `/debug/traces` serves, so there is exactly one trace
//! renderer in the workspace.

use crate::ctx::TraceReport;
use crate::ring::TraceEntry;
use std::sync::OnceLock;
use std::time::Duration;

/// The armed threshold, read once from `HYPDB_TRACE` (milliseconds).
/// `None` when unset or unparsable — tracing stays dormant.
pub fn trace_threshold() -> Option<Duration> {
    static THRESHOLD: OnceLock<Option<Duration>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("HYPDB_TRACE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
    })
}

/// Writes the span tree to stderr when `elapsed` reaches the armed
/// `HYPDB_TRACE` threshold; a no-op otherwise. `seq` is the request
/// sequence number (0 when the producer has none) and `tag` names the
/// request (endpoint or CLI invocation). The line is
/// `hypdb-trace: <TraceEntry JSON>` — identical to the corresponding
/// `/debug/traces` entry.
pub fn maybe_dump(seq: u64, tag: &str, elapsed: Duration, report: &TraceReport) {
    let Some(threshold) = trace_threshold() else {
        return;
    };
    if elapsed >= threshold {
        let entry = TraceEntry {
            seq,
            tag: tag.to_string(),
            millis: elapsed.as_secs_f64() * 1e3,
            report: report.clone(),
        };
        eprintln!("hypdb-trace: {}", entry.to_json());
    }
}
