//! Fixed-bucket latency histograms with atomic counters, rendered in
//! Prometheus exposition format.
//!
//! Buckets are a fixed exponential ladder from 100 µs to 10 s — one
//! shape for every family, so dashboards can overlay them and the
//! render path needs no per-histogram configuration. Observation is a
//! couple of relaxed atomic adds; histograms are always on (they feed
//! `/metrics` whether or not a request is traced).

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (seconds) of the fixed bucket ladder, paired with
/// their exact `le` label text (pre-rendered so the exposition never
/// depends on float formatting).
pub const BUCKET_BOUNDS: [(f64, &str); 14] = [
    (0.0001, "0.0001"),
    (0.00025, "0.00025"),
    (0.0005, "0.0005"),
    (0.001, "0.001"),
    (0.0025, "0.0025"),
    (0.005, "0.005"),
    (0.01, "0.01"),
    (0.025, "0.025"),
    (0.05, "0.05"),
    (0.1, "0.1"),
    (0.25, "0.25"),
    (1.0, "1.0"),
    (2.5, "2.5"),
    (10.0, "10.0"),
];

const NB: usize = BUCKET_BOUNDS.len();

/// A fixed-bucket latency histogram. `const`-constructible so families
/// can live in statics; all methods take `&self`.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; the +Inf bucket
    /// is implicit (`count` minus the ladder's sum).
    buckets: [AtomicU64; NB],
    /// Total observed nanoseconds.
    sum_nanos: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NB],
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `seconds`.
    pub fn observe(&self, seconds: f64) {
        let secs = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        if let Some(i) = BUCKET_BOUNDS.iter().position(|&(b, _)| secs <= b) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.sum_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (counters are statistics, not
    /// synchronisation; relaxed loads suffice).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NB];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time histogram state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Non-cumulative per-bucket counts aligned with [`BUCKET_BOUNDS`].
    pub buckets: [u64; NB],
    /// Sum of observations, seconds.
    pub sum_seconds: f64,
    /// Number of observations.
    pub count: u64,
}

/// Permutation-test settle time per job (observed by
/// `hypdb-stats::mit_batch`).
pub static MIT_SETTLE: Histogram = Histogram::new();

/// Contingency-table build time — direct scans and superset
/// marginalisations both (observed by the data oracle).
pub static CONTINGENCY_BUILD: Histogram = Histogram::new();

/// Renders one histogram family in Prometheus exposition format.
/// `series` pairs a label block (`""` or `endpoint="analyze"`) with a
/// histogram; all series share the family's HELP/TYPE header.
pub fn render(out: &mut String, name: &str, help: &str, series: &[(&str, &Histogram)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, hist) in series {
        let snap = hist.snapshot();
        let mut cum = 0u64;
        for (i, &(_, le)) in BUCKET_BOUNDS.iter().enumerate() {
            cum += snap.buckets[i];
            let _ = match labels.is_empty() {
                true => writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}"),
                false => writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}"),
            };
        }
        let _ = match labels.is_empty() {
            true => writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count),
            false => writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", snap.count),
        };
        let _ = match labels.is_empty() {
            true => writeln!(out, "{name}_sum {}", snap.sum_seconds),
            false => writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum_seconds),
        };
        let _ = match labels.is_empty() {
            true => writeln!(out, "{name}_count {}", snap.count),
            false => writeln!(out, "{name}_count{{{labels}}} {}", snap.count),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_lands_in_the_right_bucket() {
        let h = Histogram::new();
        h.observe(0.0004); // ≤ 0.0005
        h.observe(0.003); // ≤ 0.005
        h.observe(0.003);
        h.observe(99.0); // past the ladder: +Inf only
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[5], 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert!((s.sum_seconds - 99.0064).abs() < 1e-6);
    }

    #[test]
    fn degenerate_observations_are_clamped() {
        let h = Histogram::new();
        h.observe(-1.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 2); // clamped to 0.0 ≤ smallest bound
        assert_eq!(s.sum_seconds, 0.0);
    }

    #[test]
    fn render_is_cumulative_and_labelled() {
        let h = Histogram::new();
        h.observe(0.0004);
        h.observe(0.003);
        let mut out = String::new();
        render(
            &mut out,
            "hypdb_test_seconds",
            "Test histogram.",
            &[("endpoint=\"analyze\"", &h)],
        );
        assert!(out.contains("# TYPE hypdb_test_seconds histogram\n"));
        assert!(out.contains("hypdb_test_seconds_bucket{endpoint=\"analyze\",le=\"0.0005\"} 1\n"));
        assert!(out.contains("hypdb_test_seconds_bucket{endpoint=\"analyze\",le=\"0.005\"} 2\n"));
        assert!(out.contains("hypdb_test_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 2\n"));
        assert!(out.contains("hypdb_test_seconds_count{endpoint=\"analyze\"} 2\n"));
        // Cumulative: every later bucket ≥ earlier.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
