//! The obs clock: the one legal wall-clock source in the workspace.
//!
//! `hypdb-lint`'s `raw-instant-outside-obs` rule flags any
//! `std::time::Instant` / `SystemTime` construction outside this crate
//! (tests and benches excepted), so every duration the system measures
//! flows through [`Tick`] or [`Deadline`]. That funnel is what makes
//! the companion `wall-clock-in-output` rule auditable: timings exist,
//! but they all originate here, and the deterministic surfaces (report
//! bodies, EXPLAIN output) consume only the structural side of the
//! tracing context, never a `Tick` reading.

use std::time::{Duration, Instant};

/// A started stopwatch. Readings are monotonic durations, suitable for
/// histograms, spans, and trace dumps — never for report bytes.
#[derive(Debug, Clone, Copy)]
pub struct Tick(Instant);

impl Tick {
    /// Starts the stopwatch.
    pub fn now() -> Tick {
        // lint:allow(wall-clock-in-output) — this module IS the clock: readings feed histograms, spans, and stderr trace dumps; report bodies stay zeroed/structural by construction
        Tick(Instant::now())
    }

    /// Elapsed time since the tick.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed seconds as `f64` (histogram observation unit).
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed whole nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        let d = self.0.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// A point in the future; the serve layer's I/O budget type. Replaces
/// raw `Instant + timeout` arithmetic at call sites.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        // lint:allow(wall-clock-in-output) — deadlines are control plane: they bound I/O waits and never reach response bytes
        Deadline(Instant::now() + timeout)
    }

    /// Time left until the deadline (zero once passed).
    pub fn remaining(&self) -> Duration {
        // lint:allow(wall-clock-in-output) — control plane: compares against the I/O deadline, never serialized
        self.0.saturating_duration_since(Instant::now())
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_elapses_monotonically() {
        let t = Tick::now();
        let a = t.elapsed_nanos();
        let b = t.elapsed_nanos();
        assert!(b >= a);
        assert!(t.elapsed_secs() >= 0.0);
    }

    #[test]
    fn deadline_counts_down() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_secs(60));
        let past = Deadline::after(Duration::ZERO);
        assert_eq!(past.remaining(), Duration::ZERO);
        assert!(past.expired());
    }
}
