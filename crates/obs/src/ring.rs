//! The trace retention ring: finished span trees kept in memory for
//! post-hoc inspection.
//!
//! PR 8's spans evaporate when a request ends; the ring is the flight
//! recorder's answer — it retains the **last N** finished traces plus
//! the **K slowest** seen so far, so `GET /debug/traces` can show both
//! "what just happened" and "what has ever been slow" without any
//! external tooling. Retention is bounded and lock-brief: one mutex,
//! held only to rotate fixed-capacity buffers.
//!
//! Entries serialize through [`TraceEntry::to_json`], the **single**
//! trace serialization path — the `HYPDB_TRACE` stderr dump prints the
//! same JSON (see [`crate::trace::maybe_dump`]), so a trace read off
//! stderr and one read off `/debug/traces` are the same document.

use crate::ctx::TraceReport;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

/// One finished, retained trace: the request's sequence number and tag
/// (structural), its wall-clock total (timing), and the merged span
/// tree (structural paths/counts + timing nanos).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Request sequence number (0 when the producer has none, e.g. the
    /// offline CLI).
    pub seq: u64,
    /// What ran: the endpoint path or CLI invocation name.
    pub tag: String,
    /// Total wall-clock milliseconds (timing side).
    pub millis: f64,
    /// The merged span report.
    pub report: TraceReport,
}

impl TraceEntry {
    /// The one trace serialization: `{"seq","tag","ms","spans"}` with
    /// `spans` rendered by [`TraceReport::to_json_tree`]. Both the
    /// stderr dump and `/debug/traces` emit exactly this document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"tag\":{:?},\"ms\":{:.3},\"spans\":{}}}",
            self.seq,
            self.tag,
            self.millis,
            self.report.to_json_tree()
        );
        out
    }
}

struct RingInner {
    recent: VecDeque<TraceEntry>,
    /// Slowest-first, truncated to the slow capacity.
    slowest: Vec<TraceEntry>,
}

/// Bounded retention of finished traces: the last `capacity` entries
/// plus the `slow_capacity` slowest ever recorded. A `capacity` of 0
/// disables the ring entirely ([`TraceRing::is_enabled`]).
pub struct TraceRing {
    capacity: usize,
    slow_capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring retaining `capacity` recent traces and, separately, the
    /// `capacity.div_ceil(4)` slowest (at least 4 when enabled).
    pub fn new(capacity: usize) -> TraceRing {
        let slow_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(4).max(4)
        };
        TraceRing {
            capacity,
            slow_capacity,
            inner: Mutex::new(RingInner {
                recent: VecDeque::new(),
                slowest: Vec::new(),
            }),
        }
    }

    /// True when the ring retains anything (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The recent-trace capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The slowest-trace capacity.
    pub fn slow_capacity(&self) -> usize {
        self.slow_capacity
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        // Poisoning is ignored: the ring holds pure retention state.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Retains one finished trace: always enters the recent ring
    /// (evicting the oldest past capacity) and enters the slowest set
    /// when it beats the current floor.
    pub fn record(&self, entry: TraceEntry) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.recent.len() == self.capacity {
            inner.recent.pop_front();
        }
        let qualifies = inner.slowest.len() < self.slow_capacity
            || inner
                .slowest
                .last()
                .is_some_and(|floor| entry.millis > floor.millis);
        if qualifies {
            let at = inner.slowest.partition_point(|e| e.millis >= entry.millis);
            inner.slowest.insert(at, entry.clone());
            inner.slowest.truncate(self.slow_capacity);
        }
        inner.recent.push_back(entry);
    }

    /// The retained recent traces, newest first.
    pub fn recent(&self) -> Vec<TraceEntry> {
        self.lock().recent.iter().rev().cloned().collect()
    }

    /// The retained slowest traces, slowest first.
    pub fn slowest(&self) -> Vec<TraceEntry> {
        self.lock().slowest.clone()
    }

    /// The `GET /debug/traces` body:
    /// `{"capacity","retained","recent":[…],"slowest":[…]}` with every
    /// entry rendered by [`TraceEntry::to_json`].
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"capacity\":{},\"retained\":{},\"recent\":[",
            self.capacity,
            inner.recent.len()
        );
        for (i, entry) in inner.recent.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry.to_json());
        }
        out.push_str("],\"slowest\":[");
        for (i, entry) in inner.slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SpanReport;

    fn entry(seq: u64, millis: f64) -> TraceEntry {
        TraceEntry {
            seq,
            tag: "/analyze".into(),
            millis,
            report: TraceReport {
                spans: vec![SpanReport {
                    path: "request".into(),
                    count: 1,
                    nanos: (millis * 1e6) as u64,
                }],
            },
        }
    }

    #[test]
    fn recent_evicts_oldest_slowest_retains_peaks() {
        let ring = TraceRing::new(4);
        assert!(ring.is_enabled());
        // A slow outlier early, then a stream of fast requests that
        // pushes it out of the recent ring.
        ring.record(entry(1, 500.0));
        for seq in 2..=10 {
            ring.record(entry(seq, 1.0 + seq as f64));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].seq, 10, "newest first");
        assert!(
            recent.iter().all(|e| e.seq != 1),
            "outlier evicted from recent"
        );
        let slowest = ring.slowest();
        assert_eq!(slowest[0].seq, 1, "…but retained as the slowest");
        assert!(slowest.len() <= ring.slow_capacity());
        assert!(
            slowest.windows(2).all(|w| w[0].millis >= w[1].millis),
            "slowest is ordered"
        );
    }

    #[test]
    fn disabled_ring_retains_nothing() {
        let ring = TraceRing::new(0);
        assert!(!ring.is_enabled());
        ring.record(entry(1, 9.0));
        assert!(ring.recent().is_empty());
        assert!(ring.slowest().is_empty());
        assert_eq!(
            ring.to_json(),
            "{\"capacity\":0,\"retained\":0,\"recent\":[],\"slowest\":[]}"
        );
    }

    #[test]
    fn to_json_is_the_unified_trace_document() {
        let ring = TraceRing::new(2);
        ring.record(entry(7, 3.25));
        let json = ring.to_json();
        assert!(json.starts_with("{\"capacity\":2,\"retained\":1,\"recent\":["));
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("\"tag\":\"/analyze\""));
        assert!(json.contains("\"ms\":3.250"));
        assert!(json.contains("\"spans\":[{\"name\":\"request\""));
        // The entry renders identically standalone — one serialization
        // path for stderr dumps and the debug endpoint.
        assert!(json.contains(&entry(7, 3.25).to_json()));
    }

    #[test]
    fn concurrent_records_never_exceed_capacity() {
        let ring = std::sync::Arc::new(TraceRing::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(entry(t * 100 + i, (i % 17) as f64));
                    }
                });
            }
        });
        assert_eq!(ring.recent().len(), 8);
        let slowest = ring.slowest();
        assert!(slowest.len() <= ring.slow_capacity());
        assert!(slowest.windows(2).all(|w| w[0].millis >= w[1].millis));
        assert!(
            slowest.iter().all(|e| e.millis == 16.0),
            "under 400 records every retained slowest is a 16 ms peak"
        );
    }
}
