//! A sharded, mutex-protected hash map for read-mostly shared caches.
//!
//! `DataOracle` memoises contingency tables and entropies; under
//! parallel discovery many workers hit those caches at once. A single
//! `Mutex<HashMap>` serialises every lookup; a `ShardedMap` splits the
//! key space over independently locked shards so disjoint lookups
//! proceed concurrently. Values are cloned out of the shard (the
//! workspace stores `Arc`s and small floats), so no lock is held while
//! a caller computes.
//!
//! Writes are last-wins. For the deterministic caches this map serves,
//! two racing writers always compute the *same* value for a key (the
//! value is a pure function of the key and the underlying data), so
//! which insertion lands is unobservable.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::Mutex;

/// Default shard count (a power of two; enough to make contention on a
/// ≤ 64-way machine unlikely while keeping full scans cheap).
const DEFAULT_SHARDS: usize = 16;

/// A concurrent hash map sharded over independently locked segments.
pub struct ShardedMap<K, V, S = std::collections::hash_map::RandomState> {
    shards: Box<[Mutex<HashMap<K, V, S>>]>,
    hasher: S,
}

impl<K: Hash + Eq, V, S: BuildHasher + Default> Default for ShardedMap<K, V, S> {
    fn default() -> Self {
        ShardedMap::with_shards(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V, S: BuildHasher + Default> ShardedMap<K, V, S> {
    /// Creates a map with `shards` segments (rounded up to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMap {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::with_hasher(S::default())))
                .collect(),
            hasher: S::default(),
        }
    }

    fn shard<Q>(&self, key: &Q) -> &Mutex<HashMap<K, V, S>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = self.hasher.hash_one(key);
        // Use the high bits: FxHash-style multiply hashers concentrate
        // entropy there.
        let idx = (h >> 57) as usize % self.shards.len();
        &self.shards[idx]
    }

    fn lock<'a>(m: &'a Mutex<HashMap<K, V, S>>) -> std::sync::MutexGuard<'a, HashMap<K, V, S>> {
        // Poisoning is ignored: the maps hold pure cache entries that
        // stay structurally valid if a panic unwinds mid-update.
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clones the value stored under `key`, if any.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        Self::lock(self.shard(key)).get(key).cloned()
    }

    /// Inserts (or overwrites) `key → value`.
    pub fn insert(&self, key: K, value: V) {
        Self::lock(self.shard(&key)).insert(key, value);
    }

    /// Inserts `key → value` only when the key is absent, returning
    /// whether this call performed the insertion. Racing writers of the
    /// same key get exactly one `true` between them — the hook callers
    /// use to account a side effect (e.g. resident bytes) exactly once.
    pub fn insert_new(&self, key: K, value: V) -> bool {
        match Self::lock(self.shard(&key)).entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
                true
            }
        }
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| Self::lock(s).is_empty())
    }

    /// Removes every entry.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            Self::lock(s).clear();
        }
    }

    /// Folds over every entry, locking one shard at a time.
    ///
    /// The visit order is unspecified (shard then bucket order), so
    /// callers needing a deterministic outcome must reduce with an
    /// order-insensitive function — e.g. a minimum under a *total*
    /// order, as the oracle's smallest-superset search does.
    pub fn fold<A, F>(&self, init: A, mut f: F) -> A
    where
        F: FnMut(A, &K, &V) -> A,
    {
        let mut acc = init;
        for s in self.shards.iter() {
            let guard = Self::lock(s);
            for (k, v) in guard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Map = ShardedMap<Vec<u32>, u64>;

    #[test]
    fn insert_get_roundtrip() {
        let m = Map::default();
        assert!(m.is_empty());
        m.insert(vec![1, 2], 7);
        m.insert(vec![3], 9);
        assert_eq!(m.get(&vec![1, 2]), Some(7));
        assert_eq!(m.get(&vec![3]), Some(9));
        assert_eq!(m.get(&vec![9]), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_is_last_wins() {
        let m = Map::default();
        m.insert(vec![1], 1);
        m.insert(vec![1], 2);
        assert_eq!(m.get(&vec![1]), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_new_is_first_wins() {
        let m = Map::default();
        assert!(m.insert_new(vec![1], 1));
        assert!(!m.insert_new(vec![1], 2));
        assert_eq!(m.get(&vec![1]), Some(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fold_sees_every_entry() {
        let m = Map::default();
        for i in 0..100 {
            m.insert(vec![i], u64::from(i));
        }
        let sum = m.fold(0u64, |acc, _, &v| acc + v);
        assert_eq!(sum, (0..100).sum());
        // Order-insensitive min under a total order is deterministic.
        let min = m.fold(None::<(usize, Vec<u32>)>, |best, k, _| {
            let cand = (k.len(), k.clone());
            match best {
                Some(b) if b <= cand => Some(b),
                _ => Some(cand),
            }
        });
        assert_eq!(min, Some((1, vec![0])));
    }

    #[test]
    fn clear_empties_all_shards() {
        let m = Map::with_shards(4);
        for i in 0..64 {
            m.insert(vec![i], 0);
        }
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_mixed_access() {
        let m = Map::default();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500u32 {
                        m.insert(vec![t, i], u64::from(i));
                        assert_eq!(m.get(&vec![t, i]), Some(u64::from(i)));
                    }
                });
            }
        });
        assert_eq!(m.len(), 8 * 500);
    }

    #[test]
    fn single_shard_still_works() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(1);
        m.insert(5, 6);
        assert_eq!(m.get(&5), Some(6));
    }
}
