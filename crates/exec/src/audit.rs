//! Debug-only determinism auditor for the pool's fork-join maps.
//!
//! Set `HYPDB_AUDIT=1` and the parallel branch of
//! [`ThreadPool::map_indices`](crate::ThreadPool::map_indices) verifies
//! — with `debug_assert!`s, so release builds pay nothing — that its
//! merged output is *completion-order-independent*:
//!
//! * every index in `0..n` was computed by exactly one worker (no
//!   duplicate hand-outs from the atomic cursor, no gaps), and
//! * the XOR-combination of the per-chunk trace fingerprints equals the
//!   fingerprint of the full index range. XOR is commutative and
//!   associative, so the combined value is identical no matter which
//!   worker finished which chunk first — if the equality holds, the
//!   reassembled result vector is a pure function of the index set.
//!
//! Work items are generic (`R` has no `Hash` bound), so the auditor
//! fingerprints the *scheduling trace* — which indices each worker
//! computed — rather than result bytes. That is the exact degree of
//! freedom scheduling has: slot `i` of the merged output always holds
//! `f(i)`, so proving the index cover is schedule-independent proves
//! the merged output is too.
//!
//! The flag is read once per process (`OnceLock`); tests force it with
//! [`set_audit`] the same way the thread count can be overridden. When
//! the audit first observes an enabled check it announces itself once
//! on stderr (`determinism audit: active`) so CI can grep that the
//! hook actually ran.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Once, OnceLock};

use crate::seed;

/// Runtime override: 0 = none (use the environment), 1 = forced on,
/// 2 = forced off.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily parsed `HYPDB_AUDIT` (enabled on `1`/`true`/`on`).
static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();

/// One-time activation announcement.
static ANNOUNCE: Once = Once::new();

/// True when the determinism audit is active: `HYPDB_AUDIT=1` in the
/// environment, unless overridden by [`set_audit`].
pub fn enabled() -> bool {
    let on = match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_DEFAULT.get_or_init(|| {
            std::env::var("HYPDB_AUDIT")
                .map(|v| matches!(v.trim(), "1" | "true" | "on"))
                .unwrap_or(false)
        }),
    };
    if on {
        ANNOUNCE.call_once(|| {
            eprintln!("hypdb-exec: determinism audit: active (HYPDB_AUDIT)");
        });
    }
    on
}

/// Forces the audit on (`Some(true)`), off (`Some(false)`), or back to
/// the `HYPDB_AUDIT` default (`None`). Tests use this; the environment
/// is read only once, so flipping the variable mid-process has no
/// effect.
pub fn set_audit(force: Option<bool>) {
    let v = match force {
        Some(true) => 1,
        Some(false) => 2,
        None => 0,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Order-independent fingerprint of a set of indices: the XOR of each
/// index's SplitMix64 avalanche. Permuting or re-partitioning the
/// indices never changes the value; adding, dropping, or duplicating
/// one almost surely does (a duplicate cancels itself out of the XOR —
/// which is why [`CoverAudit`] also tracks per-index `seen` bits).
pub fn trace_fingerprint(indices: impl IntoIterator<Item = usize>) -> u64 {
    indices
        .into_iter()
        .fold(0u64, |acc, i| acc ^ seed::mix(AUDIT_STREAM, i as u64))
}

/// Dedicated master seed for audit fingerprints, so they can never
/// collide structurally with the workspace's RNG seed derivation.
const AUDIT_STREAM: u64 = 0x4155_4449_5421; // "AUDIT!"

/// Verifies one fork-join's scheduling trace (see the module docs).
///
/// The pool feeds it each worker's `(index, …)` bucket in join order;
/// [`CoverAudit::finish`] then `debug_assert!`s the exact cover and the
/// fingerprint equality. All state is plain `Vec`/`u64` arithmetic —
/// the auditor itself is deterministic.
pub struct CoverAudit {
    n: usize,
    seen: Vec<bool>,
    duplicate: Option<usize>,
    combined: u64,
}

impl CoverAudit {
    /// An auditor for a fan-out over `0..n`.
    pub fn new(n: usize) -> CoverAudit {
        CoverAudit {
            n,
            seen: vec![false; n],
            duplicate: None,
            combined: 0,
        }
    }

    /// Records one worker's chunk: the indices it pulled off the
    /// cursor, in the order it computed them. The chunk's fingerprint
    /// is XOR-combined, so the fold order of chunks is immaterial.
    pub fn record_chunk(&mut self, indices: impl IntoIterator<Item = usize> + Clone) {
        for i in indices.clone() {
            if self.n <= i || std::mem::replace(&mut self.seen[i], true) {
                self.duplicate.get_or_insert(i);
            }
        }
        self.combined ^= trace_fingerprint(indices);
    }

    /// Asserts (debug builds) the trace covers `0..n` exactly once and
    /// the order-independent fingerprints agree.
    pub fn finish(self) {
        debug_assert!(
            self.duplicate.is_none(),
            "determinism audit: index {} computed more than once (or out of range)",
            self.duplicate.unwrap_or(0),
        );
        let missing = self.seen.iter().position(|&s| !s);
        debug_assert!(
            missing.is_none(),
            "determinism audit: index {} never computed",
            missing.unwrap_or(0),
        );
        let expected = trace_fingerprint(0..self.n);
        debug_assert!(
            self.combined == expected,
            "determinism audit: combined chunk fingerprint {:#018x} != expected {:#018x} \
             — the merged output is not a pure function of the index set",
            self.combined,
            expected,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_partition_and_order_independent() {
        let whole = trace_fingerprint(0..10);
        assert_eq!(trace_fingerprint((0..10).rev()), whole);
        let mut split = CoverAudit::new(10);
        split.record_chunk([9, 3, 0]);
        split.record_chunk([4, 1, 7, 2]);
        split.record_chunk([5, 6, 8]);
        assert_eq!(split.combined, whole);
        split.finish();
    }

    #[test]
    fn empty_cover_passes() {
        CoverAudit::new(0).finish();
    }

    #[test]
    fn duplicate_and_missing_are_detected() {
        let mut dup = CoverAudit::new(3);
        dup.record_chunk([0, 1, 1, 2]);
        assert_eq!(dup.duplicate, Some(1));

        let mut gap = CoverAudit::new(3);
        gap.record_chunk([0, 2]);
        assert_eq!(gap.seen, vec![true, false, true]);
        assert_ne!(gap.combined, trace_fingerprint(0..3));
    }

    #[test]
    fn out_of_range_index_is_flagged() {
        let mut audit = CoverAudit::new(2);
        audit.record_chunk([0, 5]);
        assert_eq!(audit.duplicate, Some(5));
    }

    #[test]
    fn override_controls_enabled_and_audits_fanout() {
        // The only test in the crate that mutates the process-wide
        // override (keeping it here avoids races between parallel
        // tests). With the audit forced on, a real multi-worker
        // fan-out must still produce ordered results — i.e. run the
        // assert path in `map_indices` and pass it.
        set_audit(Some(true));
        assert!(enabled());
        let out = crate::ThreadPool::new(4).map_indices(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        set_audit(Some(false));
        assert!(!enabled());
        set_audit(None);
    }
}
