//! The scoped worker pool.
//!
//! [`ThreadPool`] is a *parallelism budget*, not a set of persistent
//! threads: each `parallel_map` call spawns scoped workers
//! (`std::thread::scope`) that pull work items off a shared atomic
//! cursor and are joined before the call returns. Scoped spawning keeps
//! the crate std-only and `unsafe`-free (borrowed closures need no
//! `'static` laundering), and the spawn cost — tens of microseconds —
//! is negligible against the millisecond-scale chunks the workspace
//! feeds it (permutation batches, independence tests, per-context
//! pipeline runs).
//!
//! Guarantees:
//!
//! * **Determinism** — results are returned in item order regardless of
//!   which worker computed what. Combined with per-chunk seeding
//!   ([`crate::seed`]) this makes every caller's output independent of
//!   the thread count.
//! * **Panic propagation** — a panicking work item aborts the whole
//!   call and re-raises the payload on the caller's thread.
//! * **No nested oversubscription** — a `parallel_map` issued from
//!   inside a pool worker runs inline (depth-1 parallelism): the outer
//!   fan-out already owns the budget, so e.g. per-context pipeline
//!   workers run their MIT permutation chunks sequentially instead of
//!   spawning `threads²` threads.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override of the global thread count (0 = no override).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily computed default: `HYPDB_THREADS` or `available_parallelism`.
static GLOBAL_DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True on threads spawned by a pool (see "No nested
    /// oversubscription" above).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads() -> Option<usize> {
    std::env::var("HYPDB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide worker count: the `HYPDB_THREADS` environment
/// variable if set, otherwise `std::thread::available_parallelism`,
/// unless overridden by [`set_global_threads`]. Always ≥ 1.
pub fn global_threads() -> usize {
    let over = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    *GLOBAL_DEFAULT.get_or_init(|| {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// Overrides the process-wide worker count at runtime (benchmarks use
/// this to measure 1-thread vs N-thread wall clock in one process; the
/// determinism tests use it to pin thread counts). `0` removes the
/// override, restoring the `HYPDB_THREADS`/`available_parallelism`
/// default. Changing the count never changes any result — only how
/// fast it arrives.
pub fn set_global_threads(threads: usize) {
    GLOBAL_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Runs `f` with the current thread marked as a pool worker, so any
/// [`ThreadPool`] fan-out issued inside `f` runs inline (depth-1
/// parallelism), exactly as if `f` were a work item of an outer
/// `parallel_map`. The previous mark is restored on exit (panics
/// included — the mark lives in a thread-local that the next guarded
/// call resets), so nesting guards is harmless.
///
/// This is the admission-control lever for long-lived request workers
/// (e.g. `hypdb-serve`): a server that runs each in-flight request
/// under the guard owns its parallelism budget at the *request* level —
/// concurrent requests spread across worker threads while each
/// request's internal fan-outs (per-context analysis, MIT permutation
/// chunks, shard scans) stay sequential instead of multiplying into
/// `workers × threads` threads. Results never change: the guard only
/// collapses *where* work runs, and every fan-out in the workspace is
/// deterministic at any thread count, including 1.
pub fn with_fanout_guard<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

/// A parallelism budget for deterministic fork-join maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that uses up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The pool sized by the current global setting
    /// ([`global_threads`]).
    pub fn current() -> Self {
        ThreadPool::new(global_threads())
    }

    /// A single-threaded pool (always runs inline).
    pub fn sequential() -> Self {
        ThreadPool::new(1)
    }

    /// Maximum number of workers this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to `0..n` and returns the results in index order.
    ///
    /// Work is distributed dynamically (an atomic cursor), so
    /// heterogeneous item costs balance across workers; the output
    /// order is by index regardless of scheduling. Runs inline when the
    /// pool has one thread, `n ≤ 1`, or the caller is itself a pool
    /// worker. If any `f` panics, one panic payload is re-raised on the
    /// caller's thread after all workers have stopped.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 || IN_WORKER.with(Cell::get) {
            return (0..n).map(|i| hypdb_obs::item(i, || f(i))).collect();
        }

        // Tracing context propagation: workers inherit the submitting
        // thread's span path, and every item runs under a `#index`
        // frame — index-based, so span paths and EXPLAIN coordinates
        // are identical at any worker count (inline path included).
        let ctx = hypdb_obs::capture();
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let ctx = &ctx;
        let cursor = &cursor;
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        IN_WORKER.with(|w| w.set(true));
                        hypdb_obs::install(ctx, || {
                            let mut local: Vec<(usize, R)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, hypdb_obs::item(i, || f(i))));
                            }
                            local
                        })
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => buckets.push(local),
                    Err(payload) => panic_payload = Some(payload),
                }
            }
        });
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }

        // Debug-only determinism audit (`HYPDB_AUDIT=1`): the cursor
        // must have handed out exactly `0..n`, once each, and the
        // XOR-combined per-worker trace fingerprints must match the
        // full range — proving the merge below is independent of which
        // worker completed which chunk (see [`crate::audit`]).
        if crate::audit::enabled() {
            let mut cover = crate::audit::CoverAudit::new(n);
            for bucket in &buckets {
                cover.record_chunk(bucket.iter().map(|(i, _)| *i));
            }
            cover.finish();
        }

        // Reassemble in index order (scheduling-independent).
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// Applies `f` to every element of `items` (with its index) and
    /// returns the results in item order. See [`ThreadPool::map_indices`]
    /// for the scheduling and panic contract.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// Splits `0..n` into fixed-size chunks (`chunk` items each, last
    /// one short) and maps each *chunk range* through `f`, returning the
    /// partial results in chunk order for the caller to reduce.
    ///
    /// This is the chunked-reduce building block: the chunk layout is a
    /// pure function of `(n, chunk)` — never of the thread count — so a
    /// caller that folds the returned partials in order (or merges them
    /// with exact, commutative operations such as `u64` sums) is
    /// deterministic at any parallelism level.
    pub fn map_chunks<A, F>(&self, n: usize, chunk: usize, f: F) -> Vec<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks = n.div_ceil(chunk);
        self.map_indices(chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            f(lo..hi)
        })
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> [ThreadPool; 4] {
        [
            ThreadPool::sequential(),
            ThreadPool::new(2),
            ThreadPool::new(3),
            ThreadPool::new(8),
        ]
    }

    #[test]
    fn map_indices_preserves_order() {
        for pool in pools() {
            let out = pool.map_indices(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for pool in pools() {
            assert_eq!(pool.parallel_map(&items, |_, &x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn map_chunks_layout_is_thread_independent() {
        for pool in pools() {
            let ranges = pool.map_chunks(10, 4, |r| (r.start, r.end));
            assert_eq!(ranges, vec![(0, 4), (4, 8), (8, 10)]);
        }
    }

    #[test]
    fn chunked_sum_is_exact() {
        let n = 100_000usize;
        let expect: u64 = (0..n as u64).sum();
        for pool in pools() {
            let partials = pool.map_chunks(n, 4096, |r| r.map(|i| i as u64).sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), expect);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.map_indices(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indices(1, |i| i + 7), vec![7]);
        assert!(pool.map_chunks(0, 8, |r| r.len()).is_empty());
    }

    #[test]
    fn panics_propagate() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.map_indices(64, |i| {
                if i == 33 {
                    panic!("worker panic at {i}");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must cross the pool boundary");
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = ThreadPool::new(4);
        let out = pool.map_indices(8, |i| {
            // The inner map must not deadlock or oversubscribe; it runs
            // inline on the worker and still returns ordered results.
            let inner = ThreadPool::new(4).map_indices(5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fanout_guard_forces_inline_runs() {
        let pool = ThreadPool::new(4);
        let out = with_fanout_guard(|| pool.map_indices(6, |i| i * 2));
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        // The mark is restored after the guard: this fan-out may spawn.
        assert_eq!(pool.map_indices(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn fanout_guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| with_fanout_guard(|| panic!("boom")));
        assert!(caught.is_err());
        // A subsequent unguarded fan-out still parallelises correctly.
        let out = ThreadPool::new(4).map_indices(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn global_threads_override_roundtrip() {
        let before = global_threads();
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(ThreadPool::current().threads(), 3);
        set_global_threads(0);
        assert_eq!(global_threads(), before);
    }

    #[test]
    fn pool_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn load_imbalance_still_ordered() {
        // Front-loaded costs exercise the dynamic cursor.
        let pool = ThreadPool::new(4);
        let out = pool.map_indices(32, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
