//! Deterministic parallel execution for the HypDB workspace.
//!
//! The paper's bottleneck is conditional-independence testing: MIT/HyMIT
//! runs thousands of Patefield permutations per test and CD Phase I runs
//! one test per candidate covariate (§5–§6, Table 1). This crate is the
//! std-only lever that lets every layer above spread that work across
//! cores **without changing a single output bit**:
//!
//! * [`pool`] — a scoped worker pool ([`ThreadPool`]) with
//!   `parallel_map` / `map_chunks` primitives, panic propagation, and a
//!   global thread count sized from `std::thread::available_parallelism`
//!   and overridable via the `HYPDB_THREADS` environment variable or
//!   [`set_global_threads`].
//! * [`seed`] — SplitMix64-based derivation of independent per-chunk RNG
//!   seeds from a master seed, so Monte-Carlo loops can be split into
//!   fixed chunks whose layout depends only on the problem size — never
//!   on the thread count.
//! * [`shard`] — a sharded mutex-protected hash map for the read-mostly
//!   caches (contingency tables, entropies) that independence-test
//!   workers share.
//! * [`audit`] — a debug-only determinism auditor (`HYPDB_AUDIT=1`)
//!   that `debug_assert!`s each fork-join's merged output is
//!   completion-order-independent, by checking the scheduling trace
//!   covers every index exactly once with an order-insensitive
//!   (XOR-combined) fingerprint.
//!
//! **The determinism contract.** Callers must make the work
//! decomposition a function of the *problem* (item count, fixed chunk
//! sizes, per-chunk seeds) and combine partial results in chunk order
//! (or with exact, order-insensitive operations such as integer sums).
//! The pool then guarantees the same results at any thread count,
//! including 1 — the scheduling only decides *who* computes each chunk,
//! never *what* is computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod pool;
pub mod seed;
pub mod shard;

pub use pool::{global_threads, set_global_threads, with_fanout_guard, ThreadPool};
pub use shard::ShardedMap;
