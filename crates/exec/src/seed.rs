//! Deterministic seed derivation for chunked Monte-Carlo loops.
//!
//! A permutation test that draws from one sequential RNG stream cannot
//! be parallelised without changing its results, because the stream
//! position each permutation reads depends on everything drawn before
//! it. The fix used throughout this workspace: draw **one** master seed
//! from the caller's RNG, split the m permutations into fixed-size
//! chunks, and give chunk `i` its own generator seeded with
//! `mix(master, i)`. The chunk layout and all seeds are pure functions
//! of `(master, m)` — never of the thread count — so any scheduling of
//! the chunks produces bit-identical statistics.
//!
//! `mix` is a SplitMix64-style avalanche over the XOR of the master
//! seed and a golden-ratio multiple of the stream index — the same
//! construction the vendored `rand` uses to expand `seed_from_u64`, so
//! derived streams are as decorrelated as independently seeded ones.

/// Golden-ratio increment (SplitMix64's gamma).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `index` from `master`. Distinct indices
/// give decorrelated streams; the same `(master, index)` pair always
/// gives the same seed.
#[inline]
pub fn mix(master: u64, index: u64) -> u64 {
    avalanche(master ^ index.wrapping_add(1).wrapping_mul(GAMMA))
}

/// Folds a slice of labels into a single seed — used to derive a
/// *statement-local* RNG seed from an oracle's base seed plus the
/// variables of an independence statement, so every test's outcome is a
/// pure function of (data, config, statement) no matter which worker
/// thread runs it, in which order.
pub fn mix_all(master: u64, labels: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = avalanche(master.wrapping_add(GAMMA));
    for l in labels {
        acc = mix(acc, l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(42, 7), mix(42, 7));
        assert_eq!(mix_all(1, [2, 3, 4]), mix_all(1, [2, 3, 4]));
    }

    #[test]
    fn distinct_indices_differ() {
        let seeds: Vec<u64> = (0..1000).map(|i| mix(0xDEAD_BEEF, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "no collisions in 1000 streams");
    }

    #[test]
    fn distinct_masters_differ() {
        assert_ne!(mix(1, 0), mix(2, 0));
        assert_ne!(mix_all(1, [5]), mix_all(2, [5]));
    }

    #[test]
    fn label_order_matters() {
        assert_ne!(mix_all(9, [1, 2]), mix_all(9, [2, 1]));
    }

    #[test]
    fn index_zero_is_not_identity() {
        // Guard against the classic `master ^ 0 = master` mistake.
        assert_ne!(mix(0x1234, 0), 0x1234);
        assert_ne!(mix(0, 0), 0);
    }

    #[test]
    fn bits_look_balanced() {
        // Cheap avalanche sanity check: over many derived seeds, each
        // bit position should be set roughly half the time.
        let n = 4096u64;
        for bit in [0, 17, 31, 48, 63] {
            let ones = (0..n).filter(|&i| (mix(99, i) >> bit) & 1 == 1).count();
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {bit}: {frac}");
        }
    }
}
