//! Random variates beyond what the offline `rand` crate offers:
//! gamma/Dirichlet (for random CPT generation), hypergeometric (the
//! per-cell conditional of Patefield's algorithm), categorical sampling,
//! and weighted index sampling without replacement (for MIT's group
//! sampling, §5).

use rand::Rng;

/// Samples `Gamma(shape, 1)` by Marsaglia–Tsang (2000); `shape > 0`.
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: X_{a} = X_{a+1} * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (keeps us off rand_distr).
        let (u1, u2): (f64, f64) = (rng.gen_range(f64::MIN_POSITIVE..1.0), rng.gen());
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples a point of the simplex from `Dirichlet(alpha, …, alpha)` with
/// `k` components.
pub fn dirichlet_symmetric(rng: &mut impl Rng, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet needs at least one component");
    let mut v: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate draw; fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for x in &mut v {
        *x /= sum;
    }
    v
}

/// Samples an index from an (unnormalised) weight vector by CDF
/// inversion. Panics if all weights are zero/negative.
pub fn categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    assert!(total > 0.0, "categorical needs a positive total weight");
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            if u < w {
                return i;
            }
            u -= w;
        }
    }
    // Floating-point tail: return the last positive-weight index.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("positive weight exists")
}

/// Hypergeometric sample: number of "good" items among `ndraw` draws
/// without replacement from `ngood` good and `nbad` bad items.
///
/// Implemented by inverse-CDF with the pmf ratio recurrence anchored at
/// the distribution's **mode** (weight 1), scanning outwards in both
/// directions. Anchoring at the mode avoids the tail underflow a scan
/// from the support's lower bound suffers at OLAP-sized counts, while
/// staying exact: only relative weights matter.
pub fn hypergeometric(rng: &mut impl Rng, ngood: u64, nbad: u64, ndraw: u64) -> u64 {
    let total = ngood + nbad;
    assert!(ndraw <= total, "cannot draw more than the population");
    if ndraw == 0 || ngood == 0 {
        return 0;
    }
    if nbad == 0 {
        return ndraw;
    }
    let x_min = ndraw.saturating_sub(nbad);
    let x_max = ngood.min(ndraw);
    if x_min == x_max {
        return x_min;
    }
    // Mode of the hypergeometric: floor((ndraw+1)(ngood+1)/(total+2)).
    let mode = (((ndraw + 1) as u128 * (ngood + 1) as u128) / (total + 2) as u128) as u64;
    let mode = mode.clamp(x_min, x_max);

    // P(x+1)/P(x) = (ngood−x)(ndraw−x) / ((x+1)(nbad−ndraw+x+1)).
    let ratio_up = |x: u64| -> f64 {
        ((ngood - x) as f64 * (ndraw - x) as f64) / ((x + 1) as f64 * (nbad + x + 1 - ndraw) as f64)
    };
    const TAIL_EPS: f64 = 1e-16;

    // Pass 1: total weight relative to w(mode) = 1.
    let mut total_w = 1.0f64;
    {
        let mut w = 1.0;
        let mut x = mode;
        while x < x_max {
            w *= ratio_up(x);
            total_w += w;
            x += 1;
            if w < TAIL_EPS * total_w {
                break;
            }
        }
        let mut w = 1.0;
        let mut x = mode;
        while x > x_min {
            w /= ratio_up(x - 1);
            total_w += w;
            x -= 1;
            if w < TAIL_EPS * total_w {
                break;
            }
        }
    }

    // Pass 2: walk the same order (mode, up…, down…) until the target
    // mass is covered.
    let target = rng.gen::<f64>() * total_w;
    let mut cum = 1.0f64;
    if cum >= target {
        return mode;
    }
    let mut w = 1.0;
    let mut x = mode;
    while x < x_max {
        w *= ratio_up(x);
        x += 1;
        cum += w;
        if cum >= target {
            return x;
        }
        if w < TAIL_EPS * total_w {
            break;
        }
    }
    let mut w = 1.0;
    let mut x = mode;
    while x > x_min {
        w /= ratio_up(x - 1);
        x -= 1;
        cum += w;
        if cum >= target {
            return x;
        }
        if w < TAIL_EPS * total_w {
            break;
        }
    }
    // Floating-point remainder: return the mode (center of mass).
    mode
}

/// Weighted sampling of `k` distinct indices without replacement
/// (Efraimidis–Spirakis exponential-jump-free variant: key = U^(1/w)).
/// Zero-weight items are never selected; if fewer than `k` items have
/// positive weight, all of them are returned.
pub fn weighted_indices_without_replacement(
    rng: &mut impl Rng,
    weights: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0.0 && w.is_finite())
        .map(|(i, &w)| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.powf(1.0 / w), i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    keyed.truncate(k);
    let mut out: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
    out.sort_unstable();
    out
}

/// Fisher–Yates shuffle of a slice (used by the naive permutation-test
/// baseline).
pub fn shuffle<T>(rng: &mut impl Rng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFEED)
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        for &shape in &[0.5, 1.0, 3.0, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng();
        for &alpha in &[0.3, 1.0, 5.0] {
            let v = dirichlet_symmetric(&mut r, alpha, 7);
            assert_eq!(v.len(), 7);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let w = [0.0, 1.0, 3.0];
        let mut hits = [0usize; 3];
        for _ in 0..12_000 {
            hits[categorical(&mut r, &w)] += 1;
        }
        assert_eq!(hits[0], 0);
        let ratio = hits[2] as f64 / hits[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn hypergeometric_bounds_and_mean() {
        let mut r = rng();
        let (ngood, nbad, ndraw) = (30u64, 70u64, 25u64);
        let expect = ndraw as f64 * ngood as f64 / (ngood + nbad) as f64;
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = hypergeometric(&mut r, ngood, nbad, ndraw);
            assert!(x <= ndraw.min(ngood));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn hypergeometric_degenerate_cases() {
        let mut r = rng();
        assert_eq!(hypergeometric(&mut r, 0, 10, 5), 0);
        assert_eq!(hypergeometric(&mut r, 10, 0, 5), 5);
        assert_eq!(hypergeometric(&mut r, 10, 10, 0), 0);
        // Forced: draw 15 from 10 good + 5 bad => at least 10 good... but
        // x_min = 15-5 = 10 = x_max.
        assert_eq!(hypergeometric(&mut r, 10, 5, 15), 10);
    }

    #[test]
    fn weighted_wor_selects_positive_only() {
        let mut r = rng();
        let w = [0.0, 2.0, 0.0, 1.0, 4.0];
        let sel = weighted_indices_without_replacement(&mut r, &w, 10);
        assert_eq!(sel, vec![1, 3, 4]); // all positive-weight, sorted
        let sel2 = weighted_indices_without_replacement(&mut r, &w, 2);
        assert_eq!(sel2.len(), 2);
        assert!(sel2.iter().all(|&i| w[i] > 0.0));
    }

    #[test]
    fn weighted_wor_prefers_heavy() {
        let mut r = rng();
        let w = [1.0, 100.0, 1.0];
        let mut hits = 0;
        for _ in 0..500 {
            let sel = weighted_indices_without_replacement(&mut r, &w, 1);
            if sel == vec![1] {
                hits += 1;
            }
        }
        assert!(hits > 450, "heavy index selected {hits}/500");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut xs: Vec<u32> = (0..100).collect();
        shuffle(&mut r, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }
}
