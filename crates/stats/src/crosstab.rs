//! Two-way contingency tables ("cross tabs") — the tabular summaries the
//! MIT permutation test samples from (§5).

use crate::entropy::mi_from_matrix;
use serde::{Deserialize, Serialize};

/// A dense `r×c` contingency table of counts, row-major.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossTab {
    r: usize,
    c: usize,
    counts: Vec<u64>,
}

impl CrossTab {
    /// Builds from a row-major count matrix. Panics if the vector length
    /// is not `r*c`.
    pub fn new(r: usize, c: usize, counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), r * c, "count matrix must be r*c");
        CrossTab { r, c, counts }
    }

    /// All-zero table.
    pub fn zeros(r: usize, c: usize) -> Self {
        CrossTab {
            r,
            c,
            counts: vec![0; r * c],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.r
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.c
    }

    /// Immutable view of the counts (row-major).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cell accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.c + j]
    }

    /// Increments a cell.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, delta: u64) {
        self.counts[i * self.c + j] += delta;
    }

    /// Row sums.
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.r)
            .map(|i| self.counts[i * self.c..(i + 1) * self.c].iter().sum())
            .collect()
    }

    /// Column sums.
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.c)
            .map(|j| (0..self.r).map(|i| self.counts[i * self.c + j]).sum())
            .collect()
    }

    /// Grand total.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Plug-in mutual information (nats) between the row and column
    /// variables.
    pub fn mutual_information(&self) -> f64 {
        mi_from_matrix(&self.counts, self.r, self.c)
    }

    /// G statistic: `G = 2 n Î(X;Y)` (nats-based log-likelihood ratio).
    pub fn g_statistic(&self) -> f64 {
        2.0 * self.total() as f64 * self.mutual_information()
    }

    /// Pearson's χ² statistic `Σ (O−E)²/E` over cells with `E > 0`.
    #[allow(clippy::needless_range_loop)] // indexes three arrays in lockstep
    pub fn pearson_statistic(&self) -> f64 {
        let rows = self.row_sums();
        let cols = self.col_sums();
        let n = self.total() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mut stat = 0.0;
        for i in 0..self.r {
            for j in 0..self.c {
                let e = rows[i] as f64 * cols[j] as f64 / n;
                if e > 0.0 {
                    let o = self.get(i, j) as f64;
                    stat += (o - e) * (o - e) / e;
                }
            }
        }
        stat
    }

    /// Removes all-zero rows and columns, producing a compacted table.
    /// Patefield's sampler requires strictly positive marginals; category
    /// codes are global dictionary codes, so sub-populations routinely
    /// have empty rows/columns.
    pub fn compact(&self) -> CrossTab {
        let rows = self.row_sums();
        let cols = self.col_sums();
        let keep_r: Vec<usize> = (0..self.r).filter(|&i| rows[i] > 0).collect();
        let keep_c: Vec<usize> = (0..self.c).filter(|&j| cols[j] > 0).collect();
        if keep_r.len() == self.r && keep_c.len() == self.c {
            return self.clone();
        }
        let mut counts = Vec::with_capacity(keep_r.len() * keep_c.len());
        for &i in &keep_r {
            for &j in &keep_c {
                counts.push(self.get(i, j));
            }
        }
        CrossTab::new(keep_r.len(), keep_c.len(), counts)
    }

    /// Degrees of freedom of the independence test on this table,
    /// `(r'−1)(c'−1)` computed on non-empty rows/columns.
    pub fn dof(&self) -> f64 {
        let r = self.row_sums().iter().filter(|&&v| v > 0).count();
        let c = self.col_sums().iter().filter(|&&v| v > 0).count();
        (r.saturating_sub(1) * c.saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tab() -> CrossTab {
        CrossTab::new(2, 3, vec![10, 0, 5, 0, 20, 5])
    }

    #[test]
    fn sums_and_total() {
        let t = tab();
        assert_eq!(t.row_sums(), vec![15, 25]);
        assert_eq!(t.col_sums(), vec![10, 20, 10]);
        assert_eq!(t.total(), 40);
        assert_eq!(t.get(1, 1), 20);
    }

    #[test]
    fn g_statistic_consistent_with_mi() {
        let t = tab();
        assert!((t.g_statistic() - 2.0 * 40.0 * t.mutual_information()).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_on_independent_table() {
        let t = CrossTab::new(2, 2, vec![10, 30, 10, 30]);
        assert!(t.pearson_statistic().abs() < 1e-9);
        assert!(t.mutual_information().abs() < 1e-12);
    }

    #[test]
    fn compact_drops_empty_lines() {
        let t = CrossTab::new(3, 3, vec![1, 0, 2, 0, 0, 0, 3, 0, 4]);
        let s = t.compact();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.counts(), &[1, 2, 3, 4]);
        // MI is invariant under dropping empty categories.
        assert!((s.mutual_information() - t.mutual_information()).abs() < 1e-12);
    }

    #[test]
    fn compact_noop_when_full() {
        let t = CrossTab::new(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(t.compact(), t);
    }

    #[test]
    fn dof_counts_nonempty() {
        let t = CrossTab::new(3, 3, vec![1, 0, 2, 0, 0, 0, 3, 0, 4]);
        assert_eq!(t.dof(), 1.0); // 2x2 effective
        assert_eq!(CrossTab::new(2, 3, vec![1, 1, 1, 1, 1, 1]).dof(), 2.0);
    }

    #[test]
    #[should_panic(expected = "count matrix must be r*c")]
    fn bad_shape_panics() {
        CrossTab::new(2, 2, vec![1, 2, 3]);
    }
}
