//! Borda-count rank aggregation (Lin 2010), used by Alg 3 to merge the
//! two fine-grained-explanation rankings (contribution to `I(T;Z)` and
//! to `I(Y;Z)`) into one list.

/// Aggregates several rankings of the same `n` items by Borda count.
///
/// Each ranking is a list of scores (higher = better); items are awarded
/// `n − rank` points per ranking (ties share the average of the tied
/// positions), and the aggregate orders items by total points,
/// descending. Returns the item indices in aggregated order.
pub fn borda_aggregate(rankings: &[Vec<f64>]) -> Vec<usize> {
    let n = match rankings.first() {
        Some(r) => r.len(),
        None => return Vec::new(),
    };
    assert!(
        rankings.iter().all(|r| r.len() == n),
        "all rankings must rank the same items"
    );
    let mut points = vec![0.0f64; n];
    for scores in rankings {
        for (item, p) in rank_points(scores) {
            points[item] += p;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        points[b]
            .partial_cmp(&points[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Borda points for one ranking: item with the highest score receives
/// `n−1` points, next `n−2`, …; tied scores share the average points of
/// the positions they span.
fn rank_points(scores: &[f64]) -> Vec<(usize, f64)> {
    let n = scores.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Positions i..=j share average points.
        let avg: f64 = (i..=j).map(|p| (n - 1 - p) as f64).sum::<f64>() / (j - i + 1) as f64;
        for &item in &idx[i..=j] {
            out.push((item, avg));
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ranking_is_identity_order() {
        let order = borda_aggregate(&[vec![0.1, 0.9, 0.5]]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn agreement_reinforces() {
        let order = borda_aggregate(&[vec![3.0, 2.0, 1.0], vec![30.0, 20.0, 10.0]]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn disagreement_averages() {
        // Item 0 is 1st/3rd, item 2 is 3rd/1st, item 1 is 2nd/2nd.
        // Points: item0 = 2+0 = 2, item1 = 1+1 = 2, item2 = 0+2 = 2.
        // Full tie broken by index.
        let order = borda_aggregate(&[vec![3.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn clear_winner_beats_split() {
        // Item 1 is 1st in both; 0 and 2 split the rest.
        let order = borda_aggregate(&[vec![2.0, 3.0, 1.0], vec![1.0, 3.0, 2.0]]);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn ties_share_points() {
        let pts = rank_points(&[1.0, 1.0, 0.0]);
        // Items 0,1 tie for positions 0,1 => (2+1)/2 = 1.5 each.
        let mut m = std::collections::HashMap::new();
        for (i, p) in pts {
            m.insert(i, p);
        }
        assert_eq!(m[&0], 1.5);
        assert_eq!(m[&1], 1.5);
        assert_eq!(m[&2], 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(borda_aggregate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "all rankings must rank the same items")]
    fn mismatched_lengths_panic() {
        borda_aggregate(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
