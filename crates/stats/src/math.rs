//! Special functions implemented from scratch: ln-gamma, regularised
//! incomplete gamma, the χ² survival function, and the normal
//! distribution. Accuracy targets (~1e-10 for gamma-family, ~1e-7 for
//! erf) are far below the Monte-Carlo noise floor of the permutation
//! tests they support; unit tests pin reference values from standard
//! tables.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Valid for `x > 0`; relative error below 1e-13 on that range.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula to stay in the stable region.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!`, exact-table backed for small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    // First values computed exactly; beyond that use ln_gamma(n+1).
    const TABLE_LEN: usize = 128;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a+1`, continued fraction otherwise
/// (Numerical Recipes `gammp`/`gammq` construction).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a>0, x>=0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (ln_pre + sum.ln()).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let ln_pre = a * x.ln() - x - ln_gamma(a);
    // Lentz's algorithm for the continued fraction.
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (ln_pre.exp()) * h
}

/// Survival function of the χ² distribution with `df` degrees of
/// freedom: `P[X ≥ x]`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if df <= 0.0 {
        // Degenerate test (no degrees of freedom): any statistic is
        // "expected", report p = 1.
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0).clamp(0.0, 1.0)
}

/// CDF of the χ² distribution with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    1.0 - chi2_sf(x, df)
}

/// Error function, Abramowitz & Stegun 7.1.26-style rational
/// approximation refined with one extra term (|err| < 1.2e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (Acklam's rational approximation,
/// |relative err| < 1.15e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile domain: p in [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let q = p.min(1.0 - p);
    let x = if q < P_LOW {
        let u = (-2.0 * q.ln()).sqrt();
        (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    } else {
        let u = q - 0.5;
        let r = u * u;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    };
    // `x` is the quantile of min(p, 1-p) — negative by construction.
    if p < 0.5 {
        x
    } else {
        -x
    }
}

/// `x * ln(x)` with the measure-theoretic convention `0 ln 0 = 0`.
#[inline]
pub fn xlnx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_reference_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-11);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-11);
        close(ln_gamma(10.5), 1_133_278.388_948_441_4_f64.ln(), 1e-9);
    }

    #[test]
    fn ln_factorial_matches_gamma() {
        for n in 0..200u64 {
            close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-8);
        }
        assert_eq!(ln_factorial(0), 0.0);
        close(ln_factorial(5), 120.0f64.ln(), 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (20.0, 15.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn chi2_reference_values() {
        // Classic table values: P[X >= x] for df degrees of freedom.
        close(chi2_sf(3.841, 1.0), 0.05, 2e-4);
        close(chi2_sf(5.991, 2.0), 0.05, 2e-4);
        close(chi2_sf(6.635, 1.0), 0.01, 2e-4);
        close(chi2_sf(18.307, 10.0), 0.05, 2e-4);
        // Exponential special case: df=2 => sf(x) = exp(-x/2).
        close(chi2_sf(4.0, 2.0), (-2.0f64).exp(), 1e-10);
    }

    #[test]
    fn chi2_edge_cases() {
        assert_eq!(chi2_sf(0.0, 5.0), 1.0);
        assert_eq!(chi2_sf(-1.0, 5.0), 1.0);
        assert_eq!(chi2_sf(10.0, 0.0), 1.0);
        assert!(chi2_sf(1e6, 1.0) < 1e-12);
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation has |abs err| < 1.5e-7.
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.842_700_79, 1e-6);
        close(erf(-1.0), -0.842_700_79, 1e-6);
        close(erf(2.0), 0.995_322_27, 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(normal_cdf(0.0), 0.5, 2e-7);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-6);
        }
        close(normal_quantile(0.975), 1.959_964, 1e-5);
    }

    #[test]
    fn xlnx_zero_convention() {
        assert_eq!(xlnx(0.0), 0.0);
        assert_eq!(xlnx(-1.0), 0.0);
        close(xlnx(1.0), 0.0, 1e-15);
        close(xlnx(std::f64::consts::E), std::f64::consts::E, 1e-12);
    }
}
