//! Statistical machinery for HypDB (§2, §5, §6 of the paper).
//!
//! Everything here is implemented from scratch on top of `std` + `rand`:
//!
//! * [`math`] — ln-gamma, regularised incomplete gamma, χ² survival
//!   function, error function / normal distribution,
//! * [`entropy`] — plug-in and Miller–Madow entropy estimators (§2),
//! * [`crosstab`] — two-way contingency tables with G/χ² statistics,
//! * [`patefield`] — random r×c tables with fixed marginals (AS 159),
//! * [`independence`] — the MIT Monte-Carlo permutation test (Alg 2), its
//!   weighted-group-sampling variant, the χ² test, the HyMIT hybrid (§6),
//!   and the naive row-shuffling baseline,
//! * [`random`] — gamma/Dirichlet/hypergeometric variates and weighted
//!   sampling (substituting for `rand_distr`, which is outside the
//!   offline dependency set),
//! * [`borda`] — Borda rank aggregation used by fine-grained explanations
//!   (Alg 3).
//!
//! Conventions: all entropies and mutual informations are in **nats**
//! (natural logarithm); estimators follow Miller (1955) for the
//! Miller–Madow correction `H_plugin + (m−1)/(2n)`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod borda;
pub mod crosstab;
pub mod entropy;
pub mod independence;
pub mod math;
pub mod patefield;
pub mod random;

pub use crosstab::CrossTab;
pub use entropy::{entropy_miller_madow, entropy_plugin, EntropyEstimator};
pub use independence::{
    chi2_test, hymit, mit, mit_batch, mit_sampled, shuffle_test, MitConfig, MitJob, Strata,
    TestMethod, TestOutcome,
};
