//! Entropy estimation from count data (§2 and Appendix 10.1).
//!
//! The population distribution `Pr` is unknown; HypDB estimates entropies
//! from the sample `D`. Two estimators are provided:
//!
//! * **plug-in**: `Ĥ = −Σ F(x) ln F(x)` with empirical frequencies `F`,
//! * **Miller–Madow**: plug-in plus the first-order bias correction
//!   `(m−1)/(2n)` where `m` is the number of observed (non-zero)
//!   categories — the estimator the paper uses throughout.

use crate::math::xlnx;
use serde::{Deserialize, Serialize};

/// Which entropy estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EntropyEstimator {
    /// Maximum-likelihood (plug-in) estimator.
    PlugIn,
    /// Miller–Madow bias-corrected estimator (the paper's choice).
    #[default]
    MillerMadow,
}

impl EntropyEstimator {
    /// Estimates entropy (in nats) from an iterator of category counts.
    pub fn entropy<I>(self, counts: I) -> f64
    where
        I: IntoIterator<Item = u64>,
    {
        match self {
            EntropyEstimator::PlugIn => entropy_plugin(counts),
            EntropyEstimator::MillerMadow => entropy_miller_madow(counts),
        }
    }
}

/// Plug-in entropy (nats) of a histogram given as category counts.
/// Zero counts contribute nothing; an all-zero histogram has entropy 0.
pub fn entropy_plugin<I>(counts: I) -> f64
where
    I: IntoIterator<Item = u64>,
{
    let mut total = 0u64;
    let mut sum_xlnx = 0.0f64;
    for c in counts {
        if c > 0 {
            total += c;
            sum_xlnx += xlnx(c as f64);
        }
    }
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    // H = -Σ (c/n) ln(c/n) = ln n − (1/n) Σ c ln c
    (n.ln() - sum_xlnx / n).max(0.0)
}

/// Miller–Madow entropy (nats): plug-in + `(m−1)/(2n)` where `m` is the
/// number of non-zero categories.
pub fn entropy_miller_madow<I>(counts: I) -> f64
where
    I: IntoIterator<Item = u64>,
{
    let mut total = 0u64;
    let mut support = 0u64;
    let mut sum_xlnx = 0.0f64;
    for c in counts {
        if c > 0 {
            total += c;
            support += 1;
            sum_xlnx += xlnx(c as f64);
        }
    }
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let plugin = (n.ln() - sum_xlnx / n).max(0.0);
    plugin + (support.saturating_sub(1)) as f64 / (2.0 * n)
}

/// Plug-in mutual information (nats) from a dense `r×c` count matrix in
/// row-major order: `I(X;Y) = Σ p_ij ln(p_ij / (p_i· p_·j))`.
///
/// This is the inner-loop statistic of the MIT permutation test, so it
/// avoids building three separate histograms.
pub fn mi_from_matrix(counts: &[u64], r: usize, c: usize) -> f64 {
    debug_assert_eq!(counts.len(), r * c);
    let mut row = vec![0u64; r];
    let mut col = vec![0u64; c];
    let mut n = 0u64;
    for i in 0..r {
        for j in 0..c {
            let v = counts[i * c + j];
            row[i] += v;
            col[j] += v;
            n += v;
        }
    }
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..r {
        if row[i] == 0 {
            continue;
        }
        for j in 0..c {
            let v = counts[i * c + j];
            if v == 0 {
                continue;
            }
            let vf = v as f64;
            mi += vf * ((vf * nf) / (row[i] as f64 * col[j] as f64)).ln();
        }
    }
    (mi / nf).max(0.0)
}

/// Conditional mutual information from entropies using the standard
/// identity `I(X;Y|Z) = H(XZ) + H(YZ) − H(XYZ) − H(Z)`.
#[inline]
pub fn cmi_from_entropies(h_xz: f64, h_yz: f64, h_xyz: f64, h_z: f64) -> f64 {
    h_xz + h_yz - h_xyz - h_z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn uniform_entropy_is_ln_k() {
        close(entropy_plugin([10, 10, 10, 10]), 4.0f64.ln(), 1e-12);
        close(entropy_plugin([7, 7]), 2.0f64.ln(), 1e-12);
    }

    #[test]
    fn deterministic_entropy_is_zero() {
        assert_eq!(entropy_plugin([42]), 0.0);
        assert_eq!(entropy_plugin([0, 42, 0]), 0.0);
        assert_eq!(entropy_plugin(std::iter::empty()), 0.0);
    }

    #[test]
    fn miller_madow_correction() {
        // Two observed categories, n = 20 => correction = 1/40.
        let plugin = entropy_plugin([10, 10]);
        let mm = entropy_miller_madow([10, 10]);
        close(mm - plugin, 1.0 / 40.0, 1e-12);
        // Single category: no correction.
        assert_eq!(entropy_miller_madow([5]), entropy_plugin([5]));
    }

    #[test]
    fn zero_counts_do_not_affect_support() {
        let a = entropy_miller_madow([10, 10, 0, 0]);
        let b = entropy_miller_madow([10, 10]);
        close(a, b, 1e-15);
    }

    #[test]
    fn estimator_enum_dispatch() {
        let c = [3u64, 9, 1];
        close(
            EntropyEstimator::PlugIn.entropy(c),
            entropy_plugin(c),
            1e-15,
        );
        close(
            EntropyEstimator::MillerMadow.entropy(c),
            entropy_miller_madow(c),
            1e-15,
        );
    }

    #[test]
    fn mi_independent_is_zero() {
        // Product distribution: rows (1/2,1/2) x cols (1/4,3/4), n=80.
        let counts = [10u64, 30, 10, 30];
        close(mi_from_matrix(&counts, 2, 2), 0.0, 1e-12);
    }

    #[test]
    fn mi_perfect_dependence_is_ln2() {
        let counts = [40u64, 0, 0, 40];
        close(mi_from_matrix(&counts, 2, 2), 2.0f64.ln(), 1e-12);
    }

    #[test]
    fn mi_matches_entropy_identity() {
        // I(X;Y) = H(X) + H(Y) - H(XY) on an arbitrary table.
        let counts = [5u64, 9, 2, 7, 1, 6];
        let (r, c) = (2, 3);
        let mi = mi_from_matrix(&counts, r, c);
        let h_xy = entropy_plugin(counts.iter().copied());
        let rows: Vec<u64> = (0..r)
            .map(|i| counts[i * c..(i + 1) * c].iter().sum())
            .collect();
        let cols: Vec<u64> = (0..c)
            .map(|j| (0..r).map(|i| counts[i * c + j]).sum())
            .collect();
        let h_x = entropy_plugin(rows);
        let h_y = entropy_plugin(cols);
        close(mi, h_x + h_y - h_xy, 1e-12);
    }

    #[test]
    fn cmi_identity() {
        close(cmi_from_entropies(1.0, 2.0, 2.5, 0.25), 0.25, 1e-15);
    }
}
