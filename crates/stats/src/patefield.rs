//! Random two-way contingency tables with fixed marginals — Patefield's
//! algorithm (AS 159, Applied Statistics 30(1), 1981).
//!
//! Randomly shuffling a data column only changes the cell counts of the
//! corresponding contingency table while leaving all marginals fixed
//! (§5). So instead of shuffling `n` rows, the MIT test draws tables
//! directly from the distribution induced by shuffling: the multivariate
//! hypergeometric over tables with the observed marginals. We generate a
//! table cell by cell; given the remaining row quota and remaining column
//! totals, each cell is exactly hypergeometric — the same conditional
//! decomposition AS 159 uses (it adds a clever sequential-search
//! optimisation; our [`crate::random::hypergeometric`] uses the pmf-ratio
//! inverse CDF, which is exact and fast at OLAP cardinalities).

use crate::crosstab::CrossTab;
use crate::random::hypergeometric;
use rand::Rng;

/// Draws one random `r×c` table with the given row and column sums,
/// distributed as if produced by uniformly shuffling the underlying
/// column pairing.
///
/// Panics if the marginals disagree in total.
#[allow(clippy::needless_range_loop)] // row/col quotas are indexed in lockstep
pub fn sample_table(rng: &mut impl Rng, rows: &[u64], cols: &[u64]) -> CrossTab {
    let n_row: u64 = rows.iter().sum();
    let n_col: u64 = cols.iter().sum();
    assert_eq!(n_row, n_col, "marginal totals must agree");
    let r = rows.len();
    let c = cols.len();
    let mut out = CrossTab::zeros(r, c);
    if r == 0 || c == 0 || n_row == 0 {
        return out;
    }
    // jwork[j]: count still to be placed in column j.
    let mut jwork: Vec<u64> = cols.to_vec();
    // Total still to be placed (over rows i..).
    let mut remaining = n_row;
    for i in 0..r.saturating_sub(1) {
        // ia: quota left for this row; ic: units left in columns j.. of
        // rows i.. (i.e., all unplaced units).
        let mut ia = rows[i];
        let mut ic = remaining;
        for j in 0..c - 1 {
            if ia == 0 {
                break;
            }
            let id = jwork[j]; // remaining demand of column j

            // Hypergeometric draw: among `ic` unplaced units of which
            // `id` belong to column j, how many of row i's `ia` land in
            // column j?
            let x = hypergeometric(rng, id, ic - id, ia);
            if x > 0 {
                out.add(i, j, x);
                jwork[j] -= x;
                ia -= x;
            }
            ic -= id;
        }
        // Row remainder goes to the last column.
        if ia > 0 {
            out.add(i, c - 1, ia);
            jwork[c - 1] -= ia;
        }
        remaining -= rows[i];
    }
    // Last row: whatever each column still demands.
    for (j, &w) in jwork.iter().enumerate() {
        if w > 0 {
            out.add(r - 1, j, w);
        }
    }
    out
}

/// Draws `m` tables with the marginals of `observed` (empty rows/columns
/// are compacted away first, as required for positive marginals).
pub fn sample_tables(rng: &mut impl Rng, observed: &CrossTab, m: usize) -> Vec<CrossTab> {
    let compacted = observed.compact();
    let rows = compacted.row_sums();
    let cols = compacted.col_sums();
    (0..m).map(|_| sample_table(rng, &rows, &cols)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xAB5_159)
    }

    #[test]
    fn marginals_preserved() {
        let mut r = rng();
        let rows = [7u64, 13, 5];
        let cols = [10u64, 9, 4, 2];
        for _ in 0..200 {
            let t = sample_table(&mut r, &rows, &cols);
            assert_eq!(t.row_sums(), rows.to_vec());
            assert_eq!(t.col_sums(), cols.to_vec());
        }
    }

    #[test]
    fn degenerate_single_row() {
        let mut r = rng();
        let t = sample_table(&mut r, &[9], &[4, 5]);
        assert_eq!(t.counts(), &[4, 5]);
    }

    #[test]
    fn degenerate_single_col() {
        let mut r = rng();
        let t = sample_table(&mut r, &[4, 5], &[9]);
        assert_eq!(t.counts(), &[4, 5]);
    }

    #[test]
    fn empty_table() {
        let mut r = rng();
        let t = sample_table(&mut r, &[0, 0], &[0]);
        assert_eq!(t.total(), 0);
    }

    #[test]
    #[should_panic(expected = "marginal totals must agree")]
    fn mismatched_totals_panic() {
        let mut r = rng();
        sample_table(&mut r, &[3], &[2]);
    }

    #[test]
    fn cell_mean_matches_expectation() {
        // Under the fixed-marginal null, E[n_ij] = r_i * c_j / n.
        let mut r = rng();
        let rows = [30u64, 70];
        let cols = [40u64, 60];
        let trials = 4_000;
        let mut sum00 = 0.0;
        for _ in 0..trials {
            sum00 += sample_table(&mut r, &rows, &cols).get(0, 0) as f64;
        }
        let mean = sum00 / trials as f64;
        let expect = 30.0 * 40.0 / 100.0;
        assert!((mean - expect).abs() < 0.15, "mean {mean} vs {expect}");
    }

    #[test]
    fn two_by_two_matches_fisher_distribution() {
        // For a 2x2 with rows (2,2), cols (2,2), n=4 the permutation
        // distribution of n00 is hypergeometric: P(0)=1/6, P(1)=4/6,
        // P(2)=1/6.
        let mut r = rng();
        let mut hist = [0usize; 3];
        let trials = 30_000;
        for _ in 0..trials {
            let t = sample_table(&mut r, &[2, 2], &[2, 2]);
            hist[t.get(0, 0) as usize] += 1;
        }
        let p0 = hist[0] as f64 / trials as f64;
        let p1 = hist[1] as f64 / trials as f64;
        let p2 = hist[2] as f64 / trials as f64;
        assert!((p0 - 1.0 / 6.0).abs() < 0.02, "p0={p0}");
        assert!((p1 - 4.0 / 6.0).abs() < 0.02, "p1={p1}");
        assert!((p2 - 1.0 / 6.0).abs() < 0.02, "p2={p2}");
    }

    #[test]
    fn sample_tables_compacts_empty_marginals() {
        let mut r = rng();
        let observed = CrossTab::new(3, 2, vec![5, 3, 0, 0, 2, 6]);
        let ts = sample_tables(&mut r, &observed, 10);
        assert_eq!(ts.len(), 10);
        for t in ts {
            assert_eq!(t.nrows(), 2); // middle row compacted away
            assert_eq!(t.total(), 16);
        }
    }
}
