//! Conditional-independence testing (§5, §6): the χ²/G test, the MIT
//! Monte-Carlo permutation test over contingency tables (Alg 2), MIT
//! with weighted group sampling, the HyMIT hybrid, and the naive
//! row-shuffling baseline MIT replaces.
//!
//! All tests decide `(X ⊥⊥ Y | Z)` from a *stratified* summary of the
//! data: one `|X|×|Y|` cross tab per group `z ∈ Π_Z(D)`. The observed
//! statistic is the plug-in conditional mutual information
//! `Î(X;Y|Z) = Σ_z Pr(z)·Î_z(X;Y)`; plug-in (rather than Miller–Madow)
//! is used *inside* tests so that the observed and permuted statistics
//! are computed by the identical formula.

use crate::crosstab::CrossTab;
use crate::entropy::entropy_plugin;
use crate::math::chi2_sf;
use crate::patefield::sample_table;
use crate::random::{shuffle, weighted_indices_without_replacement};
use hypdb_exec::{seed, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which procedure produced a [`TestOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestMethod {
    /// Asymptotic G test against the χ² distribution.
    ChiSquared,
    /// Monte-Carlo permutation test on contingency tables (Alg 2).
    Mit,
    /// MIT restricted to a weighted sample of the conditioning groups.
    MitSampled,
    /// Naive permutation test that reshuffles the raw data column.
    Shuffle,
}

/// Result of an independence test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// The estimated (conditional) mutual information `Î(X;Y|Z)` in nats.
    pub statistic: f64,
    /// p-value of the null hypothesis `I(X;Y|Z) = 0`.
    pub p_value: f64,
    /// 95 % binomial confidence interval around the Monte-Carlo p-value
    /// (permutation tests only).
    pub ci95: Option<(f64, f64)>,
    /// Degrees of freedom (χ² test only).
    pub df: Option<f64>,
    /// Procedure used.
    pub method: TestMethod,
    /// Number of Monte-Carlo permutations (permutation tests only).
    pub permutations: Option<usize>,
}

impl TestOutcome {
    /// True when the null of independence is *not* rejected at level
    /// `alpha`.
    #[inline]
    pub fn independent(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }

    /// True when dependence is significant at level `alpha`.
    #[inline]
    pub fn dependent(&self, alpha: f64) -> bool {
        !self.independent(alpha)
    }
}

/// Stratified cross-tabulation of `(X, Y)` within each group of `Z`.
///
/// The group list is the support `Π_Z(D)`; an unconditional test is the
/// special case of a single stratum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strata {
    groups: Vec<CrossTab>,
    total: u64,
}

impl Strata {
    /// Builds from per-group cross tabs (empty groups are dropped).
    pub fn new(groups: Vec<CrossTab>) -> Self {
        let groups: Vec<CrossTab> = groups.into_iter().filter(|g| g.total() > 0).collect();
        let total = groups.iter().map(CrossTab::total).sum();
        Strata { groups, total }
    }

    /// Unconditional case: one stratum.
    pub fn single(tab: CrossTab) -> Self {
        Strata::new(vec![tab])
    }

    /// The per-group tables.
    pub fn groups(&self) -> &[CrossTab] {
        &self.groups
    }

    /// Total sample size `n`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of conditioning groups `|Π_Z(D)|`.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Plug-in conditional mutual information
    /// `Î(X;Y|Z) = Σ_z Pr(z)·Î_z(X;Y)`.
    pub fn cmi_plugin(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        self.groups
            .iter()
            .map(|g| g.total() as f64 / n * g.mutual_information())
            .sum()
    }

    /// Degrees of freedom for the asymptotic test, summed over groups on
    /// their non-empty rows/columns: `Σ_z (r'_z−1)(c'_z−1)`. This equals
    /// the paper's `(|Π_X|−1)(|Π_Y|−1)|Π_Z|` when every group is full,
    /// and is the correct count when sub-populations lose categories.
    pub fn dof(&self) -> f64 {
        self.groups.iter().map(CrossTab::dof).sum()
    }

    /// The paper's df formula `(|Π_X|−1)(|Π_Y|−1)·|Π_Z|`, with supports
    /// measured across the whole strata. Unlike [`Strata::dof`], singleton
    /// groups count fully — which is exactly what makes this the right
    /// *sparseness gauge* for HyMIT's χ²-vs-MIT switch: a conditioning
    /// set that shatters the data into singleton groups contributes no
    /// effective dof yet badly inflates the plug-in CMI.
    pub fn paper_dof(&self) -> f64 {
        let mut row_seen: Vec<bool> = Vec::new();
        let mut col_seen: Vec<bool> = Vec::new();
        for g in &self.groups {
            let rs = g.row_sums();
            let cs = g.col_sums();
            if row_seen.len() < rs.len() {
                row_seen.resize(rs.len(), false);
            }
            if col_seen.len() < cs.len() {
                col_seen.resize(cs.len(), false);
            }
            for (i, &v) in rs.iter().enumerate() {
                if v > 0 {
                    row_seen[i] = true;
                }
            }
            for (j, &v) in cs.iter().enumerate() {
                if v > 0 {
                    col_seen[j] = true;
                }
            }
        }
        let r = row_seen.iter().filter(|&&b| b).count().max(1);
        let c = col_seen.iter().filter(|&&b| b).count().max(1);
        ((r - 1) * (c - 1) * self.groups.len().max(1)) as f64
    }

    /// The MIT group-sampling weights of §5:
    /// `w_z = Pr(z)·max(H(X|Z=z), H(Y|Z=z))` — a group whose weight is
    /// ≈0 cannot move the p-value.
    pub fn group_weights(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let n = self.total as f64;
        self.groups
            .iter()
            .map(|g| {
                let pz = g.total() as f64 / n;
                let hx = entropy_plugin(g.row_sums());
                let hy = entropy_plugin(g.col_sums());
                pz * hx.max(hy)
            })
            .collect()
    }

    /// Restricts to the given group indices.
    pub fn subset(&self, indices: &[usize]) -> Strata {
        let groups: Vec<CrossTab> = indices.iter().map(|&i| self.groups[i].clone()).collect();
        // Keep the *original* n so Pr(z) weights stay comparable with the
        // full-data statistic (dropped groups have ≈0 contribution).
        let mut s = Strata::new(groups);
        s.total = self.total;
        s
    }
}

/// Configuration for the permutation-based tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitConfig {
    /// Number of Monte-Carlo permutation samples `m`.
    pub permutations: usize,
    /// HyMIT switches to the χ² approximation when `df · beta ≤ n`
    /// (§6; β = 5 "is ideal").
    pub beta: f64,
    /// When `Some(k)`: restrict MIT to a weighted sample of at most `k`
    /// conditioning groups. `None` = exact MIT over all groups.
    pub group_sample: Option<usize>,
    /// When `Some(alpha)`: permutation tests launched through
    /// [`hymit`] may stop before all `m` permutations once the 95 %
    /// binomial CI around the running p-value excludes `alpha` — the
    /// accept/reject verdict can no longer change with more sampling.
    /// Termination is checked only at fixed batch boundaries (a pure
    /// function of `m`), so the decision — like every other output — is
    /// identical at any thread count. `None` (default) always runs the
    /// full `m`.
    pub early_stop: Option<f64>,
}

impl Default for MitConfig {
    fn default() -> Self {
        MitConfig {
            permutations: 100,
            beta: 5.0,
            group_sample: None,
            early_stop: None,
        }
    }
}

impl MitConfig {
    /// The paper's group-sampling rule of thumb: a sample of size
    /// proportional to `log |Π_Z(D)|` (§7.3). The constant is not given
    /// in the paper; `32·⌈ln g⌉` (floor 16) keeps the test powerful for
    /// the mid-size effects of Fig 5(a) while still sub-linear in the
    /// group count.
    pub fn auto_group_sample(num_groups: usize) -> usize {
        let g = num_groups.max(1) as f64;
        (32.0 * g.ln().ceil()).max(16.0) as usize
    }
}

fn binomial_ci(p: f64, m: usize) -> (f64, f64) {
    let half = 1.96 * (p * (1.0 - p) / m.max(1) as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

/// Wilson score interval — used for the early-termination decision,
/// where the Wald interval of [`binomial_ci`] would be useless: at
/// `p̂ ∈ {0, 1}` Wald collapses to zero width and would declare any
/// first batch "settled", while Wilson keeps an honest margin
/// (upper bound ≈ z²/n at zero observed hits).
fn wilson_ci(p: f64, m: usize) -> (f64, f64) {
    let n = m.max(1) as f64;
    let z2 = 1.96f64 * 1.96;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = 1.96 * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Asymptotic χ² (G) test of `I(X;Y|Z) = 0`: the statistic `2nÎ` is
/// χ²-distributed with [`Strata::dof`] degrees of freedom under the null.
pub fn chi2_test(strata: &Strata) -> TestOutcome {
    let stat = strata.cmi_plugin();
    let g = 2.0 * strata.total() as f64 * stat;
    let df = strata.dof();
    let p = if df == 0.0 { 1.0 } else { chi2_sf(g, df) };
    TestOutcome {
        statistic: stat,
        p_value: p,
        ci95: None,
        df: Some(df),
        method: TestMethod::ChiSquared,
        permutations: None,
    }
}

/// Number of permutations evaluated per work chunk. The chunk layout
/// (and hence every per-chunk RNG seed) is a pure function of `m`, so
/// the permutation ensemble is identical at any thread count.
const PERM_CHUNK: usize = 64;

/// Chunks per early-termination decision batch. Decisions fall on
/// multiples of `PERM_CHUNK · EARLY_STOP_BATCH` completed permutations
/// — fixed points independent of the parallelism level.
const EARLY_STOP_BATCH: usize = 4;

/// The MIT permutation test (Alg 2): for each conditioning group, draw
/// `m` contingency tables with the observed marginals via Patefield's
/// algorithm, aggregate the per-group MIs with weights `Pr(z)` into `m`
/// permutation statistics, and report the fraction ≥ the observed CMI
/// together with a 95 % binomial confidence interval.
///
/// The `m` permutations are evaluated in fixed-size chunks on the
/// global worker pool ([`hypdb_exec::global_threads`]); each chunk owns
/// an RNG seeded from one master draw off `rng` plus the chunk index,
/// so the outcome is bit-identical at any thread count.
pub fn mit(strata: &Strata, m: usize, rng: &mut impl Rng) -> TestOutcome {
    mit_impl(strata, m, None, rng, TestMethod::Mit)
}

/// [`mit`] with the optional deterministic early-termination rule of
/// [`MitConfig::early_stop`] (callers that hold a config — the data
/// oracle, HyMIT — route through this so the knob is honoured).
pub fn mit_early(
    strata: &Strata,
    m: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    mit_impl(strata, m, early_stop, rng, TestMethod::Mit)
}

/// [`mit_sampled`] with the optional deterministic early-termination
/// rule of [`MitConfig::early_stop`].
pub fn mit_sampled_early(
    strata: &Strata,
    m: usize,
    k: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    mit_sampled_impl(strata, m, k, early_stop, rng)
}

fn mit_impl(
    strata: &Strata,
    m: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
    method: TestMethod,
) -> TestOutcome {
    assert!(m > 0, "need at least one permutation");
    let s0 = strata.cmi_plugin();
    let n = strata.total() as f64;
    // One master draw, regardless of scheduling: chunk i's generator is
    // seeded with `mix(master, i)`.
    let master = rng.next_u64();
    // Marginals of the non-degenerate groups (a degenerate group's MI is
    // identically 0 under any permutation).
    let groups: Vec<(Vec<u64>, Vec<u64>, f64)> = strata
        .groups()
        .iter()
        .filter_map(|g| {
            if n == 0.0 {
                return None;
            }
            let compact = g.compact();
            let rows = compact.row_sums();
            let cols = compact.col_sums();
            let pz = g.total() as f64 / n;
            (rows.len() >= 2 && cols.len() >= 2 && pz > 0.0).then_some((rows, cols, pz))
        })
        .collect();
    // Strict "≥" with a small tolerance: the observed table is itself a
    // draw from the null ensemble, so ties count towards the p-value.
    let tol = 1e-12;
    let run_chunk = |range: std::ops::Range<usize>| -> usize {
        let chunk_idx = (range.start / PERM_CHUNK) as u64;
        let mut rng = StdRng::seed_from_u64(seed::mix(master, chunk_idx));
        let mut stats = vec![0.0f64; range.len()];
        for (rows, cols, pz) in &groups {
            for s in stats.iter_mut() {
                let t = sample_table(&mut rng, rows, cols);
                *s += pz * t.mutual_information();
            }
        }
        stats.iter().filter(|&&s| s >= s0 - tol).count()
    };

    let pool = ThreadPool::current();
    let (hits, done) = match early_stop {
        None => {
            let partials = pool.map_chunks(m, PERM_CHUNK, run_chunk);
            (partials.iter().sum::<usize>(), m)
        }
        Some(alpha) => {
            let chunks = m.div_ceil(PERM_CHUNK);
            let mut hits = 0usize;
            let mut done = 0usize;
            let mut next = 0usize;
            while next < chunks {
                let batch_end = (next + EARLY_STOP_BATCH).min(chunks);
                let partials = pool.map_indices(batch_end - next, |i| {
                    let lo = (next + i) * PERM_CHUNK;
                    run_chunk(lo..(lo + PERM_CHUNK).min(m))
                });
                hits += partials.iter().sum::<usize>();
                done = (batch_end * PERM_CHUNK).min(m);
                next = batch_end;
                if done < m {
                    // Stop once the verdict is settled: alpha outside
                    // the Wilson 95 % CI of the running p-value.
                    let p = hits as f64 / done as f64;
                    let (lo95, hi95) = wilson_ci(p, done);
                    if lo95 > alpha || hi95 < alpha {
                        break;
                    }
                }
            }
            (hits, done)
        }
    };
    let p = hits as f64 / done as f64;
    TestOutcome {
        statistic: s0,
        p_value: p,
        ci95: Some(binomial_ci(p, done)),
        df: None,
        method,
        permutations: Some(done),
    }
}

/// One statement's permutation-test job within a [`mit_batch`] call:
/// its stratified summary, its budget, and — the key to batching
/// without changing a single verdict — its *own* RNG seed.
#[derive(Debug, Clone)]
pub struct MitJob {
    /// Stratified cross tabs of `(X, Y)` given `Z`.
    pub strata: Strata,
    /// Monte-Carlo budget `m`.
    pub permutations: usize,
    /// `Some(k)`: weighted sample of at most `k` conditioning groups
    /// (routes through [`mit_sampled_early`]); `None`: exact MIT.
    pub group_sample: Option<usize>,
    /// Deterministic early termination at fixed batch boundaries
    /// ([`MitConfig::early_stop`]).
    pub early_stop: Option<f64>,
    /// Per-statement RNG seed. The caller derives it from the statement
    /// alone (never from batch position), so the outcome is a pure
    /// function of `(strata, budget, seed)`.
    pub seed: u64,
}

/// Evaluates a batch of permutation tests on the global worker pool —
/// the statement-group entry point of the multi-query planner: a
/// caller that has grouped many independence statements by conditioning
/// set builds their strata from one shared contingency pass and then
/// settles all of them here in one fan-out.
///
/// Each job seeds its own `StdRng` from `job.seed` and runs exactly the
/// procedure the call-at-a-time path runs, so the returned outcomes are
/// **byte-identical** to evaluating the jobs one at a time, in any
/// order, at any thread count — grouping is a pure performance choice.
///
/// Jobs are *settled* in descending predicted-cost order (permutation
/// budget × total stratified mass, the work a full run would do) so the
/// heaviest tests start first and stragglers don't serialise the tail
/// of the fan-out; outcomes are scattered back to submission order, so
/// the schedule is invisible to callers.
pub fn mit_batch(jobs: &[MitJob]) -> Vec<TestOutcome> {
    let cost = |job: &MitJob| job.permutations as u64 * job.strata.total().max(1);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cost(&jobs[i])), i));
    let outcomes = hypdb_obs::span("mit_settle", || {
        ThreadPool::current().parallel_map(&order, |_, &i| {
            let job = &jobs[i];
            let tick = hypdb_obs::Tick::now();
            let mut rng = StdRng::seed_from_u64(job.seed);
            let out = match job.group_sample {
                None => mit_early(&job.strata, job.permutations, job.early_stop, &mut rng),
                Some(k) => {
                    mit_sampled_early(&job.strata, job.permutations, k, job.early_stop, &mut rng)
                }
            };
            hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
            out
        })
    });
    let mut results: Vec<Option<TestOutcome>> = vec![None; jobs.len()];
    for (&i, out) in order.iter().zip(outcomes) {
        results[i] = Some(out);
    }
    results
        .into_iter()
        .map(|o| o.expect("every job settled"))
        .collect()
}

/// MIT with automatic group sampling: exact over all conditioning
/// groups when their number is small, weighted-sampled otherwise. This
/// is the procedure §7.1 prescribes for testing the significance of
/// query-answer differences (1 000 permutations in the paper).
pub fn mit_auto(strata: &Strata, m: usize, rng: &mut impl Rng) -> TestOutcome {
    let g = strata.num_groups();
    if g > 64 {
        mit_sampled(strata, m, MitConfig::auto_group_sample(g), rng)
    } else {
        mit(strata, m, rng)
    }
}

/// MIT restricted to a weighted sample of at most `k` conditioning
/// groups (weights from [`Strata::group_weights`]); both the observed
/// and permuted statistics are computed on the sampled groups so they
/// remain comparable.
pub fn mit_sampled(strata: &Strata, m: usize, k: usize, rng: &mut impl Rng) -> TestOutcome {
    mit_sampled_impl(strata, m, k, None, rng)
}

fn mit_sampled_impl(
    strata: &Strata,
    m: usize,
    k: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    if k >= strata.num_groups() {
        return mit_impl(strata, m, early_stop, rng, TestMethod::MitSampled);
    }
    let weights = strata.group_weights();
    let picked = weighted_indices_without_replacement(rng, &weights, k);
    let sub = strata.subset(&picked);
    mit_impl(&sub, m, early_stop, rng, TestMethod::MitSampled)
}

/// HyMIT (§6): χ² when the sample is large relative to the degrees of
/// freedom (`df·β ≤ n`, with df measured by the paper's formula so that
/// singleton conditioning groups register as sparseness), MIT otherwise
/// — with automatic group sampling when the conditioning support is
/// large.
pub fn hymit(strata: &Strata, cfg: &MitConfig, rng: &mut impl Rng) -> TestOutcome {
    let df = strata.paper_dof();
    let n = strata.total() as f64;
    if df == 0.0 || df * cfg.beta <= n {
        return chi2_test(strata);
    }
    match cfg.group_sample {
        Some(k) => mit_sampled_impl(strata, cfg.permutations, k, cfg.early_stop, rng),
        None => {
            let g = strata.num_groups();
            if g > 64 {
                mit_sampled_impl(
                    strata,
                    cfg.permutations,
                    MitConfig::auto_group_sample(g),
                    cfg.early_stop,
                    rng,
                )
            } else {
                mit_impl(
                    strata,
                    cfg.permutations,
                    cfg.early_stop,
                    rng,
                    TestMethod::Mit,
                )
            }
        }
    }
}

/// The naive permutation test MIT replaces: physically reshuffle the `X`
/// column within each `Z` group `m` times and recompute the CMI on the
/// raw rows. `x`/`y` are dictionary codes, `groups` assigns each row to
/// a conditioning group. Complexity `O(m·n)` — kept as the baseline for
/// the Fig 6(b) "orders of magnitude" comparison.
pub fn shuffle_test(
    x: &[u32],
    y: &[u32],
    groups: &[u32],
    m: usize,
    rng: &mut impl Rng,
) -> TestOutcome {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), groups.len());
    assert!(m > 0, "need at least one permutation");
    let n = x.len();
    let r = x.iter().copied().max().map_or(0, |v| v as usize + 1);
    let c = y.iter().copied().max().map_or(0, |v| v as usize + 1);
    let g = groups.iter().copied().max().map_or(0, |v| v as usize + 1);

    // Partition row indices by group.
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (row, &gr) in groups.iter().enumerate() {
        by_group[gr as usize].push(row);
    }

    let build = |xs: &[u32]| -> Strata {
        let mut tabs: Vec<CrossTab> = (0..g).map(|_| CrossTab::zeros(r, c)).collect();
        for row in 0..n {
            tabs[groups[row] as usize].add(xs[row] as usize, y[row] as usize, 1);
        }
        Strata::new(tabs)
    };

    let s0 = build(x).cmi_plugin();
    let mut xs: Vec<u32> = x.to_vec();
    let mut hits = 0usize;
    let tol = 1e-12;
    for _ in 0..m {
        // Shuffle X within each group (destroys X–Y coupling, preserves
        // all marginals).
        for rows in &by_group {
            // Fisher–Yates over the positions of this group.
            let mut vals: Vec<u32> = rows.iter().map(|&i| xs[i]).collect();
            shuffle(rng, &mut vals);
            for (&i, v) in rows.iter().zip(vals) {
                xs[i] = v;
            }
        }
        if build(&xs).cmi_plugin() >= s0 - tol {
            hits += 1;
        }
    }
    let p = hits as f64 / m as f64;
    TestOutcome {
        statistic: s0,
        p_value: p,
        ci95: Some(binomial_ci(p, m)),
        df: None,
        method: TestMethod::Shuffle,
        permutations: Some(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2018)
    }

    /// Strongly dependent 2x2: diagonal mass.
    fn dependent_tab() -> CrossTab {
        CrossTab::new(2, 2, vec![45, 5, 5, 45])
    }

    /// Independent 2x2: product of (1/2,1/2)x(1/2,1/2).
    fn independent_tab() -> CrossTab {
        CrossTab::new(2, 2, vec![25, 25, 25, 25])
    }

    #[test]
    fn chi2_detects_dependence() {
        let s = Strata::single(dependent_tab());
        let out = chi2_test(&s);
        assert!(out.p_value < 0.001, "p={}", out.p_value);
        assert!(out.dependent(0.01));
        assert_eq!(out.method, TestMethod::ChiSquared);
        assert_eq!(out.df, Some(1.0));
    }

    #[test]
    fn chi2_accepts_independence() {
        let s = Strata::single(independent_tab());
        let out = chi2_test(&s);
        assert!(out.p_value > 0.9, "p={}", out.p_value);
        assert!(out.independent(0.01));
    }

    #[test]
    fn mit_detects_dependence() {
        let s = Strata::single(dependent_tab());
        let out = mit(&s, 400, &mut rng());
        assert!(out.p_value < 0.01, "p={}", out.p_value);
        let (lo, hi) = out.ci95.unwrap();
        assert!(lo <= out.p_value && out.p_value <= hi);
    }

    #[test]
    fn mit_accepts_independence() {
        let s = Strata::single(independent_tab());
        let out = mit(&s, 400, &mut rng());
        assert!(out.p_value > 0.5, "p={}", out.p_value);
    }

    #[test]
    fn mit_conditional_simpson() {
        // Within each stratum X ⊥ Y (exact product tables); pooling the
        // strata induces a strong marginal dependence via the stratum
        // variable (a confounder).
        let g_a = CrossTab::new(2, 2, vec![81, 9, 9, 1]); // rows p=.9, cols p=.9
        let g_b = CrossTab::new(2, 2, vec![1, 9, 9, 81]);
        let cond = Strata::new(vec![g_a.clone(), g_b.clone()]);
        let out_cond = mit(&cond, 300, &mut rng());
        assert!(out_cond.p_value > 0.1, "conditional p={}", out_cond.p_value);

        // Pooled table is dependent.
        let mut pooled = CrossTab::zeros(2, 2);
        for t in [&g_a, &g_b] {
            for i in 0..2 {
                for j in 0..2 {
                    pooled.add(i, j, t.get(i, j));
                }
            }
        }
        let out_marg = chi2_test(&Strata::single(pooled));
        assert!(out_marg.p_value < 0.05, "marginal p={}", out_marg.p_value);
    }

    #[test]
    fn mit_and_chi2_agree_on_clear_cases() {
        let mut r = rng();
        for tab in [dependent_tab(), independent_tab()] {
            let s = Strata::single(tab);
            let a = chi2_test(&s).p_value < 0.01;
            let b = mit(&s, 500, &mut r).p_value < 0.01;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mit_sampled_matches_mit_when_k_large() {
        let s = Strata::new(vec![dependent_tab(), dependent_tab()]);
        let a = mit_sampled(&s, 300, 10, &mut rng());
        assert!(a.p_value < 0.01);
        assert_eq!(a.method, TestMethod::MitSampled);
    }

    #[test]
    fn mit_sampled_restricts_groups() {
        // 40 groups; only 2 carry signal, but they carry most weight.
        let mut groups = vec![CrossTab::new(2, 2, vec![2, 1, 1, 2]); 38];
        groups.push(CrossTab::new(2, 2, vec![200, 20, 20, 200]));
        groups.push(CrossTab::new(2, 2, vec![200, 20, 20, 200]));
        let s = Strata::new(groups);
        let out = mit_sampled(&s, 200, 6, &mut rng());
        assert!(out.p_value < 0.05, "p={}", out.p_value);
    }

    #[test]
    fn hymit_switches_method() {
        // Large n, tiny df: chooses chi2.
        let s = Strata::single(CrossTab::new(2, 2, vec![500, 480, 520, 500]));
        let out = hymit(&s, &MitConfig::default(), &mut rng());
        assert_eq!(out.method, TestMethod::ChiSquared);

        // Tiny n relative to df: chooses a permutation method.
        let sparse = Strata::new(vec![CrossTab::new(4, 4, {
            let mut v = vec![0u64; 16];
            v[0] = 2;
            v[5] = 1;
            v[10] = 2;
            v[15] = 1;
            v
        })]);
        let out = hymit(&sparse, &MitConfig::default(), &mut rng());
        assert!(matches!(
            out.method,
            TestMethod::Mit | TestMethod::MitSampled
        ));
    }

    #[test]
    fn shuffle_test_agrees_with_mit() {
        // Construct raw data matching a stratified table and compare.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        // group 0: dependent; group 1: independent-ish
        for (g, tab) in [(0u32, dependent_tab()), (1u32, independent_tab())] {
            for i in 0..2u32 {
                for j in 0..2u32 {
                    for _ in 0..tab.get(i as usize, j as usize) {
                        x.push(i);
                        y.push(j);
                        z.push(g);
                    }
                }
            }
        }
        let mut r = rng();
        let out = shuffle_test(&x, &y, &z, 200, &mut r);
        assert!(out.p_value < 0.01, "p={}", out.p_value);
        assert_eq!(out.method, TestMethod::Shuffle);

        // Statistic must equal the strata-based CMI exactly.
        let s = Strata::new(vec![dependent_tab(), independent_tab()]);
        assert!((out.statistic - s.cmi_plugin()).abs() < 1e-12);
    }

    #[test]
    fn strata_accessors() {
        let s = Strata::new(vec![dependent_tab(), CrossTab::zeros(2, 2)]);
        assert_eq!(s.num_groups(), 1); // empty group dropped
        assert_eq!(s.total(), 100);
        assert_eq!(s.groups().len(), 1);
        let w = s.group_weights();
        assert_eq!(w.len(), 1);
        assert!(w[0] > 0.0);
    }

    #[test]
    fn auto_group_sample_floor() {
        assert!(MitConfig::auto_group_sample(1) >= 16);
        assert!(MitConfig::auto_group_sample(100_000) >= 16);
        assert!(
            MitConfig::auto_group_sample(100_000) < 1_000,
            "log-scaled sample stays sub-linear"
        );
    }

    #[test]
    fn mit_auto_dispatch() {
        // Few groups: exact MIT. Many groups: sampled.
        let small = Strata::new(vec![dependent_tab(); 4]);
        let out = mit_auto(&small, 100, &mut rng());
        assert_eq!(out.method, TestMethod::Mit);
        assert!(out.p_value < 0.01);
        // Exact product tables in every group: the observed CMI is 0.
        let many = Strata::new(vec![CrossTab::new(2, 2, vec![4, 4, 4, 4]); 200]);
        let out = mit_auto(&many, 100, &mut rng());
        assert_eq!(out.method, TestMethod::MitSampled);
        assert!(out.p_value > 0.5, "null data, p={}", out.p_value);
    }

    #[test]
    fn paper_dof_counts_singleton_groups() {
        // 100 singleton groups: effective dof = 0, paper dof = 100.
        let mut groups = Vec::new();
        for i in 0..100u64 {
            let mut t = CrossTab::zeros(2, 2);
            t.add((i % 2) as usize, ((i / 2) % 2) as usize, 1);
            groups.push(t);
        }
        let s = Strata::new(groups);
        assert_eq!(s.dof(), 0.0);
        assert_eq!(s.paper_dof(), 100.0);
        // HyMIT must therefore refuse the χ² shortcut (df·β = 500 > 100).
        let out = hymit(&s, &MitConfig::default(), &mut rng());
        assert_ne!(out.method, TestMethod::ChiSquared);
    }

    #[test]
    fn mit_is_calibrated_under_the_null() {
        // Product tables: the p-value distribution should be roughly
        // uniform; check the rejection rate at alpha = 0.1.
        let mut r = rng();
        let mut rejections = 0;
        let trials = 200;
        for i in 0..trials {
            // Resample a null dataset each trial.
            let t = crate::patefield::sample_table(&mut r, &[40, 60], &[55, 45]);
            let s = Strata::single(t);
            let out = mit(&s, 60, &mut StdRng::seed_from_u64(i));
            if out.p_value <= 0.1 {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            rate < 0.2,
            "null rejection rate at alpha=0.1 is {rate} (should be ~0.1)"
        );
    }

    #[test]
    fn mit_outcome_is_thread_count_invariant() {
        // The tentpole invariant: same seed, any worker count ->
        // byte-identical statistic, p-value, and CI bounds. Exercises
        // multiple chunks (m > PERM_CHUNK) and several groups.
        let s = Strata::new(vec![
            dependent_tab(),
            independent_tab(),
            CrossTab::new(2, 2, vec![30, 20, 25, 25]),
        ]);
        let run = |threads: usize| {
            hypdb_exec::set_global_threads(threads);
            let out = mit(&s, 333, &mut rng());
            hypdb_exec::set_global_threads(0);
            out
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn early_stop_settles_clear_verdicts_deterministically() {
        // Shattered data forces hymit onto the MIT path; the observed
        // CMI of 0 makes every permutation a hit, so the running
        // p-value pins to 1 and the CI excludes alpha at the first
        // decision point. The stop must fire at the same permutation
        // count for every thread count.
        let mut groups = Vec::new();
        for i in 0..100u64 {
            let mut t = CrossTab::zeros(2, 2);
            t.add((i % 2) as usize, ((i / 2) % 2) as usize, 1);
            groups.push(t);
        }
        let s = Strata::new(groups);
        let cfg = MitConfig {
            permutations: 2_000,
            early_stop: Some(0.01),
            ..MitConfig::default()
        };
        let run = |threads: usize| {
            hypdb_exec::set_global_threads(threads);
            let out = hymit(&s, &cfg, &mut rng());
            hypdb_exec::set_global_threads(0);
            out
        };
        let base = run(1);
        assert_ne!(base.method, TestMethod::ChiSquared);
        let done = base.permutations.expect("permutation test");
        assert!(done < 2_000, "clear verdict must stop early ({done})");
        assert_eq!(base.p_value, 1.0);
        for threads in [2, 5] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
        // Without early_stop the same strata runs the full budget.
        let full = hymit(
            &s,
            &MitConfig {
                permutations: 2_000,
                ..MitConfig::default()
            },
            &mut rng(),
        );
        assert_eq!(full.permutations, Some(2_000));
    }

    #[test]
    fn wilson_bounds_stay_honest_at_the_extremes() {
        // Wald collapses to zero width at p̂ = 0/1; Wilson must not.
        let (_, hi_256) = wilson_ci(0.0, 256);
        assert!(hi_256 > 0.01, "0/256 is not yet evidence for p < 0.01");
        let (_, hi_512) = wilson_ci(0.0, 512);
        assert!(hi_512 < 0.01, "0/512 is");
        let (lo, _) = wilson_ci(1.0, 256);
        assert!(lo > 0.9 && lo < 1.0);
    }

    #[test]
    fn early_stop_zero_hits_waits_past_first_batch() {
        // Strong dependence: the observed CMI beats essentially every
        // permutation, so hits stay at 0. The Wald interval would call
        // that settled after the very first batch (256 perms); the
        // Wilson rule must keep sampling until its upper bound clears
        // alpha = 0.01 (which takes ≥ 385 permutations at zero hits).
        let s = Strata::single(dependent_tab());
        let out = mit_early(&s, 2_000, Some(0.01), &mut rng());
        let done = out.permutations.expect("permutation test");
        assert!(done > 256, "stopped too eagerly at {done}");
        assert!(done < 2_000, "clear dependence should still stop early");
        assert_eq!(out.p_value, 0.0);
    }

    #[test]
    fn mit_batch_matches_call_at_a_time() {
        // Batch evaluation must reproduce every sequential outcome
        // byte-for-byte: same per-job seed, same procedure — at any
        // thread count and regardless of batch composition.
        let mut r = rng();
        let jobs: Vec<MitJob> = (0..7)
            .map(|i| {
                let groups: Vec<CrossTab> = (0..(2 + i % 3))
                    .map(|_| sample_table(&mut r, &[20, 30], &[25, 25]))
                    .collect();
                MitJob {
                    strata: Strata::new(groups),
                    permutations: 100 + 64 * i,
                    group_sample: (i % 2 == 0).then_some(2),
                    early_stop: (i % 3 == 0).then_some(0.01),
                    seed: 0xBA7C_4000 + i as u64,
                }
            })
            .collect();
        let sequential: Vec<TestOutcome> = jobs
            .iter()
            .map(|job| {
                let mut rng = StdRng::seed_from_u64(job.seed);
                match job.group_sample {
                    None => mit_early(&job.strata, job.permutations, job.early_stop, &mut rng),
                    Some(k) => mit_sampled_early(
                        &job.strata,
                        job.permutations,
                        k,
                        job.early_stop,
                        &mut rng,
                    ),
                }
            })
            .collect();
        for threads in [1, 4] {
            hypdb_exec::set_global_threads(threads);
            let batched = mit_batch(&jobs);
            hypdb_exec::set_global_threads(0);
            assert_eq!(batched, sequential, "threads={threads}");
        }
        // A permuted batch returns the same outcomes in the new order.
        let rev: Vec<MitJob> = jobs.iter().rev().cloned().collect();
        let rev_out = mit_batch(&rev);
        for (a, b) in rev_out.iter().zip(sequential.iter().rev()) {
            assert_eq!(a, b, "batch order must not matter");
        }
    }

    #[test]
    fn empty_strata_are_independent() {
        let s = Strata::new(vec![]);
        assert_eq!(s.cmi_plugin(), 0.0);
        let out = chi2_test(&s);
        assert_eq!(out.p_value, 1.0);
        let out = mit(&s, 10, &mut rng());
        assert_eq!(out.p_value, 1.0);
    }
}
