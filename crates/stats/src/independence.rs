//! Conditional-independence testing (§5, §6): the χ²/G test, the MIT
//! Monte-Carlo permutation test over contingency tables (Alg 2), MIT
//! with weighted group sampling, the HyMIT hybrid, and the naive
//! row-shuffling baseline MIT replaces.
//!
//! All tests decide `(X ⊥⊥ Y | Z)` from a *stratified* summary of the
//! data: one `|X|×|Y|` cross tab per group `z ∈ Π_Z(D)`. The observed
//! statistic is the plug-in conditional mutual information
//! `Î(X;Y|Z) = Σ_z Pr(z)·Î_z(X;Y)`; plug-in (rather than Miller–Madow)
//! is used *inside* tests so that the observed and permuted statistics
//! are computed by the identical formula.

use crate::crosstab::CrossTab;
use crate::entropy::entropy_plugin;
use crate::math::chi2_sf;
use crate::patefield::sample_table;
use crate::random::{shuffle, weighted_indices_without_replacement};
use hypdb_exec::{seed, ThreadPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which procedure produced a [`TestOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestMethod {
    /// Asymptotic G test against the χ² distribution.
    ChiSquared,
    /// Monte-Carlo permutation test on contingency tables (Alg 2).
    Mit,
    /// MIT restricted to a weighted sample of the conditioning groups.
    MitSampled,
    /// Naive permutation test that reshuffles the raw data column.
    Shuffle,
}

/// Result of an independence test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// The estimated (conditional) mutual information `Î(X;Y|Z)` in nats.
    pub statistic: f64,
    /// p-value of the null hypothesis `I(X;Y|Z) = 0`.
    pub p_value: f64,
    /// 95 % binomial confidence interval around the Monte-Carlo p-value
    /// (permutation tests only).
    pub ci95: Option<(f64, f64)>,
    /// Degrees of freedom (χ² test only).
    pub df: Option<f64>,
    /// Procedure used.
    pub method: TestMethod,
    /// Number of Monte-Carlo permutations (permutation tests only).
    pub permutations: Option<usize>,
}

impl TestOutcome {
    /// True when the null of independence is *not* rejected at level
    /// `alpha`.
    #[inline]
    pub fn independent(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }

    /// True when dependence is significant at level `alpha`.
    #[inline]
    pub fn dependent(&self, alpha: f64) -> bool {
        !self.independent(alpha)
    }
}

/// Stratified cross-tabulation of `(X, Y)` within each group of `Z`.
///
/// The group list is the support `Π_Z(D)`; an unconditional test is the
/// special case of a single stratum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strata {
    groups: Vec<CrossTab>,
    total: u64,
}

impl Strata {
    /// Builds from per-group cross tabs (empty groups are dropped).
    pub fn new(groups: Vec<CrossTab>) -> Self {
        let groups: Vec<CrossTab> = groups.into_iter().filter(|g| g.total() > 0).collect();
        let total = groups.iter().map(CrossTab::total).sum();
        Strata { groups, total }
    }

    /// Unconditional case: one stratum.
    pub fn single(tab: CrossTab) -> Self {
        Strata::new(vec![tab])
    }

    /// The per-group tables.
    pub fn groups(&self) -> &[CrossTab] {
        &self.groups
    }

    /// Total sample size `n`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of conditioning groups `|Π_Z(D)|`.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Plug-in conditional mutual information
    /// `Î(X;Y|Z) = Σ_z Pr(z)·Î_z(X;Y)`.
    pub fn cmi_plugin(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        self.groups
            .iter()
            .map(|g| g.total() as f64 / n * g.mutual_information())
            .sum()
    }

    /// Degrees of freedom for the asymptotic test, summed over groups on
    /// their non-empty rows/columns: `Σ_z (r'_z−1)(c'_z−1)`. This equals
    /// the paper's `(|Π_X|−1)(|Π_Y|−1)|Π_Z|` when every group is full,
    /// and is the correct count when sub-populations lose categories.
    pub fn dof(&self) -> f64 {
        self.groups.iter().map(CrossTab::dof).sum()
    }

    /// The paper's df formula `(|Π_X|−1)(|Π_Y|−1)·|Π_Z|`, with supports
    /// measured across the whole strata. Unlike [`Strata::dof`], singleton
    /// groups count fully — which is exactly what makes this the right
    /// *sparseness gauge* for HyMIT's χ²-vs-MIT switch: a conditioning
    /// set that shatters the data into singleton groups contributes no
    /// effective dof yet badly inflates the plug-in CMI.
    pub fn paper_dof(&self) -> f64 {
        let mut row_seen: Vec<bool> = Vec::new();
        let mut col_seen: Vec<bool> = Vec::new();
        for g in &self.groups {
            let rs = g.row_sums();
            let cs = g.col_sums();
            if row_seen.len() < rs.len() {
                row_seen.resize(rs.len(), false);
            }
            if col_seen.len() < cs.len() {
                col_seen.resize(cs.len(), false);
            }
            for (i, &v) in rs.iter().enumerate() {
                if v > 0 {
                    row_seen[i] = true;
                }
            }
            for (j, &v) in cs.iter().enumerate() {
                if v > 0 {
                    col_seen[j] = true;
                }
            }
        }
        let r = row_seen.iter().filter(|&&b| b).count().max(1);
        let c = col_seen.iter().filter(|&&b| b).count().max(1);
        ((r - 1) * (c - 1) * self.groups.len().max(1)) as f64
    }

    /// The MIT group-sampling weights of §5:
    /// `w_z = Pr(z)·max(H(X|Z=z), H(Y|Z=z))` — a group whose weight is
    /// ≈0 cannot move the p-value.
    pub fn group_weights(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let n = self.total as f64;
        self.groups
            .iter()
            .map(|g| {
                let pz = g.total() as f64 / n;
                let hx = entropy_plugin(g.row_sums());
                let hy = entropy_plugin(g.col_sums());
                pz * hx.max(hy)
            })
            .collect()
    }

    /// Restricts to the given group indices.
    pub fn subset(&self, indices: &[usize]) -> Strata {
        let groups: Vec<CrossTab> = indices.iter().map(|&i| self.groups[i].clone()).collect();
        // Keep the *original* n so Pr(z) weights stay comparable with the
        // full-data statistic (dropped groups have ≈0 contribution).
        let mut s = Strata::new(groups);
        s.total = self.total;
        s
    }
}

/// Configuration for the permutation-based tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitConfig {
    /// Number of Monte-Carlo permutation samples `m`.
    pub permutations: usize,
    /// HyMIT switches to the χ² approximation when `df · beta ≤ n`
    /// (§6; β = 5 "is ideal").
    pub beta: f64,
    /// When `Some(k)`: restrict MIT to a weighted sample of at most `k`
    /// conditioning groups. `None` = exact MIT over all groups.
    pub group_sample: Option<usize>,
    /// When `Some(alpha)`: permutation tests launched through
    /// [`hymit`] may stop before all `m` permutations once the 95 %
    /// binomial CI around the running p-value excludes `alpha` — the
    /// accept/reject verdict can no longer change with more sampling.
    /// Termination is checked only at fixed batch boundaries (a pure
    /// function of `m`), so the decision — like every other output — is
    /// identical at any thread count. `None` (default) always runs the
    /// full `m`.
    ///
    /// Precedence under staging ([`MitConfig::staged`]): the rule
    /// applies *within* the final full-budget stage only, at its fixed
    /// global stream boundaries. Screening stages are shorter than the
    /// first early-stop boundary by construction, so the reduced
    /// budgets never have the rule applied on top of them — see
    /// [`StageSchedule`].
    pub early_stop: Option<f64>,
    /// When true (the default): jobs settled through the staged entry
    /// points ([`mit_batch`], [`mit_settle_one`]) run a cheap
    /// screening prefix of their permutation stream first and spend
    /// the full budget only on statements whose verdict is still
    /// reachable from both sides of `alpha` ([`StageSchedule`]).
    /// Verdicts are provably identical either way; `false` (or
    /// `HYPDB_MIT_STAGES=off`) pins the old single-stage path for
    /// debugging, like `HYPDB_PLAN_FORCE`. Direct calls ([`mit`],
    /// [`hymit`], [`mit_auto`]) are always single-stage — their
    /// p-values are reported verbatim, so they always earn the full
    /// budget's resolution.
    pub staged: bool,
}

impl Default for MitConfig {
    fn default() -> Self {
        MitConfig {
            permutations: 100,
            beta: beta_from_env(),
            group_sample: None,
            early_stop: None,
            staged: stages_enabled_from_env(),
        }
    }
}

/// Reads `HYPDB_MIT_BETA` (a positive float; unset or unparsable →
/// 5.0, the paper's recommendation). Raising β widens the HyMIT regime
/// in which the permutation test is preferred over the χ²
/// approximation — the CI smoke uses a large value to drive real
/// permutation work (and hence the staged screening path) on fixtures
/// small enough that the default would settle everything inline.
pub fn beta_from_env() -> f64 {
    match std::env::var("HYPDB_MIT_BETA") {
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(b) if b.is_finite() && b > 0.0 => b,
            _ => 5.0,
        },
        Err(_) => 5.0,
    }
}

/// Reads `HYPDB_MIT_STAGES` (`off`/`0`/`false`/`no` → single-stage,
/// anything else or unset → staged). Tests usually set
/// [`MitConfig::staged`] directly instead.
pub fn stages_enabled_from_env() -> bool {
    match std::env::var("HYPDB_MIT_STAGES") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

impl MitConfig {
    /// The paper's group-sampling rule of thumb: a sample of size
    /// proportional to `log |Π_Z(D)|` (§7.3). The constant is not given
    /// in the paper; `32·⌈ln g⌉` (floor 16) keeps the test powerful for
    /// the mid-size effects of Fig 5(a) while still sub-linear in the
    /// group count.
    pub fn auto_group_sample(num_groups: usize) -> usize {
        let g = num_groups.max(1) as f64;
        (32.0 * g.ln().ceil()).max(16.0) as usize
    }
}

fn binomial_ci(p: f64, m: usize) -> (f64, f64) {
    let half = 1.96 * (p * (1.0 - p) / m.max(1) as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

/// Wilson score interval — used for the early-termination decision,
/// where the Wald interval of [`binomial_ci`] would be useless: at
/// `p̂ ∈ {0, 1}` Wald collapses to zero width and would declare any
/// first batch "settled", while Wilson keeps an honest margin
/// (upper bound ≈ z²/n at zero observed hits).
fn wilson_ci(p: f64, m: usize) -> (f64, f64) {
    let n = m.max(1) as f64;
    let z2 = 1.96f64 * 1.96;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = 1.96 * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Asymptotic χ² (G) test of `I(X;Y|Z) = 0`: the statistic `2nÎ` is
/// χ²-distributed with [`Strata::dof`] degrees of freedom under the null.
pub fn chi2_test(strata: &Strata) -> TestOutcome {
    let stat = strata.cmi_plugin();
    let g = 2.0 * strata.total() as f64 * stat;
    let df = strata.dof();
    let p = if df == 0.0 { 1.0 } else { chi2_sf(g, df) };
    TestOutcome {
        statistic: stat,
        p_value: p,
        ci95: None,
        df: Some(df),
        method: TestMethod::ChiSquared,
        permutations: None,
    }
}

/// Number of permutations evaluated per work chunk. The chunk layout
/// (and hence every per-chunk RNG seed) is a pure function of `m`, so
/// the permutation ensemble is identical at any thread count. 16 (down
/// from the pre-staging 64) is the granularity of the staged screening
/// checkpoints: a stage budget must be a whole number of chunks for
/// the screened prefix to be a bit-exact prefix of the single-stage
/// stream (RNG consumption inside a chunk is group-major, so prefixes
/// only exist at chunk boundaries).
pub const PERM_CHUNK: usize = 16;

/// Chunks per early-termination decision batch. Decisions fall on
/// multiples of `PERM_CHUNK · EARLY_STOP_BATCH` = 256 completed
/// permutations — fixed points of the *whole* stream, independent of
/// the parallelism level and of any staged checkpoint, so a resumed
/// (escalated) run re-joins exactly the decision sequence the
/// single-stage run takes.
const EARLY_STOP_BATCH: usize = 16;

/// Deterministic staged budget schedule for one permutation job: a
/// strictly increasing list of cumulative permutation checkpoints
/// ending at the full budget `m`. Every checkpoint before the last is
/// a *screening* stage: the job evaluates its permutation stream up to
/// the checkpoint and settles there only when the full-budget verdict
/// at `alpha` is already implied — otherwise it escalates to the next
/// checkpoint, continuing the *same* chunk stream (nothing is
/// re-drawn, nothing is wasted).
///
/// The settle test is a conservative band at confidence 1, which is
/// what makes verdict identity a theorem rather than a probability:
/// with `hits` hits after `done` of `m` permutations,
///
/// * *decisively independent* iff `hits / m > alpha` — hits only grow,
///   so every completion (including any early-stop point) has
///   `p ≥ hits/m > alpha`;
/// * *decisively dependent* iff `(hits + m − done) / m ≤ alpha` — even
///   if every remaining permutation hit, every completion would have
///   `p ≤ alpha`;
/// * *near-alpha* otherwise → escalate.
///
/// Both bounds are monotone under IEEE rounding (single divisions of
/// exact integers), so the implied verdict equals the single-stage
/// float comparison bit for bit.
///
/// The schedule is derived solely from the statement seed, the strata
/// shape, and the [`MitConfig`] — never from the thread count or
/// timing — so the staged path is as deterministic as the single-stage
/// one. Derivation refuses to screen (returns a single-stage schedule)
/// when staging is off, when the budget is too small to be worth
/// splitting, and for *shattered* strata (effective dof 0): there the
/// permutation ensemble is degenerate and a screening verdict would
/// rest on no evidence, so stage 1 must not settle anything.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSchedule {
    /// Strictly increasing cumulative checkpoints; the last entry is
    /// the full budget `m`.
    checkpoints: Vec<usize>,
    /// Significance level the screening classification is exact for.
    alpha: f64,
}

impl StageSchedule {
    /// The pinned single-stage schedule: one checkpoint at the full
    /// budget, no screening.
    pub fn single(m: usize) -> StageSchedule {
        StageSchedule {
            checkpoints: vec![m],
            alpha: 0.0,
        }
    }

    /// Derives the schedule for one statement. Screening checkpoints
    /// sit at **every** whole-chunk boundary (see [`PERM_CHUNK`]) below
    /// the full budget: under prefix coupling the dense ladder is
    /// optimal in permutation work. An escalated job costs exactly `m`
    /// permutations no matter how many checkpoints it passed — every
    /// checkpoint is a prefix of the same seeded stream — so extra
    /// checkpoints only ever *save* work: each settled job stops at the
    /// earliest point its full-budget verdict is implied. When the
    /// early-termination rule is armed the ladder stays strictly below
    /// the first early-stop decision boundary, so a single-stage run
    /// can never have stopped at fewer permutations than a screening
    /// checkpoint consumed (stage budgets never have the rule applied
    /// on top of them). The statement seed is part of the signature so
    /// a future derivation may jitter the ladder per statement; the
    /// dense ladder has nothing left to jitter, so the current
    /// derivation does not consume it.
    pub fn derive(_seed: u64, strata: &Strata, cfg: &MitConfig, alpha: f64) -> StageSchedule {
        let m = cfg.permutations;
        if !cfg.staged || m <= 2 * PERM_CHUNK || strata.dof() == 0.0 {
            return StageSchedule::single(m);
        }
        let cap = if cfg.early_stop.is_some() {
            EARLY_STOP_BATCH * PERM_CHUNK
        } else {
            m
        };
        let mut checkpoints: Vec<usize> = (1..)
            .map(|c| c * PERM_CHUNK)
            .take_while(|&cp| cp < m && cp < cap)
            .collect();
        checkpoints.push(m);
        StageSchedule { checkpoints, alpha }
    }

    /// All cumulative checkpoints, ascending; the last is the budget.
    pub fn stages(&self) -> &[usize] {
        &self.checkpoints
    }

    /// The screening checkpoints (everything before the full budget).
    fn screening(&self) -> &[usize] {
        &self.checkpoints[..self.checkpoints.len() - 1]
    }

    /// True when the schedule has no screening stage (the pinned
    /// single-stage path).
    pub fn is_single(&self) -> bool {
        self.checkpoints.len() == 1
    }

    /// Significance level the screening classification settles against.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// The MIT permutation test (Alg 2): for each conditioning group, draw
/// `m` contingency tables with the observed marginals via Patefield's
/// algorithm, aggregate the per-group MIs with weights `Pr(z)` into `m`
/// permutation statistics, and report the fraction ≥ the observed CMI
/// together with a 95 % binomial confidence interval.
///
/// The `m` permutations are evaluated in fixed-size chunks on the
/// global worker pool ([`hypdb_exec::global_threads`]); each chunk owns
/// an RNG seeded from one master draw off `rng` plus the chunk index,
/// so the outcome is bit-identical at any thread count.
pub fn mit(strata: &Strata, m: usize, rng: &mut impl Rng) -> TestOutcome {
    mit_impl(strata, m, None, rng, TestMethod::Mit)
}

/// [`mit`] with the optional deterministic early-termination rule of
/// [`MitConfig::early_stop`] (callers that hold a config — the data
/// oracle, HyMIT — route through this so the knob is honoured).
pub fn mit_early(
    strata: &Strata,
    m: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    mit_impl(strata, m, early_stop, rng, TestMethod::Mit)
}

/// [`mit_sampled`] with the optional deterministic early-termination
/// rule of [`MitConfig::early_stop`].
pub fn mit_sampled_early(
    strata: &Strata,
    m: usize,
    k: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    mit_sampled_impl(strata, m, k, early_stop, rng)
}

/// The chunked permutation-stream evaluator shared by the single-stage
/// and staged paths: owns the observed statistic, the one master seed,
/// and the non-degenerate group marginals, and counts permutation hits
/// over any whole-chunk span of the stream. Because chunk `i` is
/// always seeded `mix(master, i)`, a span's hit count is a pure
/// function of `(strata, master, span)` — which is what lets a staged
/// run stop at a checkpoint and later *continue* the very same stream.
struct ChunkWalker {
    s0: f64,
    master: u64,
    groups: Vec<(Vec<u64>, Vec<u64>, f64)>,
    m: usize,
}

impl ChunkWalker {
    /// Consumes one master draw off `rng` (exactly as every
    /// permutation path always has) and precomputes group marginals.
    /// Marginals of degenerate groups are dropped — their MI is
    /// identically 0 under any permutation.
    fn new(strata: &Strata, m: usize, rng: &mut impl Rng) -> ChunkWalker {
        assert!(m > 0, "need at least one permutation");
        let s0 = strata.cmi_plugin();
        let n = strata.total() as f64;
        let master = rng.next_u64();
        let groups: Vec<(Vec<u64>, Vec<u64>, f64)> = strata
            .groups()
            .iter()
            .filter_map(|g| {
                if n == 0.0 {
                    return None;
                }
                let compact = g.compact();
                let rows = compact.row_sums();
                let cols = compact.col_sums();
                let pz = g.total() as f64 / n;
                (rows.len() >= 2 && cols.len() >= 2 && pz > 0.0).then_some((rows, cols, pz))
            })
            .collect();
        ChunkWalker {
            s0,
            master,
            groups,
            m,
        }
    }

    fn chunks(&self) -> usize {
        self.m.div_ceil(PERM_CHUNK)
    }

    fn run_chunk(&self, range: std::ops::Range<usize>) -> usize {
        let chunk_idx = (range.start / PERM_CHUNK) as u64;
        let mut rng = StdRng::seed_from_u64(seed::mix(self.master, chunk_idx));
        let mut stats = vec![0.0f64; range.len()];
        for (rows, cols, pz) in &self.groups {
            for s in stats.iter_mut() {
                let t = sample_table(&mut rng, rows, cols);
                *s += pz * t.mutual_information();
            }
        }
        // Strict "≥" with a small tolerance: the observed table is
        // itself a draw from the null ensemble, so ties count towards
        // the p-value.
        let tol = 1e-12;
        stats.iter().filter(|&&s| s >= self.s0 - tol).count()
    }

    /// Hits over chunks `[from, to)`, fanned out on the current pool.
    fn run_span(&self, from: usize, to: usize) -> usize {
        let pool = ThreadPool::current();
        let partials = pool.map_indices(to - from, |i| {
            let lo = (from + i) * PERM_CHUNK;
            self.run_chunk(lo..(lo + PERM_CHUNK).min(self.m))
        });
        partials.iter().sum()
    }

    /// Continues the stream from `from_chunk` (with `hits` already
    /// counted over the prefix) to the full budget, honouring the
    /// early-termination rule at its fixed boundaries. The boundaries
    /// are positions of the *whole* stream (multiples of
    /// [`EARLY_STOP_BATCH`] chunks), so a staged run resuming here
    /// re-joins exactly the decision sequence a from-zero run takes.
    fn run_to_completion(
        &self,
        mut hits: usize,
        from_chunk: usize,
        early_stop: Option<f64>,
    ) -> (usize, usize) {
        let chunks = self.chunks();
        match early_stop {
            None => {
                hits += self.run_span(from_chunk, chunks);
                (hits, self.m)
            }
            Some(alpha) => {
                let mut next = from_chunk;
                let mut done = (from_chunk * PERM_CHUNK).min(self.m);
                while next < chunks {
                    let batch_end = ((next / EARLY_STOP_BATCH + 1) * EARLY_STOP_BATCH).min(chunks);
                    hits += self.run_span(next, batch_end);
                    done = (batch_end * PERM_CHUNK).min(self.m);
                    next = batch_end;
                    if done < self.m {
                        // Stop once the verdict is settled: alpha
                        // outside the Wilson 95 % CI of the running
                        // p-value.
                        let p = hits as f64 / done as f64;
                        let (lo95, hi95) = wilson_ci(p, done);
                        if lo95 > alpha || hi95 < alpha {
                            break;
                        }
                    }
                }
                (hits, done)
            }
        }
    }

    fn outcome(&self, hits: usize, done: usize, method: TestMethod) -> TestOutcome {
        let p = hits as f64 / done as f64;
        TestOutcome {
            statistic: self.s0,
            p_value: p,
            ci95: Some(binomial_ci(p, done)),
            df: None,
            method,
            permutations: Some(done),
        }
    }
}

fn mit_impl(
    strata: &Strata,
    m: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
    method: TestMethod,
) -> TestOutcome {
    let walker = ChunkWalker::new(strata, m, rng);
    let (hits, done) = walker.run_to_completion(0, 0, early_stop);
    walker.outcome(hits, done, method)
}

/// One statement's permutation-test job within a [`mit_batch`] call:
/// its stratified summary, its budget, its staged schedule, and — the
/// key to batching without changing a single verdict — its *own* RNG
/// seed.
#[derive(Debug, Clone)]
pub struct MitJob {
    /// Stratified cross tabs of `(X, Y)` given `Z`.
    pub strata: Strata,
    /// Monte-Carlo budget `m`.
    pub permutations: usize,
    /// `Some(k)`: weighted sample of at most `k` conditioning groups
    /// (routes through [`mit_sampled_early`]); `None`: exact MIT.
    pub group_sample: Option<usize>,
    /// Deterministic early termination at fixed batch boundaries
    /// ([`MitConfig::early_stop`]).
    pub early_stop: Option<f64>,
    /// Per-statement RNG seed. The caller derives it from the statement
    /// alone (never from batch position), so the outcome is a pure
    /// function of `(strata, budget, schedule, seed)`.
    pub seed: u64,
    /// Staged budget schedule ([`StageSchedule::derive`]);
    /// [`StageSchedule::single`] pins the one-stage path.
    pub schedule: StageSchedule,
}

impl MitJob {
    /// Predicted full-budget settle cost (permutation budget × total
    /// stratified mass) — the fan-out ordering key.
    fn cost(&self) -> u64 {
        self.permutations as u64 * self.strata.total().max(1)
    }
}

/// Per-job settle facts reported by [`mit_batch_staged`] /
/// [`mit_settle_one`] alongside the outcome — the feedstock of the
/// `hypdb_mit_*` counters and nothing else (never any report byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// Number of stages in the job's schedule (1 = pinned
    /// single-stage).
    pub stages: usize,
    /// 0-based index of the stage the verdict settled at; equals
    /// `stages − 1` when the job ran its full budget (single-stage or
    /// escalated).
    pub stage: usize,
    /// Permutations actually evaluated.
    pub permutations: usize,
}

impl StageReport {
    /// True when a screening stage settled the verdict (the job never
    /// paid its full budget).
    pub fn settled_early(&self) -> bool {
        self.stages > 1 && self.stage + 1 < self.stages
    }

    /// True when the job was screened but escalated to the full
    /// budget.
    pub fn escalated(&self) -> bool {
        self.stages > 1 && self.stage + 1 == self.stages
    }
}

/// Resumable evaluation state of a screened permutation job: the chunk
/// walker plus the prefix already counted. Produced by [`mit_stage1`]
/// when a job is near-alpha, consumed by [`mit_resume`].
pub struct MitPartial {
    walker: ChunkWalker,
    hits: usize,
    chunks_done: usize,
    method: TestMethod,
}

impl MitPartial {
    /// Permutations evaluated so far (the screening work already paid).
    pub fn permutations_done(&self) -> usize {
        (self.chunks_done * PERM_CHUNK).min(self.walker.m)
    }
}

/// Result of a job's screening pass ([`mit_stage1`]).
pub enum StagePass {
    /// The verdict is settled: either a screening checkpoint classified
    /// it decisively, or the schedule was single-stage and the full
    /// budget ran.
    Settled {
        /// The finished test outcome for the job.
        outcome: TestOutcome,
        /// Index of the settling checkpoint in the schedule.
        stage: usize,
    },
    /// Near-alpha after every screening checkpoint — the job must
    /// escalate ([`mit_resume`]) to reach a verdict.
    Escalate(MitPartial),
}

/// Runs one job's screening stages (or, for a single-stage schedule,
/// its whole budget). Group sampling is resolved first with the exact
/// RNG consumption order of the single-stage path, so the evaluated
/// ensemble is the same stream — a screened prefix is bit-for-bit the
/// prefix of what the single-stage run evaluates.
pub fn mit_stage1(job: &MitJob) -> StagePass {
    let mut rng = StdRng::seed_from_u64(job.seed);
    let owned;
    let (eval, method): (&Strata, TestMethod) = match job.group_sample {
        Some(k) if k < job.strata.num_groups() => {
            let weights = job.strata.group_weights();
            let picked = weighted_indices_without_replacement(&mut rng, &weights, k);
            owned = job.strata.subset(&picked);
            (&owned, TestMethod::MitSampled)
        }
        Some(_) => (&job.strata, TestMethod::MitSampled),
        None => (&job.strata, TestMethod::Mit),
    };
    let walker = ChunkWalker::new(eval, job.permutations, &mut rng);
    if job.schedule.is_single() {
        let (hits, done) = walker.run_to_completion(0, 0, job.early_stop);
        return StagePass::Settled {
            outcome: walker.outcome(hits, done, method),
            stage: 0,
        };
    }
    let m = job.permutations;
    let alpha = job.schedule.alpha();
    let mut hits = 0usize;
    let mut chunk = 0usize;
    for (stage, &checkpoint) in job.schedule.screening().iter().enumerate() {
        hits += walker.run_span(chunk, checkpoint / PERM_CHUNK);
        chunk = checkpoint / PERM_CHUNK;
        // The confidence-1 band of [`StageSchedule`]: settle only when
        // the full-budget verdict is already implied by the prefix.
        let independent = hits as f64 / m as f64 > alpha;
        let dependent = (hits + (m - checkpoint)) as f64 / m as f64 <= alpha;
        if independent || dependent {
            return StagePass::Settled {
                outcome: walker.outcome(hits, checkpoint, method),
                stage,
            };
        }
    }
    StagePass::Escalate(MitPartial {
        walker,
        hits,
        chunks_done: chunk,
        method,
    })
}

/// Escalates a near-alpha job to its full budget by continuing the
/// remaining chunks of the same stream. The result — hit count, stop
/// point under `early_stop`, every byte of the outcome — is identical
/// to the single-stage run, because the prefix was the same chunks
/// with the same seeds and the early-stop boundaries are positions of
/// the whole stream.
pub fn mit_resume(partial: &MitPartial, early_stop: Option<f64>) -> TestOutcome {
    let (hits, done) =
        partial
            .walker
            .run_to_completion(partial.hits, partial.chunks_done, early_stop);
    partial.walker.outcome(hits, done, partial.method)
}

/// Settles one job start to finish — screening plus, if needed,
/// escalation. This is the call-at-a-time staged entry point; the
/// batched one is [`mit_batch_staged`], and they agree bit for bit.
pub fn mit_settle_one(job: &MitJob) -> (TestOutcome, StageReport) {
    let stages = job.schedule.stages().len();
    match mit_stage1(job) {
        StagePass::Settled { outcome, stage } => {
            let permutations = outcome.permutations.unwrap_or(0);
            (
                outcome,
                StageReport {
                    stages,
                    stage,
                    permutations,
                },
            )
        }
        StagePass::Escalate(partial) => {
            let outcome = mit_resume(&partial, job.early_stop);
            let permutations = outcome.permutations.unwrap_or(0);
            (
                outcome,
                StageReport {
                    stages,
                    stage: stages - 1,
                    permutations,
                },
            )
        }
    }
}

/// Evaluates a batch of permutation tests on the global worker pool —
/// the statement-group entry point of the multi-query planner: a
/// caller that has grouped many independence statements by conditioning
/// set builds their strata from one shared contingency pass and then
/// settles all of them here.
///
/// Each job seeds its own `StdRng` from `job.seed` and runs exactly the
/// procedure the call-at-a-time path runs, so the returned outcomes are
/// **byte-identical** to evaluating the jobs one at a time, in any
/// order, at any thread count — grouping is a pure performance choice.
///
/// Staged jobs settle in two fan-outs (each a `mit_stage` span under
/// `mit_settle`): first every job's screening pass, then — only for
/// the near-alpha survivors — full-budget escalation. Within each
/// fan-out jobs run in descending predicted-cost order (permutation
/// budget × total stratified mass) so the heaviest tests start first
/// and stragglers don't serialise the tail; outcomes are scattered
/// back to submission order, so the schedule is invisible to callers.
pub fn mit_batch(jobs: &[MitJob]) -> Vec<TestOutcome> {
    mit_batch_staged(jobs)
        .into_iter()
        .map(|(out, _)| out)
        .collect()
}

/// [`mit_batch`] with per-job [`StageReport`]s (the counter feedstock).
pub fn mit_batch_staged(jobs: &[MitJob]) -> Vec<(TestOutcome, StageReport)> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].cost()), i));
    hypdb_obs::span("mit_settle", || {
        let passes: Vec<StagePass> = hypdb_obs::span("mit_stage", || {
            ThreadPool::current().parallel_map(&order, |_, &i| {
                let tick = hypdb_obs::Tick::now();
                let pass = mit_stage1(&jobs[i]);
                hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
                pass
            })
        });
        // Escalate the survivors together; `order` positions are
        // already cost-descending, so the heaviest escalations lead.
        let survivors: Vec<usize> = passes
            .iter()
            .enumerate()
            .filter_map(|(k, p)| matches!(p, StagePass::Escalate(_)).then_some(k))
            .collect();
        let resumed: Vec<TestOutcome> = if survivors.is_empty() {
            Vec::new()
        } else {
            hypdb_obs::span("mit_stage", || {
                ThreadPool::current().parallel_map(&survivors, |_, &k| {
                    let StagePass::Escalate(partial) = &passes[k] else {
                        unreachable!("survivor positions hold partials");
                    };
                    let tick = hypdb_obs::Tick::now();
                    let out = mit_resume(partial, jobs[order[k]].early_stop);
                    hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
                    out
                })
            })
        };
        let mut resumed = resumed.into_iter();
        let mut results: Vec<Option<(TestOutcome, StageReport)>> = vec![None; jobs.len()];
        for (k, pass) in passes.into_iter().enumerate() {
            let i = order[k];
            let stages = jobs[i].schedule.stages().len();
            let settled = match pass {
                StagePass::Settled { outcome, stage } => {
                    let permutations = outcome.permutations.unwrap_or(0);
                    (
                        outcome,
                        StageReport {
                            stages,
                            stage,
                            permutations,
                        },
                    )
                }
                StagePass::Escalate(_) => {
                    let outcome = resumed.next().expect("one resume per survivor");
                    let permutations = outcome.permutations.unwrap_or(0);
                    (
                        outcome,
                        StageReport {
                            stages,
                            stage: stages - 1,
                            permutations,
                        },
                    )
                }
            };
            results[i] = Some(settled);
        }
        results
            .into_iter()
            .map(|o| o.expect("every job settled"))
            .collect()
    })
}

/// MIT with automatic group sampling: exact over all conditioning
/// groups when their number is small, weighted-sampled otherwise. This
/// is the procedure §7.1 prescribes for testing the significance of
/// query-answer differences (1 000 permutations in the paper).
pub fn mit_auto(strata: &Strata, m: usize, rng: &mut impl Rng) -> TestOutcome {
    let g = strata.num_groups();
    if g > 64 {
        mit_sampled(strata, m, MitConfig::auto_group_sample(g), rng)
    } else {
        mit(strata, m, rng)
    }
}

/// MIT restricted to a weighted sample of at most `k` conditioning
/// groups (weights from [`Strata::group_weights`]); both the observed
/// and permuted statistics are computed on the sampled groups so they
/// remain comparable.
pub fn mit_sampled(strata: &Strata, m: usize, k: usize, rng: &mut impl Rng) -> TestOutcome {
    mit_sampled_impl(strata, m, k, None, rng)
}

fn mit_sampled_impl(
    strata: &Strata,
    m: usize,
    k: usize,
    early_stop: Option<f64>,
    rng: &mut impl Rng,
) -> TestOutcome {
    if k >= strata.num_groups() {
        return mit_impl(strata, m, early_stop, rng, TestMethod::MitSampled);
    }
    let weights = strata.group_weights();
    let picked = weighted_indices_without_replacement(rng, &weights, k);
    let sub = strata.subset(&picked);
    mit_impl(&sub, m, early_stop, rng, TestMethod::MitSampled)
}

/// HyMIT (§6): χ² when the sample is large relative to the degrees of
/// freedom (`df·β ≤ n`, with df measured by the paper's formula so that
/// singleton conditioning groups register as sparseness), MIT otherwise
/// — with automatic group sampling when the conditioning support is
/// large.
pub fn hymit(strata: &Strata, cfg: &MitConfig, rng: &mut impl Rng) -> TestOutcome {
    let df = strata.paper_dof();
    let n = strata.total() as f64;
    if df == 0.0 || df * cfg.beta <= n {
        return chi2_test(strata);
    }
    match cfg.group_sample {
        Some(k) => mit_sampled_impl(strata, cfg.permutations, k, cfg.early_stop, rng),
        None => {
            let g = strata.num_groups();
            if g > 64 {
                mit_sampled_impl(
                    strata,
                    cfg.permutations,
                    MitConfig::auto_group_sample(g),
                    cfg.early_stop,
                    rng,
                )
            } else {
                mit_impl(
                    strata,
                    cfg.permutations,
                    cfg.early_stop,
                    rng,
                    TestMethod::Mit,
                )
            }
        }
    }
}

/// The naive permutation test MIT replaces: physically reshuffle the `X`
/// column within each `Z` group `m` times and recompute the CMI on the
/// raw rows. `x`/`y` are dictionary codes, `groups` assigns each row to
/// a conditioning group. Complexity `O(m·n)` — kept as the baseline for
/// the Fig 6(b) "orders of magnitude" comparison.
pub fn shuffle_test(
    x: &[u32],
    y: &[u32],
    groups: &[u32],
    m: usize,
    rng: &mut impl Rng,
) -> TestOutcome {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), groups.len());
    assert!(m > 0, "need at least one permutation");
    let n = x.len();
    let r = x.iter().copied().max().map_or(0, |v| v as usize + 1);
    let c = y.iter().copied().max().map_or(0, |v| v as usize + 1);
    let g = groups.iter().copied().max().map_or(0, |v| v as usize + 1);

    // Partition row indices by group.
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (row, &gr) in groups.iter().enumerate() {
        by_group[gr as usize].push(row);
    }

    let build = |xs: &[u32]| -> Strata {
        let mut tabs: Vec<CrossTab> = (0..g).map(|_| CrossTab::zeros(r, c)).collect();
        for row in 0..n {
            tabs[groups[row] as usize].add(xs[row] as usize, y[row] as usize, 1);
        }
        Strata::new(tabs)
    };

    let s0 = build(x).cmi_plugin();
    let mut xs: Vec<u32> = x.to_vec();
    let mut hits = 0usize;
    let tol = 1e-12;
    for _ in 0..m {
        // Shuffle X within each group (destroys X–Y coupling, preserves
        // all marginals).
        for rows in &by_group {
            // Fisher–Yates over the positions of this group.
            let mut vals: Vec<u32> = rows.iter().map(|&i| xs[i]).collect();
            shuffle(rng, &mut vals);
            for (&i, v) in rows.iter().zip(vals) {
                xs[i] = v;
            }
        }
        if build(&xs).cmi_plugin() >= s0 - tol {
            hits += 1;
        }
    }
    let p = hits as f64 / m as f64;
    TestOutcome {
        statistic: s0,
        p_value: p,
        ci95: Some(binomial_ci(p, m)),
        df: None,
        method: TestMethod::Shuffle,
        permutations: Some(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2018)
    }

    /// Strongly dependent 2x2: diagonal mass.
    fn dependent_tab() -> CrossTab {
        CrossTab::new(2, 2, vec![45, 5, 5, 45])
    }

    /// Independent 2x2: product of (1/2,1/2)x(1/2,1/2).
    fn independent_tab() -> CrossTab {
        CrossTab::new(2, 2, vec![25, 25, 25, 25])
    }

    #[test]
    fn chi2_detects_dependence() {
        let s = Strata::single(dependent_tab());
        let out = chi2_test(&s);
        assert!(out.p_value < 0.001, "p={}", out.p_value);
        assert!(out.dependent(0.01));
        assert_eq!(out.method, TestMethod::ChiSquared);
        assert_eq!(out.df, Some(1.0));
    }

    #[test]
    fn chi2_accepts_independence() {
        let s = Strata::single(independent_tab());
        let out = chi2_test(&s);
        assert!(out.p_value > 0.9, "p={}", out.p_value);
        assert!(out.independent(0.01));
    }

    #[test]
    fn mit_detects_dependence() {
        let s = Strata::single(dependent_tab());
        let out = mit(&s, 400, &mut rng());
        assert!(out.p_value < 0.01, "p={}", out.p_value);
        let (lo, hi) = out.ci95.unwrap();
        assert!(lo <= out.p_value && out.p_value <= hi);
    }

    #[test]
    fn mit_accepts_independence() {
        let s = Strata::single(independent_tab());
        let out = mit(&s, 400, &mut rng());
        assert!(out.p_value > 0.5, "p={}", out.p_value);
    }

    #[test]
    fn mit_conditional_simpson() {
        // Within each stratum X ⊥ Y (exact product tables); pooling the
        // strata induces a strong marginal dependence via the stratum
        // variable (a confounder).
        let g_a = CrossTab::new(2, 2, vec![81, 9, 9, 1]); // rows p=.9, cols p=.9
        let g_b = CrossTab::new(2, 2, vec![1, 9, 9, 81]);
        let cond = Strata::new(vec![g_a.clone(), g_b.clone()]);
        let out_cond = mit(&cond, 300, &mut rng());
        assert!(out_cond.p_value > 0.1, "conditional p={}", out_cond.p_value);

        // Pooled table is dependent.
        let mut pooled = CrossTab::zeros(2, 2);
        for t in [&g_a, &g_b] {
            for i in 0..2 {
                for j in 0..2 {
                    pooled.add(i, j, t.get(i, j));
                }
            }
        }
        let out_marg = chi2_test(&Strata::single(pooled));
        assert!(out_marg.p_value < 0.05, "marginal p={}", out_marg.p_value);
    }

    #[test]
    fn mit_and_chi2_agree_on_clear_cases() {
        let mut r = rng();
        for tab in [dependent_tab(), independent_tab()] {
            let s = Strata::single(tab);
            let a = chi2_test(&s).p_value < 0.01;
            let b = mit(&s, 500, &mut r).p_value < 0.01;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mit_sampled_matches_mit_when_k_large() {
        let s = Strata::new(vec![dependent_tab(), dependent_tab()]);
        let a = mit_sampled(&s, 300, 10, &mut rng());
        assert!(a.p_value < 0.01);
        assert_eq!(a.method, TestMethod::MitSampled);
    }

    #[test]
    fn mit_sampled_restricts_groups() {
        // 40 groups; only 2 carry signal, but they carry most weight.
        let mut groups = vec![CrossTab::new(2, 2, vec![2, 1, 1, 2]); 38];
        groups.push(CrossTab::new(2, 2, vec![200, 20, 20, 200]));
        groups.push(CrossTab::new(2, 2, vec![200, 20, 20, 200]));
        let s = Strata::new(groups);
        let out = mit_sampled(&s, 200, 6, &mut rng());
        assert!(out.p_value < 0.05, "p={}", out.p_value);
    }

    #[test]
    fn hymit_switches_method() {
        // Large n, tiny df: chooses chi2.
        let s = Strata::single(CrossTab::new(2, 2, vec![500, 480, 520, 500]));
        let out = hymit(&s, &MitConfig::default(), &mut rng());
        assert_eq!(out.method, TestMethod::ChiSquared);

        // Tiny n relative to df: chooses a permutation method.
        let sparse = Strata::new(vec![CrossTab::new(4, 4, {
            let mut v = vec![0u64; 16];
            v[0] = 2;
            v[5] = 1;
            v[10] = 2;
            v[15] = 1;
            v
        })]);
        let out = hymit(&sparse, &MitConfig::default(), &mut rng());
        assert!(matches!(
            out.method,
            TestMethod::Mit | TestMethod::MitSampled
        ));
    }

    #[test]
    fn shuffle_test_agrees_with_mit() {
        // Construct raw data matching a stratified table and compare.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        // group 0: dependent; group 1: independent-ish
        for (g, tab) in [(0u32, dependent_tab()), (1u32, independent_tab())] {
            for i in 0..2u32 {
                for j in 0..2u32 {
                    for _ in 0..tab.get(i as usize, j as usize) {
                        x.push(i);
                        y.push(j);
                        z.push(g);
                    }
                }
            }
        }
        let mut r = rng();
        let out = shuffle_test(&x, &y, &z, 200, &mut r);
        assert!(out.p_value < 0.01, "p={}", out.p_value);
        assert_eq!(out.method, TestMethod::Shuffle);

        // Statistic must equal the strata-based CMI exactly.
        let s = Strata::new(vec![dependent_tab(), independent_tab()]);
        assert!((out.statistic - s.cmi_plugin()).abs() < 1e-12);
    }

    #[test]
    fn strata_accessors() {
        let s = Strata::new(vec![dependent_tab(), CrossTab::zeros(2, 2)]);
        assert_eq!(s.num_groups(), 1); // empty group dropped
        assert_eq!(s.total(), 100);
        assert_eq!(s.groups().len(), 1);
        let w = s.group_weights();
        assert_eq!(w.len(), 1);
        assert!(w[0] > 0.0);
    }

    #[test]
    fn auto_group_sample_floor() {
        assert!(MitConfig::auto_group_sample(1) >= 16);
        assert!(MitConfig::auto_group_sample(100_000) >= 16);
        assert!(
            MitConfig::auto_group_sample(100_000) < 1_000,
            "log-scaled sample stays sub-linear"
        );
    }

    #[test]
    fn mit_auto_dispatch() {
        // Few groups: exact MIT. Many groups: sampled.
        let small = Strata::new(vec![dependent_tab(); 4]);
        let out = mit_auto(&small, 100, &mut rng());
        assert_eq!(out.method, TestMethod::Mit);
        assert!(out.p_value < 0.01);
        // Exact product tables in every group: the observed CMI is 0.
        let many = Strata::new(vec![CrossTab::new(2, 2, vec![4, 4, 4, 4]); 200]);
        let out = mit_auto(&many, 100, &mut rng());
        assert_eq!(out.method, TestMethod::MitSampled);
        assert!(out.p_value > 0.5, "null data, p={}", out.p_value);
    }

    #[test]
    fn paper_dof_counts_singleton_groups() {
        // 100 singleton groups: effective dof = 0, paper dof = 100.
        let mut groups = Vec::new();
        for i in 0..100u64 {
            let mut t = CrossTab::zeros(2, 2);
            t.add((i % 2) as usize, ((i / 2) % 2) as usize, 1);
            groups.push(t);
        }
        let s = Strata::new(groups);
        assert_eq!(s.dof(), 0.0);
        assert_eq!(s.paper_dof(), 100.0);
        // HyMIT must therefore refuse the χ² shortcut (df·β = 500 > 100).
        let out = hymit(&s, &MitConfig::default(), &mut rng());
        assert_ne!(out.method, TestMethod::ChiSquared);
    }

    #[test]
    fn mit_is_calibrated_under_the_null() {
        // Product tables: the p-value distribution should be roughly
        // uniform; check the rejection rate at alpha = 0.1.
        let mut r = rng();
        let mut rejections = 0;
        let trials = 200;
        for i in 0..trials {
            // Resample a null dataset each trial.
            let t = crate::patefield::sample_table(&mut r, &[40, 60], &[55, 45]);
            let s = Strata::single(t);
            let out = mit(&s, 60, &mut StdRng::seed_from_u64(i));
            if out.p_value <= 0.1 {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            rate < 0.2,
            "null rejection rate at alpha=0.1 is {rate} (should be ~0.1)"
        );
    }

    #[test]
    fn mit_outcome_is_thread_count_invariant() {
        // The tentpole invariant: same seed, any worker count ->
        // byte-identical statistic, p-value, and CI bounds. Exercises
        // multiple chunks (m > PERM_CHUNK) and several groups.
        let s = Strata::new(vec![
            dependent_tab(),
            independent_tab(),
            CrossTab::new(2, 2, vec![30, 20, 25, 25]),
        ]);
        let run = |threads: usize| {
            hypdb_exec::set_global_threads(threads);
            let out = mit(&s, 333, &mut rng());
            hypdb_exec::set_global_threads(0);
            out
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn early_stop_settles_clear_verdicts_deterministically() {
        // Shattered data forces hymit onto the MIT path; the observed
        // CMI of 0 makes every permutation a hit, so the running
        // p-value pins to 1 and the CI excludes alpha at the first
        // decision point. The stop must fire at the same permutation
        // count for every thread count.
        let mut groups = Vec::new();
        for i in 0..100u64 {
            let mut t = CrossTab::zeros(2, 2);
            t.add((i % 2) as usize, ((i / 2) % 2) as usize, 1);
            groups.push(t);
        }
        let s = Strata::new(groups);
        let cfg = MitConfig {
            permutations: 2_000,
            early_stop: Some(0.01),
            ..MitConfig::default()
        };
        let run = |threads: usize| {
            hypdb_exec::set_global_threads(threads);
            let out = hymit(&s, &cfg, &mut rng());
            hypdb_exec::set_global_threads(0);
            out
        };
        let base = run(1);
        assert_ne!(base.method, TestMethod::ChiSquared);
        let done = base.permutations.expect("permutation test");
        assert!(done < 2_000, "clear verdict must stop early ({done})");
        assert_eq!(base.p_value, 1.0);
        for threads in [2, 5] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
        // Without early_stop the same strata runs the full budget.
        let full = hymit(
            &s,
            &MitConfig {
                permutations: 2_000,
                ..MitConfig::default()
            },
            &mut rng(),
        );
        assert_eq!(full.permutations, Some(2_000));
    }

    #[test]
    fn wilson_bounds_stay_honest_at_the_extremes() {
        // Wald collapses to zero width at p̂ = 0/1; Wilson must not.
        let (_, hi_256) = wilson_ci(0.0, 256);
        assert!(hi_256 > 0.01, "0/256 is not yet evidence for p < 0.01");
        let (_, hi_512) = wilson_ci(0.0, 512);
        assert!(hi_512 < 0.01, "0/512 is");
        let (lo, _) = wilson_ci(1.0, 256);
        assert!(lo > 0.9 && lo < 1.0);
    }

    #[test]
    fn early_stop_zero_hits_waits_past_first_batch() {
        // Strong dependence: the observed CMI beats essentially every
        // permutation, so hits stay at 0. The Wald interval would call
        // that settled after the very first batch (256 perms); the
        // Wilson rule must keep sampling until its upper bound clears
        // alpha = 0.01 (which takes ≥ 385 permutations at zero hits).
        let s = Strata::single(dependent_tab());
        let out = mit_early(&s, 2_000, Some(0.01), &mut rng());
        let done = out.permutations.expect("permutation test");
        assert!(done > 256, "stopped too eagerly at {done}");
        assert!(done < 2_000, "clear dependence should still stop early");
        assert_eq!(out.p_value, 0.0);
    }

    #[test]
    fn mit_batch_matches_call_at_a_time() {
        // Batch evaluation must reproduce every sequential outcome
        // byte-for-byte: same per-job seed, same procedure — at any
        // thread count and regardless of batch composition.
        let mut r = rng();
        let jobs: Vec<MitJob> = (0..7)
            .map(|i| {
                let groups: Vec<CrossTab> = (0..(2 + i % 3))
                    .map(|_| sample_table(&mut r, &[20, 30], &[25, 25]))
                    .collect();
                MitJob {
                    strata: Strata::new(groups),
                    permutations: 100 + 64 * i,
                    group_sample: (i % 2 == 0).then_some(2),
                    early_stop: (i % 3 == 0).then_some(0.01),
                    seed: 0xBA7C_4000 + i as u64,
                    schedule: StageSchedule::single(100 + 64 * i),
                }
            })
            .collect();
        let sequential: Vec<TestOutcome> = jobs
            .iter()
            .map(|job| {
                let mut rng = StdRng::seed_from_u64(job.seed);
                match job.group_sample {
                    None => mit_early(&job.strata, job.permutations, job.early_stop, &mut rng),
                    Some(k) => mit_sampled_early(
                        &job.strata,
                        job.permutations,
                        k,
                        job.early_stop,
                        &mut rng,
                    ),
                }
            })
            .collect();
        for threads in [1, 4] {
            hypdb_exec::set_global_threads(threads);
            let batched = mit_batch(&jobs);
            hypdb_exec::set_global_threads(0);
            assert_eq!(batched, sequential, "threads={threads}");
        }
        // A permuted batch returns the same outcomes in the new order.
        let rev: Vec<MitJob> = jobs.iter().rev().cloned().collect();
        let rev_out = mit_batch(&rev);
        for (a, b) in rev_out.iter().zip(sequential.iter().rev()) {
            assert_eq!(a, b, "batch order must not matter");
        }
    }

    /// A staged job over the given strata with the default budget and
    /// a derived schedule at alpha = 0.01.
    fn staged_job(strata: Strata, m: usize, seed: u64) -> MitJob {
        let cfg = MitConfig {
            permutations: m,
            staged: true,
            ..MitConfig::default()
        };
        let schedule = StageSchedule::derive(seed, &strata, &cfg, 0.01);
        MitJob {
            strata,
            permutations: m,
            group_sample: None,
            early_stop: None,
            seed,
            schedule,
        }
    }

    #[test]
    fn stage_schedule_is_a_pure_function_of_seed_strata_config() {
        let strata = Strata::new(vec![dependent_tab(), independent_tab()]);
        let cfg = MitConfig {
            permutations: 200,
            staged: true,
            ..MitConfig::default()
        };
        let a = StageSchedule::derive(42, &strata, &cfg, 0.01);
        let b = StageSchedule::derive(42, &strata, &cfg, 0.01);
        assert_eq!(a, b, "same inputs must derive the same schedule");
        assert!(!a.is_single());
        assert_eq!(*a.stages().last().unwrap(), 200);
        assert_eq!(a.stages()[0], PERM_CHUNK);
        for w in a.stages().windows(2) {
            assert!(w[0] < w[1], "checkpoints strictly increasing: {:?}", a);
        }
        // The dense ladder is seed-independent — every derived
        // schedule is a valid prefix partition of the same stream.
        let c = StageSchedule::derive(43, &strata, &cfg, 0.01);
        assert_eq!(c.stages()[0], PERM_CHUNK);
        assert_eq!(*c.stages().last().unwrap(), 200);
        // Staging off or tiny budgets: pinned single stage.
        let off = MitConfig {
            staged: false,
            ..cfg
        };
        assert!(StageSchedule::derive(42, &strata, &off, 0.01).is_single());
        let tiny = MitConfig {
            permutations: 2 * PERM_CHUNK,
            ..cfg
        };
        assert!(StageSchedule::derive(42, &strata, &tiny, 0.01).is_single());
    }

    #[test]
    fn shattered_strata_refuse_to_screen() {
        // 100 singleton groups: effective dof 0, degenerate ensemble.
        // Stage 1 must refuse to settle — the schedule is single-stage,
        // so the job runs its pinned full budget.
        let mut groups = Vec::new();
        for i in 0..100u64 {
            let mut t = CrossTab::zeros(2, 2);
            t.add((i % 2) as usize, ((i / 2) % 2) as usize, 1);
            groups.push(t);
        }
        let strata = Strata::new(groups);
        assert_eq!(strata.dof(), 0.0);
        let cfg = MitConfig {
            permutations: 400,
            staged: true,
            ..MitConfig::default()
        };
        let schedule = StageSchedule::derive(7, &strata, &cfg, 0.01);
        assert!(schedule.is_single(), "shattered strata must not screen");
        let job = staged_job(strata, 400, 7);
        assert!(job.schedule.is_single());
        let (out, rep) = mit_settle_one(&job);
        assert_eq!(rep.stages, 1);
        assert!(!rep.settled_early() && !rep.escalated());
        assert_eq!(out.permutations, Some(400));
    }

    #[test]
    fn staged_verdicts_and_escalations_match_single_stage() {
        // The tentpole invariant, at the stats layer: for a mixed batch
        // of clearly-independent, clearly-dependent, and near-alpha
        // jobs, staging changes neither any verdict nor any escalated
        // outcome byte. Clear independents must actually settle early.
        let mut r = rng();
        let mut jobs: Vec<MitJob> = Vec::new();
        // Null tables (independent, settles at a screening stage).
        for i in 0..4 {
            let t = sample_table(&mut r, &[40, 60], &[55, 45]);
            jobs.push(staged_job(Strata::single(t), 100, 100 + i));
        }
        // Strong dependence (0 hits: must escalate, never settle early).
        jobs.push(staged_job(Strata::single(dependent_tab()), 100, 200));
        let single: Vec<TestOutcome> = jobs
            .iter()
            .map(|j| {
                let mut sj = j.clone();
                sj.schedule = StageSchedule::single(j.permutations);
                mit_settle_one(&sj).0
            })
            .collect();
        for threads in [1usize, 4] {
            hypdb_exec::set_global_threads(threads);
            let staged = mit_batch_staged(&jobs);
            hypdb_exec::set_global_threads(0);
            let mut early = 0;
            for ((out, rep), full) in staged.iter().zip(&single) {
                assert_eq!(
                    out.independent(0.01),
                    full.independent(0.01),
                    "staging flipped a verdict (threads={threads})"
                );
                if rep.escalated() {
                    assert_eq!(out, full, "escalated outcome must be byte-identical");
                }
                if rep.settled_early() {
                    early += 1;
                    assert!(out.permutations.unwrap() < full.permutations.unwrap());
                }
            }
            assert!(early >= 3, "clear independents must settle early ({early})");
            let dep = &staged[4];
            assert!(dep.1.escalated(), "0-hit dependence must escalate");
            assert_eq!(dep.0, single[4]);
        }
    }

    #[test]
    fn staged_group_sampled_prefix_uses_the_same_groups() {
        // Group-sampled jobs draw their group pick before the master
        // seed; a screened prefix must therefore evaluate the same
        // sampled subset as the single-stage run. An escalated sampled
        // job proves it: the full outcome matches bit for bit.
        let mut groups = vec![CrossTab::new(2, 2, vec![6, 5, 5, 6]); 30];
        groups.push(CrossTab::new(2, 2, vec![60, 20, 20, 60]));
        let strata = Strata::new(groups);
        let mut job = staged_job(strata, 100, 31);
        job.group_sample = Some(6);
        let mut single = job.clone();
        single.schedule = StageSchedule::single(100);
        let (full, _) = mit_settle_one(&single);
        let (staged, rep) = mit_settle_one(&job);
        assert_eq!(staged.method, TestMethod::MitSampled);
        assert_eq!(
            staged.independent(0.01),
            full.independent(0.01),
            "sampled staging flipped a verdict"
        );
        if rep.escalated() {
            assert_eq!(staged, full);
        }
    }

    #[test]
    fn early_stop_applies_only_within_the_final_stage() {
        // The precedence contract: screening budgets are shorter than
        // the first early-stop boundary (256 perms), so early_stop can
        // never fire inside a screening stage; an escalated run joins
        // the single-stage decision sequence exactly. Near-alpha nulls
        // with a big budget exercise both: the staged run's stop point
        // must equal the single-stage run's.
        let cfg = MitConfig {
            permutations: 2_000,
            staged: true,
            early_stop: Some(0.01),
            ..MitConfig::default()
        };
        for seed in 0..6u64 {
            let t = sample_table(&mut StdRng::seed_from_u64(seed), &[40, 60], &[55, 45]);
            let strata = Strata::single(t);
            // Derived from the same config the job runs with: an armed
            // early-stop rule caps the screening ladder below the first
            // decision boundary.
            let schedule = StageSchedule::derive(seed, &strata, &cfg, 0.01);
            for &cp in schedule.screening() {
                assert!(
                    cp < PERM_CHUNK * EARLY_STOP_BATCH,
                    "screening checkpoint {cp} crossed an early-stop boundary"
                );
            }
            let job = MitJob {
                strata,
                permutations: 2_000,
                group_sample: None,
                early_stop: cfg.early_stop,
                seed,
                schedule,
            };
            let mut single = job.clone();
            single.schedule = StageSchedule::single(2_000);
            let (full, _) = mit_settle_one(&single);
            let (staged, rep) = mit_settle_one(&job);
            assert_eq!(staged.independent(0.01), full.independent(0.01));
            if rep.escalated() {
                assert_eq!(
                    staged, full,
                    "escalated early-stop run must stop at the same point"
                );
            } else {
                assert!(rep.permutations < full.permutations.unwrap());
            }
        }
    }

    #[test]
    fn empty_strata_are_independent() {
        let s = Strata::new(vec![]);
        assert_eq!(s.cmi_plugin(), 0.0);
        let out = chi2_test(&s);
        assert_eq!(out.p_value, 1.0);
        let out = mit(&s, 10, &mut rng());
        assert_eq!(out.p_value, 1.0);
    }
}
