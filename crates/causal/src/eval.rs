//! Quality metrics for parent recovery (§7.4): precision, recall and F1
//! of discovered parent sets against a ground-truth DAG.

use hypdb_graph::dag::Dag;
use serde::{Deserialize, Serialize};

/// Confusion counts for parent recovery.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParentScore {
    /// True positives: recovered edges that exist.
    pub tp: u64,
    /// False positives: recovered edges that do not exist.
    pub fp: u64,
    /// False negatives: true edges missed.
    pub fn_: u64,
}

impl ParentScore {
    /// Adds one node's predicted-vs-true parent sets.
    pub fn accumulate(&mut self, predicted: &[usize], truth: &[usize]) {
        for p in predicted {
            if truth.contains(p) {
                self.tp += 1;
            } else {
                self.fp += 1;
            }
        }
        for t in truth {
            if !predicted.contains(t) {
                self.fn_ += 1;
            }
        }
    }

    /// Merges another score (micro-averaging).
    pub fn merge(&mut self, other: ParentScore) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when nothing was expected).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 (harmonic mean; 0 when both precision and recall are 0, 1 when
    /// the task is trivially empty and nothing was predicted).
    pub fn f1(&self) -> f64 {
        if self.tp + self.fp + self.fn_ == 0 {
            return 1.0;
        }
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores predicted parent sets against a ground-truth DAG. `predicted`
/// maps each node to its predicted parents; nodes may be restricted with
/// `only_nodes` (e.g. Fig 5(c)'s "nodes with at least two parents").
pub fn parent_f1(
    truth: &Dag,
    predicted: &[(usize, Vec<usize>)],
    only_nodes: Option<&dyn Fn(usize) -> bool>,
) -> ParentScore {
    let mut score = ParentScore::default();
    for (node, preds) in predicted {
        if let Some(filter) = only_nodes {
            if !filter(*node) {
                continue;
            }
        }
        score.accumulate(preds, &truth.parent_set(*node));
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let g = diamond();
        let preds: Vec<(usize, Vec<usize>)> = (0..4).map(|v| (v, g.parent_set(v))).collect();
        let s = parent_f1(&g, &preds, None);
        assert_eq!(s.f1(), 1.0);
        assert_eq!(s.tp, 4);
        assert_eq!(s.fp + s.fn_, 0);
    }

    #[test]
    fn misses_reduce_recall() {
        let g = diamond();
        let preds = vec![(3usize, vec![1usize])]; // missed parent 2
        let s = parent_f1(&g, &preds, None);
        assert_eq!(s.tp, 1);
        assert_eq!(s.fn_, 1);
        assert!((s.recall() - 0.5).abs() < 1e-12);
        assert!((s.precision() - 1.0).abs() < 1e-12);
        assert!((s.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extras_reduce_precision() {
        let g = diamond();
        let preds = vec![(1usize, vec![0usize, 2usize])]; // 2 is spurious
        let s = parent_f1(&g, &preds, None);
        assert_eq!(s.tp, 1);
        assert_eq!(s.fp, 1);
        assert!((s.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_filter_restricts_scoring() {
        let g = diamond();
        // Only node 3 has >= 2 parents.
        let filter = |v: usize| g.parent_set(v).len() >= 2;
        let preds = vec![(1usize, vec![2usize]), (3usize, vec![1usize, 2usize])];
        let s = parent_f1(&g, &preds, Some(&filter));
        // Node 1's wrong prediction is filtered out.
        assert_eq!(s.fp, 0);
        assert_eq!(s.tp, 2);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn empty_task_is_perfect() {
        let s = ParentScore::default();
        assert_eq!(s.f1(), 1.0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ParentScore {
            tp: 1,
            fp: 2,
            fn_: 3,
        };
        a.merge(ParentScore {
            tp: 4,
            fp: 5,
            fn_: 6,
        });
        assert_eq!(
            a,
            ParentScore {
                tp: 5,
                fp: 7,
                fn_: 9
            }
        );
    }
}
