//! Subset enumeration in ascending-cardinality order.
//!
//! Constraint-based discovery (CD phase I/II, FGS skeleton pruning)
//! searches for *separating sets*: small conditioning sets that render
//! two variables independent. Enumerating subsets smallest-first finds
//! separators early and mirrors the PC-style search the paper's
//! references use.

/// Iterates all subsets of `items` with size `0..=max_size`, in
/// ascending size, each subset sorted in `items` order.
pub fn subsets_ascending<T: Copy>(items: &[T], max_size: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let cap = max_size.min(n);
    let mut out = Vec::new();
    for k in 0..=cap {
        combinations_into(items, k, &mut out);
    }
    out
}

/// Appends all `k`-combinations of `items` to `out`.
fn combinations_into<T: Copy>(items: &[T], k: usize, out: &mut Vec<Vec<T>>) {
    let n = items.len();
    if k > n {
        return;
    }
    if k == 0 {
        out.push(Vec::new());
        return;
    }
    // Standard index-vector enumeration.
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// All `k`-combinations of `items`.
pub fn combinations<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    combinations_into(items, k, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_small() {
        let s = subsets_ascending(&[1, 2, 3], 3);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], Vec::<i32>::new());
        // Ascending size order.
        for w in s.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        assert!(s.contains(&vec![1, 3]));
        assert!(s.contains(&vec![1, 2, 3]));
    }

    #[test]
    fn max_size_caps() {
        let s = subsets_ascending(&[1, 2, 3, 4], 2);
        assert_eq!(s.len(), 1 + 4 + 6);
        assert!(s.iter().all(|x| x.len() <= 2));
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(&[1, 2, 3, 4, 5], 2).len(), 10);
        assert_eq!(combinations(&[1, 2, 3], 0), vec![Vec::<i32>::new()]);
        assert_eq!(combinations(&[1, 2], 3).len(), 0);
    }

    #[test]
    fn empty_items() {
        assert_eq!(subsets_ascending::<i32>(&[], 5), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let c = combinations(&[10, 20, 30, 40], 3);
        assert_eq!(c.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for combo in &c {
            assert!(combo.windows(2).all(|w| w[0] < w[1]));
            assert!(seen.insert(combo.clone()));
        }
    }
}
