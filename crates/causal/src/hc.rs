//! Score-based greedy hill climbing (§7.4's HC baselines) with AIC, BIC
//! and BDeu family scores.
//!
//! Standard decomposable-score search: starting from the empty graph,
//! repeatedly apply the single-edge operation (add / delete / reverse)
//! with the best positive score delta until none improves. Family scores
//! are cached, so each step costs one or two family re-scores per
//! candidate operation.

use hypdb_graph::dag::Dag;
use hypdb_stats::math::ln_gamma;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::hash::FxHashMap;
use hypdb_table::{AttrId, RowSet, Table};
use serde::{Deserialize, Serialize};

/// Network scoring function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Score {
    /// Akaike information criterion: `loglik − k`.
    Aic,
    /// Bayesian information criterion: `loglik − (ln n / 2)·k`.
    Bic,
    /// Bayesian Dirichlet equivalent uniform with the given equivalent
    /// sample size.
    BDeu {
        /// Equivalent sample size (commonly 1–10).
        ess: f64,
    },
}

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HcConfig {
    /// Scoring function.
    pub score: Score,
    /// In-degree cap.
    pub max_parents: usize,
    /// Iteration cap (one edge operation per iteration).
    pub max_iters: usize,
}

impl Default for HcConfig {
    fn default() -> Self {
        HcConfig {
            score: Score::Bic,
            max_parents: 6,
            max_iters: 500,
        }
    }
}

/// Greedy structure learner over a table selection.
pub struct HillClimb<'a> {
    table: &'a Table,
    rows: RowSet,
    vars: Vec<AttrId>,
    cfg: HcConfig,
    cache: FxHashMap<(usize, Vec<usize>), f64>,
}

impl<'a> HillClimb<'a> {
    /// Creates a learner over `vars` of `table` restricted to `rows`.
    pub fn new(table: &'a Table, rows: RowSet, vars: Vec<AttrId>, cfg: HcConfig) -> Self {
        HillClimb {
            table,
            rows,
            vars,
            cfg,
            cache: FxHashMap::default(),
        }
    }

    /// Family score of node `v` with parent set `parents` (both indices
    /// into `vars`), cached.
    fn family_score(&mut self, v: usize, parents: &[usize]) -> f64 {
        let mut key_parents = parents.to_vec();
        key_parents.sort_unstable();
        if let Some(&s) = self.cache.get(&(v, key_parents.clone())) {
            return s;
        }
        let s = self.compute_family_score(v, &key_parents);
        self.cache.insert((v, key_parents), s);
        s
    }

    fn compute_family_score(&self, v: usize, parents: &[usize]) -> f64 {
        // Counts over (parents…, v); parent configuration is the prefix.
        let mut attrs: Vec<AttrId> = parents.iter().map(|&p| self.vars[p]).collect();
        attrs.push(self.vars[v]);
        let ct = ContingencyTable::from_table(self.table, &self.rows, &attrs);
        let k = self.table.cardinality(self.vars[v]).max(1) as f64;
        let q: f64 = parents
            .iter()
            .map(|&p| self.table.cardinality(self.vars[p]).max(1) as f64)
            .product();
        let n = ct.total() as f64;
        if n == 0.0 {
            return 0.0;
        }

        // Aggregate per parent configuration. A BTreeMap keeps the
        // BDeu per-configuration gamma sum in canonical key order —
        // with a hash map the float accumulation order would follow
        // bucket order and the score could drift across builds.
        let np = parents.len();
        let mut cfg_counts: std::collections::BTreeMap<Box<[u32]>, u64> =
            std::collections::BTreeMap::new();
        let mut cell_counts: Vec<(Box<[u32]>, u64, u64)> = Vec::new(); // (config, value, n)
        ct.for_each(|cell, count| {
            let config: Box<[u32]> = cell[..np].to_vec().into_boxed_slice();
            *cfg_counts.entry(config.clone()).or_insert(0) += count;
            cell_counts.push((config, cell[np] as u64, count));
        });

        match self.cfg.score {
            Score::Aic | Score::Bic => {
                let mut loglik = 0.0;
                for (config, _, nv) in &cell_counts {
                    let ncfg = cfg_counts[config] as f64;
                    loglik += *nv as f64 * ((*nv as f64) / ncfg).ln();
                }
                let params = (k - 1.0) * q;
                match self.cfg.score {
                    Score::Aic => loglik - params,
                    Score::Bic => loglik - 0.5 * n.ln() * params,
                    Score::BDeu { .. } => unreachable!(),
                }
            }
            Score::BDeu { ess } => {
                let a_cfg = ess / q;
                let a_cell = ess / (q * k);
                let mut score = 0.0;
                for ncfg in cfg_counts.values() {
                    score += ln_gamma(a_cfg) - ln_gamma(a_cfg + *ncfg as f64);
                }
                for (_, _, nv) in &cell_counts {
                    score += ln_gamma(a_cell + *nv as f64) - ln_gamma(a_cell);
                }
                score
            }
        }
    }

    /// Runs greedy search and returns the learned DAG (nodes indexed as
    /// `vars`).
    pub fn learn(&mut self) -> Dag {
        let n = self.vars.len();
        let mut dag = Dag::new(n);
        for _ in 0..self.cfg.max_iters {
            let mut best: Option<(f64, Op)> = None;
            // Candidate operations.
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    if !dag.has_edge(u, v) && !dag.has_edge(v, u) {
                        // Add u -> v.
                        if dag.in_degree(v) < self.cfg.max_parents && !dag.reaches(v, u) {
                            let old = self.family_score(v, &dag.parent_set(v));
                            let mut np = dag.parent_set(v);
                            np.push(u);
                            let new = self.family_score(v, &np);
                            let delta = new - old;
                            if best.as_ref().is_none_or(|(d, _)| delta > *d) {
                                best = Some((delta, Op::Add(u, v)));
                            }
                        }
                    } else if dag.has_edge(u, v) {
                        // Delete u -> v.
                        let old = self.family_score(v, &dag.parent_set(v));
                        let np: Vec<usize> =
                            dag.parent_set(v).into_iter().filter(|&p| p != u).collect();
                        let new = self.family_score(v, &np);
                        let delta = new - old;
                        if best.as_ref().is_none_or(|(d, _)| delta > *d) {
                            best = Some((delta, Op::Delete(u, v)));
                        }
                        // Reverse u -> v (delete + add v -> u).
                        if dag.in_degree(u) < self.cfg.max_parents {
                            let mut trial = dag.clone();
                            trial.remove_edge(u, v);
                            if trial.add_edge(v, u) {
                                let old_u = self.family_score(u, &dag.parent_set(u));
                                let mut pu = dag.parent_set(u);
                                pu.push(v);
                                let new_u = self.family_score(u, &pu);
                                let delta_rev = delta + (new_u - old_u);
                                if best.as_ref().is_none_or(|(d, _)| delta_rev > *d) {
                                    best = Some((delta_rev, Op::Reverse(u, v)));
                                }
                            }
                        }
                    }
                }
            }
            match best {
                Some((delta, op)) if delta > 1e-9 => match op {
                    Op::Add(u, v) => {
                        dag.add_edge(u, v);
                    }
                    Op::Delete(u, v) => dag.remove_edge(u, v),
                    Op::Reverse(u, v) => {
                        dag.remove_edge(u, v);
                        dag.add_edge(v, u);
                    }
                },
                _ => break,
            }
        }
        dag
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Add(usize, usize),
    Delete(usize, usize),
    Reverse(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_graph::bayes::BayesNet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn collider_table(n: usize) -> Table {
        // 0 -> 2 <- 1 with additive (non-XOR) effects: greedy search
        // cannot climb towards a pure-XOR collider because each parent
        // is marginally independent of the child there.
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2);
        dag.add_edge(1, 2);
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(0, vec![0.5, 0.5]);
        net.set_cpt(1, vec![0.5, 0.5]);
        net.set_cpt(2, vec![0.95, 0.05, 0.55, 0.45, 0.30, 0.70, 0.05, 0.95]);
        let mut rng = StdRng::seed_from_u64(5);
        net.sample_table(&mut rng, n)
    }

    fn learn(table: &Table, score: Score) -> Dag {
        let vars: Vec<AttrId> = table.schema().attr_ids().collect();
        let mut hc = HillClimb::new(
            table,
            table.all_rows(),
            vars,
            HcConfig {
                score,
                ..HcConfig::default()
            },
        );
        hc.learn()
    }

    #[test]
    fn bic_recovers_collider() {
        let t = collider_table(8_000);
        let g = learn(&t, Score::Bic);
        // The collider is the unique member of its equivalence class:
        // XOR structure forces both edges into node 2.
        assert!(g.has_edge(0, 2), "missing 0 -> 2:\n{g}");
        assert!(g.has_edge(1, 2), "missing 1 -> 2:\n{g}");
        assert!(!g.adjacent(0, 1), "spurious 0 - 1 edge");
    }

    #[test]
    fn all_scores_find_dependence_skeleton() {
        let t = collider_table(4_000);
        for score in [Score::Aic, Score::Bic, Score::BDeu { ess: 5.0 }] {
            let g = learn(&t, score);
            assert!(
                g.adjacent(0, 2) && g.adjacent(1, 2),
                "{score:?} missed skeleton:\n{g}"
            );
        }
    }

    #[test]
    fn independent_data_yields_sparse_graph() {
        // Three independent coins: BIC should learn no edges.
        let dag = Dag::new(3);
        let net = BayesNet::uniform(dag, vec![2, 2, 2]);
        let mut rng = StdRng::seed_from_u64(17);
        let t = net.sample_table(&mut rng, 5_000);
        let g = learn(&t, Score::Bic);
        assert_eq!(g.num_edges(), 0, "{g}");
    }

    #[test]
    fn max_parents_cap_respected() {
        let t = collider_table(2_000);
        let vars: Vec<AttrId> = t.schema().attr_ids().collect();
        let mut hc = HillClimb::new(
            &t,
            t.all_rows(),
            vars,
            HcConfig {
                score: Score::Bic,
                max_parents: 1,
                max_iters: 100,
            },
        );
        let g = hc.learn();
        for v in 0..3 {
            assert!(g.in_degree(v) <= 1);
        }
    }

    #[test]
    fn family_score_cache_stable() {
        let t = collider_table(1_000);
        let vars: Vec<AttrId> = t.schema().attr_ids().collect();
        let mut hc = HillClimb::new(&t, t.all_rows(), vars, HcConfig::default());
        let a = hc.family_score(2, &[0, 1]);
        let b = hc.family_score(2, &[1, 0]); // order-insensitive key
        assert_eq!(a, b);
    }
}
