//! Causal discovery for HypDB (§4, §7.4): the CD covariate-discovery
//! algorithm plus everything it sits on and is compared against.
//!
//! * [`oracle`] — conditional-independence oracles: a data-backed oracle
//!   with entropy caching and contingency-table materialisation (§6) and
//!   toggleable test procedures (χ² / MIT / HyMIT), an exact
//!   d-separation oracle for ground-truth testing, and per-oracle test
//!   counters (Fig 6(a)),
//! * [`blanket`] — Markov-boundary discovery: Grow–Shrink and IAMB,
//! * [`cd`] — the CD algorithm (Alg 1): two-phase parent discovery
//!   without learning the whole DAG,
//! * [`fgs`] — the Full Grow-Shrink structure-learning baseline
//!   (skeleton from blankets + collider orientation + Meek rules),
//! * [`hc`] — score-based greedy hill climbing with AIC/BIC/BDeu,
//! * [`plan`] — the multi-query statement planner: batch independence
//!   statements, group them by conditioning set, and answer each group
//!   with one shared contingency pass (the Analyze-operator
//!   optimisation),
//! * [`explain`] — the planner's deterministic EXPLAIN surface: replay
//!   the cost model over per-round records into a byte-identical
//!   decision document (costs, never clocks),
//! * [`preprocess`] — dropping logical dependencies: approximate FDs and
//!   key-like high-entropy attributes (§4),
//! * [`eval`] — precision/recall/F1 of recovered parent sets against a
//!   ground-truth DAG (§7.4's quality metric).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blanket;
pub mod cd;
pub mod eval;
pub mod explain;
pub mod fgs;
pub mod hc;
pub mod oracle;
pub mod plan;
pub mod preprocess;
pub mod subsets;

pub use blanket::{grow_shrink, iamb};
pub use cd::{CdConfig, CovariateDiscovery};
pub use eval::{parent_f1, ParentScore};
pub use fgs::FgsLearner;
pub use hc::{HillClimb, Score};
pub use oracle::{
    CiConfig, CiOracle, DataOracle, GraphOracle, IndependenceTestKind, OracleCache, OracleStats,
};
pub use plan::{support_bound, BatchConfig, CiStatement, CostModel, Plan, PlanForce, PlanGroup};
pub use preprocess::{drop_logical_dependencies, PreprocessConfig, PreprocessReport};
