//! Conditional-independence oracles (§4 assumes one; §5–§6 build it).
//!
//! The [`CiOracle`] trait is what every discovery algorithm consumes.
//! Two implementations:
//!
//! * [`DataOracle`] — backed by a table selection. Implements the §6
//!   optimisations behind feature flags: **entropy caching** (shared
//!   entropies across CMI statements) and **contingency-table
//!   materialisation** (marginals derived from cached supersets instead
//!   of re-scanning rows). The test procedure is configurable: χ², MIT,
//!   MIT with group sampling, or the HyMIT hybrid.
//! * [`GraphOracle`] — exact d-separation on a known DAG; the
//!   noise-free oracle used to validate discovery algorithms.

use crate::plan::{
    support_bound, BatchConfig, CiStatement, CostModel, Plan, PlanForce, PlanGroup,
    SPECULATION_WAVE,
};
use hypdb_exec::{seed, ShardedMap, ThreadPool};
use hypdb_graph::dag::Dag;
use hypdb_graph::dsep::d_separated_pair;
use hypdb_stats::crosstab::CrossTab;
use hypdb_stats::independence::{
    mit_batch_staged, mit_resume, mit_settle_one, mit_stage1, MitConfig, MitJob, MitPartial,
    StagePass, StageReport, StageSchedule, Strata, TestMethod, TestOutcome,
};
use hypdb_stats::math::chi2_sf;
use hypdb_stats::EntropyEstimator;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::hash::{FxBuildHasher, FxHashMap};
use hypdb_table::sync::Mutex;
use hypdb_table::{AttrId, RowSet, Scan, Table};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Variable index within an oracle (0-based, oracle-local).
pub type Var = usize;

/// Which independence-test procedure a [`DataOracle`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IndependenceTestKind {
    /// Asymptotic χ² (G) test.
    ChiSquared,
    /// MIT permutation test over all conditioning groups.
    Mit,
    /// MIT over a weighted sample of conditioning groups.
    MitSampled {
        /// Maximum number of groups to keep.
        max_groups: usize,
    },
    /// HyMIT: χ² when `df·β ≤ n`, MIT (with auto group sampling)
    /// otherwise.
    HyMit,
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiConfig {
    /// Significance level for `independent` decisions (§7.3 uses 0.01).
    pub alpha: f64,
    /// Test procedure.
    pub kind: IndependenceTestKind,
    /// Permutation-test parameters (m, β).
    pub mit: MitConfig,
    /// Entropy estimator for reported CMI statistics (§2 uses
    /// Miller–Madow).
    pub estimator: EntropyEstimator,
    /// §6 "Caching entropy".
    pub cache_entropies: bool,
    /// §6 "Materializing contingency tables".
    pub materialize: bool,
    /// RNG seed for the permutation tests.
    pub seed: u64,
    /// Multi-query batching of independence statements (the
    /// Analyze-operator optimisation; see [`crate::plan`]).
    pub batch: BatchConfig,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            alpha: 0.01,
            kind: IndependenceTestKind::HyMit,
            mit: MitConfig::default(),
            estimator: EntropyEstimator::MillerMadow,
            cache_entropies: true,
            materialize: true,
            seed: 0x48_7970_4442, // "HypDB"
            batch: BatchConfig::default(),
        }
    }
}

/// Lock-free work counters ([`OracleStats`] is the snapshot form).
/// Relaxed ordering suffices: the counts are statistics, not
/// synchronisation, and each event is a single atomic increment.
#[derive(Debug, Default)]
struct AtomicStats {
    tests: AtomicU64,
    table_scans: AtomicU64,
    count_cache_hits: AtomicU64,
    marginalizations: AtomicU64,
    entropy_hits: AtomicU64,
    entropy_misses: AtomicU64,
    batched_statements: AtomicU64,
    groups_planned: AtomicU64,
    scans_direct: AtomicU64,
    marginalised_from_superset: AtomicU64,
    lattice_intermediates: AtomicU64,
    speculative_skipped: AtomicU64,
    mit_permutations: AtomicU64,
    mit_stage1_settled: AtomicU64,
    mit_escalated: AtomicU64,
}

impl AtomicStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OracleStats {
        OracleStats {
            tests: self.tests.load(Ordering::Relaxed),
            table_scans: self.table_scans.load(Ordering::Relaxed),
            count_cache_hits: self.count_cache_hits.load(Ordering::Relaxed),
            marginalizations: self.marginalizations.load(Ordering::Relaxed),
            entropy_hits: self.entropy_hits.load(Ordering::Relaxed),
            entropy_misses: self.entropy_misses.load(Ordering::Relaxed),
            batched_statements: self.batched_statements.load(Ordering::Relaxed),
            groups_planned: self.groups_planned.load(Ordering::Relaxed),
            scans_direct: self.scans_direct.load(Ordering::Relaxed),
            marginalised_from_superset: self.marginalised_from_superset.load(Ordering::Relaxed),
            lattice_intermediates: self.lattice_intermediates.load(Ordering::Relaxed),
            speculative_skipped: self.speculative_skipped.load(Ordering::Relaxed),
            mit_permutations: self.mit_permutations.load(Ordering::Relaxed),
            mit_stage1_settled: self.mit_stage1_settled.load(Ordering::Relaxed),
            mit_escalated: self.mit_escalated.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.tests.store(0, Ordering::Relaxed);
        self.table_scans.store(0, Ordering::Relaxed);
        self.count_cache_hits.store(0, Ordering::Relaxed);
        self.marginalizations.store(0, Ordering::Relaxed);
        self.entropy_hits.store(0, Ordering::Relaxed);
        self.entropy_misses.store(0, Ordering::Relaxed);
        self.batched_statements.store(0, Ordering::Relaxed);
        self.groups_planned.store(0, Ordering::Relaxed);
        self.scans_direct.store(0, Ordering::Relaxed);
        self.marginalised_from_superset.store(0, Ordering::Relaxed);
        self.lattice_intermediates.store(0, Ordering::Relaxed);
        self.speculative_skipped.store(0, Ordering::Relaxed);
        self.mit_permutations.store(0, Ordering::Relaxed);
        self.mit_stage1_settled.store(0, Ordering::Relaxed);
        self.mit_escalated.store(0, Ordering::Relaxed);
    }

    /// Folds one settled permutation job's [`StageReport`] into the
    /// staged-testing counters.
    fn note_stage(&self, report: &StageReport) {
        Self::add(&self.mit_permutations, report.permutations as u64);
        if report.settled_early() {
            Self::bump(&self.mit_stage1_settled);
        }
        if report.escalated() {
            Self::bump(&self.mit_escalated);
        }
    }
}

/// Work counters, the instrumentation behind Fig 6(a)/(c) — plus the
/// multi-query planner's batching counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Independence tests performed.
    pub tests: u64,
    /// Full row scans to build a contingency table.
    pub table_scans: u64,
    /// Contingency tables served from the materialisation cache.
    pub count_cache_hits: u64,
    /// Contingency tables derived by marginalising a cached superset.
    pub marginalizations: u64,
    /// Entropy values served from the entropy cache.
    pub entropy_hits: u64,
    /// Entropy values computed.
    pub entropy_misses: u64,
    /// Statements submitted through the batch API and planned.
    pub batched_statements: u64,
    /// Statement groups (shared conditioning sets) the planner formed.
    pub groups_planned: u64,
    /// Planner decisions: tables the cost model chose to build by a
    /// direct row scan (a cached superset existed but was too wide).
    pub scans_direct: u64,
    /// Planner decisions: tables derived by walking a cached superset
    /// (the cost model's marginalisation choice).
    pub marginalised_from_superset: u64,
    /// Intermediate lattice tables materialised during top-down
    /// descent between a group's joint and its member tables.
    pub lattice_intermediates: u64,
    /// Speculative statements the round-wise issuers skipped because a
    /// decisive verdict landed in an earlier wave.
    pub speculative_skipped: u64,
    /// Permutations actually evaluated across every settled MIT job
    /// (the staged engine's work metric; screening savings show here).
    pub mit_permutations: u64,
    /// Permutation jobs whose verdict settled at a screening
    /// checkpoint, never paying the full budget.
    pub mit_stage1_settled: u64,
    /// Screened permutation jobs that landed near alpha and escalated
    /// to their full budget.
    pub mit_escalated: u64,
}

impl OracleStats {
    /// Element-wise sum — aggregating the counters of several shared
    /// caches (e.g. every serving slot) into one exportable total.
    pub fn merge(&self, other: &OracleStats) -> OracleStats {
        OracleStats {
            tests: self.tests + other.tests,
            table_scans: self.table_scans + other.table_scans,
            count_cache_hits: self.count_cache_hits + other.count_cache_hits,
            marginalizations: self.marginalizations + other.marginalizations,
            entropy_hits: self.entropy_hits + other.entropy_hits,
            entropy_misses: self.entropy_misses + other.entropy_misses,
            batched_statements: self.batched_statements + other.batched_statements,
            groups_planned: self.groups_planned + other.groups_planned,
            scans_direct: self.scans_direct + other.scans_direct,
            marginalised_from_superset: self.marginalised_from_superset
                + other.marginalised_from_superset,
            lattice_intermediates: self.lattice_intermediates + other.lattice_intermediates,
            speculative_skipped: self.speculative_skipped + other.speculative_skipped,
            mit_permutations: self.mit_permutations + other.mit_permutations,
            mit_stage1_settled: self.mit_stage1_settled + other.mit_stage1_settled,
            mit_escalated: self.mit_escalated + other.mit_escalated,
        }
    }

    /// Element-wise saturating difference — the work attributable to
    /// one request when `earlier` was snapshotted from the same shared
    /// cache before it ran (the flight recorder's per-request planner
    /// delta). Saturating because a concurrent `reset_stats` can move
    /// counters backwards; a clamped zero beats a wrapped giant.
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            tests: self.tests.saturating_sub(earlier.tests),
            table_scans: self.table_scans.saturating_sub(earlier.table_scans),
            count_cache_hits: self
                .count_cache_hits
                .saturating_sub(earlier.count_cache_hits),
            marginalizations: self
                .marginalizations
                .saturating_sub(earlier.marginalizations),
            entropy_hits: self.entropy_hits.saturating_sub(earlier.entropy_hits),
            entropy_misses: self.entropy_misses.saturating_sub(earlier.entropy_misses),
            batched_statements: self
                .batched_statements
                .saturating_sub(earlier.batched_statements),
            groups_planned: self.groups_planned.saturating_sub(earlier.groups_planned),
            scans_direct: self.scans_direct.saturating_sub(earlier.scans_direct),
            marginalised_from_superset: self
                .marginalised_from_superset
                .saturating_sub(earlier.marginalised_from_superset),
            lattice_intermediates: self
                .lattice_intermediates
                .saturating_sub(earlier.lattice_intermediates),
            speculative_skipped: self
                .speculative_skipped
                .saturating_sub(earlier.speculative_skipped),
            mit_permutations: self
                .mit_permutations
                .saturating_sub(earlier.mit_permutations),
            mit_stage1_settled: self
                .mit_stage1_settled
                .saturating_sub(earlier.mit_stage1_settled),
            mit_escalated: self.mit_escalated.saturating_sub(earlier.mit_escalated),
        }
    }
}

/// The shareable half of a [`DataOracle`]: its contingency/entropy
/// caches and work counters, split out so several oracles over the
/// *same* `(table, selection)` can pool their work.
///
/// Keys are sorted [`AttrId`] sets — table-global names, not
/// oracle-local variable indices — so oracles with different variable
/// lists (e.g. two concurrent `/analyze` requests with different
/// treatments over one dataset selection) hit one another's entries.
/// Every entry is a pure function of `(table, rows, attrs)`: sharing
/// changes which work is *skipped*, never any value.
#[derive(Default)]
pub struct OracleCache {
    counts: ShardedMap<Vec<AttrId>, Arc<ContingencyTable>, FxBuildHasher>,
    entropies: ShardedMap<Vec<AttrId>, f64, FxBuildHasher>,
    /// Observed supports (non-zero cell counts) of every table built
    /// through this cache — the planner's support-feedback seam. A
    /// subset's support never exceeds a superset's, so these refine
    /// the a-priori `min(∏ dims, rows)` bound online.
    supports: ShardedMap<Vec<AttrId>, u64, FxBuildHasher>,
    /// Resident contingency-table bytes (≈ support × key width),
    /// exported as the `hypdb_oracle_cache_bytes` gauge.
    table_bytes: AtomicU64,
    counters: AtomicStats,
}

impl OracleCache {
    /// A fresh, empty cache.
    pub fn new() -> OracleCache {
        OracleCache::default()
    }

    /// Records a materialised table: memoises it, notes its observed
    /// support for the planner's predictor, and accounts its resident
    /// bytes exactly once (racing builders of the same key compute
    /// identical tables; only the first insert is charged).
    fn store_table(&self, key: Vec<AttrId>, ct: &Arc<ContingencyTable>) {
        self.supports.insert(key.clone(), ct.support());
        if self.counts.insert_new(key, Arc::clone(ct)) {
            self.table_bytes
                .fetch_add(ct.approx_bytes(), Ordering::Relaxed);
        }
    }

    /// Approximate bytes held by the materialised contingency tables.
    pub fn cache_bytes(&self) -> u64 {
        self.table_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the work counters accumulated through this cache
    /// (across every oracle that shared it).
    pub fn stats(&self) -> OracleStats {
        self.counters.snapshot()
    }

    /// Resets the work counters (cache contents are kept).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Number of materialised contingency tables.
    pub fn num_tables(&self) -> usize {
        self.counts.len()
    }

    /// Number of cached entropies.
    pub fn num_entropies(&self) -> usize {
        self.entropies.len()
    }
}

/// The conditional-independence oracle interface.
pub trait CiOracle {
    /// Number of variables `0..n` the oracle ranges over.
    fn num_vars(&self) -> usize;

    /// Tests `X ⊥⊥ Y | Z`; `x`, `y` must be distinct and absent from `z`.
    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome;

    /// Decision threshold.
    fn alpha(&self) -> f64;

    /// True when the test does **not** reject independence.
    fn independent(&self, x: Var, y: Var, z: &[Var]) -> bool {
        self.test(x, y, z).independent(self.alpha())
    }

    /// True when dependence is significant.
    fn dependent(&self, x: Var, y: Var, z: &[Var]) -> bool {
        !self.independent(x, y, z)
    }

    /// True when this oracle profits from whole-round statement
    /// batches ([`Self::test_batch`]). Issuers consult it before
    /// assembling a round: an oracle that answers call-at-a-time (the
    /// default — e.g. an exact d-separation oracle, or a data oracle
    /// with batching disabled) keeps the lazy early-exit scan instead,
    /// so "batching off" costs exactly what the pre-planner code did.
    fn prefers_batches(&self) -> bool {
        false
    }

    /// Tests a whole batch of statements, one outcome per submitted
    /// statement (in submission order). The default evaluates
    /// call-at-a-time; implementations may plan and batch
    /// ([`DataOracle`] groups statements by conditioning set so one
    /// shared contingency pass answers a group), but every outcome
    /// **must** equal the corresponding `test(x, y, z)` exactly —
    /// batching is a pure performance choice.
    fn test_batch(&self, stmts: &[CiStatement]) -> Vec<TestOutcome> {
        stmts.iter().map(|s| self.test(s.x, s.y, &s.z)).collect()
    }

    /// Batched `independent` verdicts (submission order).
    fn independent_batch(&self, stmts: &[CiStatement]) -> Vec<bool> {
        let alpha = self.alpha();
        self.test_batch(stmts)
            .iter()
            .map(|o| o.independent(alpha))
            .collect()
    }

    /// The round-wise issuer primitive: the index of the first
    /// statement whose `independent` verdict equals `want`, or `None`.
    /// Grow rounds ask for the first dependence, shrink rounds for the
    /// first independence — either way the round's sequential
    /// semantics discard every verdict past the hit, so lazy
    /// evaluation is exact. The default is the call-at-a-time
    /// early-exit scan; [`DataOracle`] overrides it to evaluate in
    /// deterministic speculation waves (batch parallelism without
    /// paying for the whole round). The returned index is identical
    /// for every implementation — only the work differs.
    fn find_first(&self, stmts: &[CiStatement], want: bool) -> Option<usize> {
        stmts
            .iter()
            .position(|s| self.independent(s.x, s.y, &s.z) == want)
    }

    /// Association strength heuristic (used by IAMB's ordering); default
    /// is the test statistic (estimated CMI).
    fn assoc(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        self.test(x, y, z).statistic
    }

    /// Whether an *acceptance* of `X ⊥⊥ Y | Z` would be reliable — i.e.
    /// whether there is enough data per degree of freedom for a failure
    /// to reject to mean anything. Constraint-based discovery must not
    /// conclude a separation from an underpowered test (§4's "not
    /// robust to sparse subpopulations" failure mode); callers skip
    /// unreliable tests instead. Exact oracles are always reliable.
    fn reliable(&self, _x: Var, _y: Var, _z: &[Var]) -> bool {
        true
    }

    /// Whether a *rejection* (a dependence verdict) would be reliable.
    /// This is a calibration question, not a power question: a
    /// permutation test's rejection is trustworthy even on shattered
    /// data (the paper's core argument for MIT), whereas a sparse χ²
    /// rejection is anti-conservative. Defaults to the acceptance rule.
    fn reliable_dependence(&self, x: Var, y: Var, z: &[Var]) -> bool {
        self.reliable(x, y, z)
    }

    /// Work counters.
    fn stats(&self) -> OracleStats;

    /// Resets work counters.
    fn reset_stats(&self);
}

/// Data-backed oracle over a selection of any [`Scan`] storage
/// (defaults to the monolithic [`Table`]; `hypdb-store`'s
/// `ShardedTable` plugs in identically — contingency scans fan out per
/// shard and the counts are byte-identical either way).
///
/// The oracle is `Sync` and safe to drive from many worker threads at
/// once (CD's phases fan independence tests out over the global pool):
/// the contingency/entropy caches are sharded maps whose entries are
/// pure functions of the underlying data, the work counters are
/// atomics, and every test's RNG is seeded *per statement* — a
/// deterministic mix of the configured seed with `(x, y, sorted z)` —
/// so each outcome is a pure function of (data, config, statement), no
/// matter which thread runs it or in what order.
pub struct DataOracle<'a, S: Scan + ?Sized = Table> {
    table: &'a S,
    rows: RowSet,
    vars: Vec<AttrId>,
    cfg: CiConfig,
    /// Contingency/entropy caches + counters, attr-keyed and shareable
    /// across oracles over the same `(table, rows)` (see
    /// [`OracleCache`]); a fresh oracle owns a fresh cache.
    cache: Arc<OracleCache>,
}

impl<'a, S: Scan + ?Sized> DataOracle<'a, S> {
    /// Builds an oracle over `vars` (oracle variable `i` ↔ `vars[i]`)
    /// restricted to `rows`.
    pub fn new(table: &'a S, rows: RowSet, vars: Vec<AttrId>, cfg: CiConfig) -> Self {
        DataOracle::with_cache(table, rows, vars, cfg, Arc::new(OracleCache::new()))
    }

    /// Like [`DataOracle::new`], but sharing an existing cache. The
    /// cache **must** belong to the same `(table, rows)` pair — its
    /// entries are pure functions of that data, so sharing across
    /// oracles (different variable lists, seeds, or test kinds are all
    /// fine) lets concurrent analyses hit one another's contingency
    /// tables and entropies.
    pub fn with_cache(
        table: &'a S,
        rows: RowSet,
        vars: Vec<AttrId>,
        cfg: CiConfig,
        cache: Arc<OracleCache>,
    ) -> Self {
        DataOracle {
            table,
            rows,
            vars,
            cfg,
            cache,
        }
    }

    /// Oracle over every attribute of the table.
    pub fn over_all_attrs(table: &'a S, rows: RowSet, cfg: CiConfig) -> Self {
        let vars: Vec<AttrId> = table.schema().attr_ids().collect();
        DataOracle::new(table, rows, vars, cfg)
    }

    /// The (possibly shared) cache behind this oracle.
    pub fn shared_cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// The attribute backing an oracle variable.
    pub fn attr_of(&self, v: Var) -> AttrId {
        self.vars[v]
    }

    /// The oracle variable of an attribute, if covered.
    pub fn var_of(&self, a: AttrId) -> Option<Var> {
        self.vars.iter().position(|&x| x == a)
    }

    /// The variable list.
    pub fn vars(&self) -> &[AttrId] {
        &self.vars
    }

    /// Number of selected rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &CiConfig {
        &self.cfg
    }

    /// The canonical cache key of a variable set: its attribute ids,
    /// sorted. Table-global, so oracles with different variable lists
    /// share entries through one [`OracleCache`].
    fn canonical_attrs(&self, vars: &[Var]) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = vars.iter().map(|&v| self.vars[v]).collect();
        attrs.sort_unstable();
        attrs
    }

    /// Counts over `vars` in the *given* order. Internally normalises to
    /// a sorted-attribute cache key and derives reorderings/marginals
    /// from cached supersets when materialisation is enabled.
    pub fn counts_for(&self, vars: &[Var]) -> Arc<ContingencyTable> {
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        debug_assert_eq!(
            sorted.len(),
            vars.len(),
            "duplicate variables in counts_for"
        );
        let attrs = self.canonical_attrs(&sorted);
        let base = self.canonical_counts(&attrs);
        let requested: Vec<AttrId> = vars.iter().map(|&v| self.vars[v]).collect();
        if requested == attrs {
            return base;
        }
        // Reorder by marginalising onto the requested permutation. The
        // result's counts are exact integer sums of the base's, so a
        // reordered table equals a direct scan in that order cell for
        // cell (every downstream consumer — strata, entropies, cross
        // tabs — is iteration-order-insensitive on top of that).
        let positions: Vec<usize> = requested
            .iter()
            .map(|a| attrs.binary_search(a).expect("attr present"))
            .collect();
        Arc::new(base.marginal(&positions))
    }

    /// The cost model over this oracle's selection: scan cost is the
    /// row count, marginal cost is the parent's support — both times
    /// the key width. This is a *work* model, not a wall-clock model:
    /// it deliberately ignores the worker-pool size, so a strategy
    /// decision depends only on the data and the cache contents at the
    /// moment it is made, never on `HYPDB_THREADS` — parallelism
    /// speeds the chosen plan up, it never changes which plan is
    /// cheapest. (Aggregate decision *counters* can still differ
    /// between worker counts when concurrent analyses interleave their
    /// cache population; the verdicts and reports never do.)
    fn cost_model(&self) -> CostModel {
        CostModel::new(self.rows.len() as u64, 1)
    }

    /// Predicted support of a table over `attrs` (sorted): the
    /// a-priori `min(∏ dims, rows)` bound, refined by every observed
    /// support of a superset already built through the cache (a
    /// marginal cannot have more non-zero cells than its parent).
    /// Exact once the set itself has been built.
    fn predict_support(&self, attrs: &[AttrId]) -> u64 {
        if let Some(observed) = self.cache.supports.get(attrs) {
            return observed;
        }
        let dims: Vec<u32> = attrs
            .iter()
            .map(|&a| self.table.cardinality(a).max(1))
            .collect();
        let bound = support_bound(&dims, self.rows.len() as u64);
        // lint:allow(nondeterministic-iteration) — fold computes a min over u64 supports, which is the same for every visit order
        self.cache.supports.fold(bound, |best, key, &sup| {
            if sup < best && is_subset(attrs, key) {
                sup
            } else {
                best
            }
        })
    }

    /// Predicted cost of making `attrs` (sorted) available: zero when
    /// already cached, otherwise the cheaper of a segment scan and a
    /// marginal walk of the best cached superset.
    fn predict_build_cost(&self, attrs: &[AttrId], cm: &CostModel) -> u64 {
        if self.cache.counts.get(attrs).is_some() {
            return 0;
        }
        let scan = cm.scan_cost(attrs.len());
        // lint:allow(nondeterministic-iteration) — fold computes a min over u64 costs, which is the same for every visit order
        self.cache.counts.fold(scan, |best, key, ct| {
            if is_subset(attrs, key) {
                best.min(cm.marginal_cost(ct.support(), attrs.len()))
            } else {
                best
            }
        })
    }

    /// The cached contingency table over a canonical (sorted) attribute
    /// set — the one place rows are ever scanned.
    ///
    /// On a miss the *cheapest cached superset* (by predicted marginal
    /// cost, tie-broken by `(len, key)`) competes against a direct
    /// segment scan under the cost model; `PlanForce` can pin either
    /// side. Whichever way the table is built, its cells are identical
    /// — the strategy decides work, never content.
    fn canonical_counts(&self, attrs: &[AttrId]) -> Arc<ContingencyTable> {
        let counters = &self.cache.counters;
        if !self.cfg.materialize {
            AtomicStats::bump(&counters.table_scans);
            let tick = hypdb_obs::Tick::now();
            let ct = Arc::new(ContingencyTable::from_table(self.table, &self.rows, attrs));
            hypdb_obs::CONTINGENCY_BUILD.observe(tick.elapsed_secs());
            return ct;
        }
        if let Some(hit) = self.cache.counts.get(attrs) {
            AtomicStats::bump(&counters.count_cache_hits);
            return hit;
        }
        let force = self.cfg.batch.force;
        let cm = self.cost_model();
        // Minimising over the *total* order (cost, len, key) keeps the
        // choice independent of the shard/bucket visit order; two
        // workers racing here compute identical tables either way.
        let superset = if force == PlanForce::Scan {
            None
        } else {
            // lint:allow(nondeterministic-iteration) — fold computes a min over the total order (cost, len, key), which is the same for every visit order
            self.cache.counts.fold(
                None::<(u64, Vec<AttrId>, Arc<ContingencyTable>)>,
                |best, key, ct| {
                    if !is_subset(attrs, key) {
                        return best;
                    }
                    let cost = cm.marginal_cost(ct.support(), attrs.len());
                    match &best {
                        Some((bc, bk, _))
                            if (*bc, bk.len(), bk.as_slice())
                                <= (cost, key.len(), key.as_slice()) =>
                        {
                            best
                        }
                        _ => Some((cost, key.clone(), ct.clone())),
                    }
                },
            )
        };
        let derive = match (&superset, force) {
            (Some(_), PlanForce::Marginalise) => true,
            (Some((cost, _, _)), PlanForce::Cost) => *cost < cm.scan_cost(attrs.len()),
            _ => false,
        };
        let tick = hypdb_obs::Tick::now();
        let ct = if derive {
            let (_, key, sup) = superset.expect("derive implies a superset");
            AtomicStats::bump(&counters.marginalizations);
            AtomicStats::bump(&counters.marginalised_from_superset);
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| key.binary_search(a).expect("subset"))
                .collect();
            Arc::new(sup.marginal(&positions))
        } else {
            AtomicStats::bump(&counters.table_scans);
            AtomicStats::bump(&counters.scans_direct);
            Arc::new(ContingencyTable::from_table(self.table, &self.rows, attrs))
        };
        hypdb_obs::CONTINGENCY_BUILD.observe(tick.elapsed_secs());
        self.cache.store_table(attrs.to_vec(), &ct);
        ct
    }

    /// Entropy (config estimator) of the joint distribution of `vars`,
    /// cached when enabled. The empty set has entropy 0.
    pub fn entropy(&self, vars: &[Var]) -> f64 {
        if vars.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let attrs = self.canonical_attrs(&sorted);
        if self.cfg.cache_entropies {
            if let Some(h) = self.cache.entropies.get(attrs.as_slice()) {
                AtomicStats::bump(&self.cache.counters.entropy_hits);
                return h;
            }
        }
        AtomicStats::bump(&self.cache.counters.entropy_misses);
        let h = self.canonical_counts(&attrs).entropy(self.cfg.estimator);
        if self.cfg.cache_entropies {
            self.cache.entropies.insert(attrs, h);
        }
        h
    }

    /// The statement-local RNG seed: a deterministic mix of the
    /// configured seed with `(x, y, sorted z)`. Every permutation test
    /// for a given statement therefore draws the same stream no matter
    /// which worker thread issues it, in which order — the keystone of
    /// the parallel-discovery determinism guarantee.
    fn statement_seed(&self, x: Var, y: Var, z: &[Var]) -> u64 {
        let mut zs: Vec<u64> = z.iter().map(|&v| v as u64).collect();
        zs.sort_unstable();
        seed::mix_all(self.cfg.seed, [x as u64, y as u64].into_iter().chain(zs))
    }

    /// Estimated CMI `Î(X;Y|Z)` with the configured estimator, via the
    /// entropy identity (this is where entropy caching pays off: `H(XZ)`
    /// and `H(Z)` are shared across many statements).
    pub fn cmi(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        let mut xz = z.to_vec();
        xz.push(x);
        let mut yz = z.to_vec();
        yz.push(y);
        let mut xyz = z.to_vec();
        xyz.push(x);
        xyz.push(y);
        self.entropy(&xz) + self.entropy(&yz) - self.entropy(&xyz) - self.entropy(z)
    }

    /// The paper's degrees-of-freedom formula
    /// `(|Π_X|−1)(|Π_Y|−1)|Π_Z|`, with supports measured on the current
    /// selection.
    fn paper_dof(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        let sx = self.counts_for(&[x]).support().max(1);
        let sy = self.counts_for(&[y]).support().max(1);
        let sz = if z.is_empty() {
            1
        } else {
            let mut zs = z.to_vec();
            zs.sort_unstable();
            self.canonical_counts(&self.canonical_attrs(&zs))
                .support()
                .max(1)
        };
        ((sx - 1) * (sy - 1) * sz) as f64
    }

    /// Builds the stratified cross tabs of `(x, y)` given `z` from the
    /// (possibly cached) joint contingency table.
    fn strata(&self, x: Var, y: Var, z: &[Var]) -> Strata {
        let mut order = Vec::with_capacity(z.len() + 2);
        order.push(x);
        order.push(y);
        let mut zs = z.to_vec();
        zs.sort_unstable();
        order.extend_from_slice(&zs);
        let ct = self.counts_for(&order);
        let dims = ct.dims();
        let (r, c) = (dims[0] as usize, dims[1] as usize);
        if z.is_empty() {
            return Strata::single(ct.to_crosstab());
        }
        let mut groups: FxHashMap<Box<[u32]>, CrossTab> = FxHashMap::default();
        ct.for_each(|key, count| {
            let tab = groups
                .entry(key[2..].to_vec().into_boxed_slice())
                .or_insert_with(|| CrossTab::zeros(r, c));
            tab.add(key[0] as usize, key[1] as usize, count);
        });
        // Canonical group order (sorted by conditioning key): the map's
        // iteration order depends on how `ct` was built (scan vs cached
        // marginalisation — timing-dependent under parallel discovery),
        // and the group order drives both the CMI's floating-point sum
        // and MIT's per-group RNG consumption.
        let mut keyed: Vec<(Box<[u32]>, CrossTab)> = groups.into_iter().collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Strata::new(keyed.into_iter().map(|(_, tab)| tab).collect())
    }

    fn chi2_outcome(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        let stat = self.cmi(x, y, z);
        let n = self.rows.len() as f64;
        let df = self.paper_dof(x, y, z);
        let g = 2.0 * n * stat.max(0.0);
        let p = if df == 0.0 { 1.0 } else { chi2_sf(g, df) };
        TestOutcome {
            statistic: stat,
            p_value: p,
            ci95: None,
            df: Some(df),
            method: TestMethod::ChiSquared,
            permutations: None,
        }
    }

    /// Replicates `test`'s dispatch for one statement, but *defers* the
    /// expensive permutation run into a [`MitJob`] so a whole group can
    /// settle together in `mit_batch`. χ² outcomes (and HyMIT's χ²
    /// shortcut) complete inline — they only touch the shared caches.
    fn prepare_statement(&self, x: Var, y: Var, z: &[Var]) -> PreparedTest {
        assert!(x != y && !z.contains(&x) && !z.contains(&y));
        AtomicStats::bump(&self.cache.counters.tests);
        let seed = self.statement_seed(x, y, z);
        let early = self.cfg.mit.early_stop;
        let m = self.cfg.mit.permutations;
        match self.cfg.kind {
            IndependenceTestKind::ChiSquared => PreparedTest::Done(self.chi2_outcome(x, y, z)),
            IndependenceTestKind::Mit => {
                let strata = self.strata(x, y, z);
                let schedule = StageSchedule::derive(seed, &strata, &self.cfg.mit, self.cfg.alpha);
                PreparedTest::Perm(MitJob {
                    strata,
                    permutations: m,
                    group_sample: None,
                    early_stop: early,
                    seed,
                    schedule,
                })
            }
            IndependenceTestKind::MitSampled { max_groups } => {
                let strata = self.strata(x, y, z);
                let schedule = StageSchedule::derive(seed, &strata, &self.cfg.mit, self.cfg.alpha);
                PreparedTest::Perm(MitJob {
                    strata,
                    permutations: m,
                    group_sample: Some(max_groups),
                    early_stop: early,
                    seed,
                    schedule,
                })
            }
            IndependenceTestKind::HyMit => {
                let n = self.rows.len() as f64;
                let df = self.paper_dof(x, y, z);
                if df == 0.0 || df * self.cfg.mit.beta <= n {
                    PreparedTest::Done(self.chi2_outcome(x, y, z))
                } else {
                    let strata = self.strata(x, y, z);
                    let g = strata.num_groups();
                    let schedule =
                        StageSchedule::derive(seed, &strata, &self.cfg.mit, self.cfg.alpha);
                    PreparedTest::Perm(MitJob {
                        strata,
                        permutations: m,
                        group_sample: (g > 64).then(|| MitConfig::auto_group_sample(g)),
                        early_stop: early,
                        seed,
                        schedule,
                    })
                }
            }
        }
    }

    /// Executes one planned group: a parallel *prepare* pass builds
    /// every member's strata against the (just-materialised) shared
    /// joint, then `mit_batch` settles all deferred permutation tests
    /// together. Outcomes are returned in member order and are
    /// byte-identical to calling `test` per member.
    fn test_group(&self, unique: &[CiStatement], members: &[usize]) -> Vec<TestOutcome> {
        let pool = ThreadPool::current();
        let prepared = pool.parallel_map(members, |_, &m| {
            let s = &unique[m];
            self.prepare_statement(s.x, s.y, &s.z)
        });
        let jobs: Vec<MitJob> = prepared
            .iter()
            .filter_map(|p| match p {
                PreparedTest::Perm(job) => Some(job.clone()),
                PreparedTest::Done(_) => None,
            })
            .collect();
        let perm_outs = mit_batch_staged(&jobs);
        let mut perm_iter = perm_outs.into_iter();
        members
            .iter()
            .zip(prepared)
            .map(|(&m, p)| match p {
                PreparedTest::Done(out) => out,
                PreparedTest::Perm(_) => {
                    let s = &unique[m];
                    let (mut out, report) = perm_iter.next().expect("one outcome per job");
                    self.cache.counters.note_stage(&report);
                    // Report the configured estimator's CMI, exactly as
                    // the call-at-a-time path does after its run.
                    out.statistic = self.cmi(s.x, s.y, &s.z);
                    out
                }
            })
            .collect()
    }

    /// The per-group strategy choice: decide whether the group's
    /// shared joint pays for itself and materialise accordingly.
    ///
    /// Each member statement `X ⊥⊥ Y | Z` works from the table over
    /// `{x, y} ∪ z` (its strata and entropies all derive from it). The
    /// joint strategy builds the group's full joint once, then walks
    /// it per member table (`support × width` each); the direct
    /// strategy builds every member table on demand (each priced as
    /// the cheaper of a scan and the best cached superset). The cost
    /// model picks the cheaper plan; `PlanForce` pins either side.
    /// When the joint wins and fans out widely, a lattice descent
    /// additionally materialises cost-approved intermediate marginals
    /// between the joint and the member tables.
    fn stage_group(&self, unique: &[CiStatement], group: &PlanGroup) {
        let force = self.cfg.batch.force;
        if force == PlanForce::Scan {
            return; // members build their own tables on demand
        }
        let joint = self.canonical_attrs(&group.joint);
        // Distinct member target tables, sorted for a deterministic
        // descent order.
        let mut targets: Vec<Vec<AttrId>> = group
            .members
            .iter()
            .map(|&m| {
                let s = &unique[m];
                let mut vars = s.z.clone();
                vars.push(s.x);
                vars.push(s.y);
                self.canonical_attrs(&vars)
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let cm = self.cost_model();
        let materialise_joint = match force {
            PlanForce::Marginalise => true,
            _ => {
                let sup_joint = self.predict_support(&joint);
                let joint_cost = self.predict_build_cost(&joint, &cm)
                    + targets
                        .iter()
                        .filter(|t| *t != &joint)
                        .map(|t| cm.marginal_cost(sup_joint, t.len()))
                        .sum::<u64>();
                let direct_cost = targets
                    .iter()
                    .map(|t| self.predict_build_cost(t, &cm))
                    .sum::<u64>();
                joint_cost < direct_cost
            }
        };
        if materialise_joint {
            let _ = self.canonical_counts(&joint);
            if force == PlanForce::Cost {
                self.lattice_descend(&joint, &targets, &cm, 0);
            }
        }
    }

    /// Top-down lattice descent from a freshly materialised parent
    /// towards the member target tables: split the targets into
    /// halves, and when a half's union is strictly narrower than the
    /// parent *and* routing the half through that intermediate is
    /// predicted cheaper than walking the parent per member, build the
    /// intermediate and recurse into the half. Members then derive
    /// from the narrowest cost-winning ancestor automatically (the
    /// cheapest-superset search in [`Self::canonical_counts`]).
    fn lattice_descend(
        &self,
        parent: &[AttrId],
        targets: &[Vec<AttrId>],
        cm: &CostModel,
        depth: usize,
    ) {
        const MIN_FANOUT: usize = 4;
        const MAX_DEPTH: usize = 4;
        if depth >= MAX_DEPTH || targets.len() < MIN_FANOUT {
            return;
        }
        let sup_parent = self.predict_support(parent);
        let mid = targets.len() / 2;
        for half in [&targets[..mid], &targets[mid..]] {
            let mut inter: Vec<AttrId> = half.iter().flatten().copied().collect();
            inter.sort_unstable();
            inter.dedup();
            if inter.len() >= parent.len() {
                continue; // no narrowing: the intermediate is the parent
            }
            let sup_inter = self.predict_support(&inter);
            let with_inter = cm.marginal_cost(sup_parent, inter.len())
                + half
                    .iter()
                    .map(|t| cm.marginal_cost(sup_inter, t.len()))
                    .sum::<u64>();
            let without = half
                .iter()
                .map(|t| cm.marginal_cost(sup_parent, t.len()))
                .sum::<u64>();
            if with_inter < without {
                if self.cache.counts.get(inter.as_slice()).is_none() {
                    AtomicStats::bump(&self.cache.counters.lattice_intermediates);
                    let _ = self.canonical_counts(&inter);
                }
                self.lattice_descend(&inter, half, cm, depth + 1);
            }
        }
    }

    /// Builds one planner round's EXPLAIN record: the
    /// data-deterministic facts only — attribute sets, cardinalities,
    /// row count, group structure, and (for speculative rounds) the
    /// decisive hit index. Never live cache state or counters; the
    /// cost replay happens later in [`crate::explain::assemble`].
    fn explain_round(
        &self,
        kind: &str,
        stmts: &[CiStatement],
        plan: &Plan,
        hit: Option<usize>,
    ) -> crate::explain::RoundRecord {
        use crate::explain::{GroupRecord, RoundRecord};
        let mut used: Vec<AttrId> = Vec::new();
        let mut target_attrs: Vec<Vec<AttrId>> = Vec::with_capacity(plan.num_unique());
        for s in plan.unique() {
            let mut vars = s.z.clone();
            vars.push(s.x);
            vars.push(s.y);
            let attrs = self.canonical_attrs(&vars);
            used.extend_from_slice(&attrs);
            target_attrs.push(attrs);
        }
        used.sort_unstable();
        used.dedup();
        // Ascending-index sets over the dictionary preserve the
        // planner's `AttrId` lexicographic order exactly.
        let to_idx = |attrs: &[AttrId]| -> Vec<usize> {
            attrs
                .iter()
                .map(|a| used.binary_search(a).expect("attr in dictionary"))
                .collect()
        };
        RoundRecord {
            kind: kind.to_string(),
            rows: self.rows.len() as u64,
            statements: stmts.len(),
            hit,
            slots: plan.slots().to_vec(),
            attrs: used
                .iter()
                .map(|&a| {
                    (
                        self.table.schema().name(a).to_string(),
                        u64::from(self.table.cardinality(a).max(1)),
                    )
                })
                .collect(),
            unique_targets: target_attrs.iter().map(|t| to_idx(t)).collect(),
            stage_budgets: plan
                .unique()
                .iter()
                .map(|s| self.stage_budget(s.x, s.y, &s.z))
                .collect(),
            groups: plan
                .groups()
                .iter()
                .map(|g| GroupRecord {
                    z: to_idx(&self.canonical_attrs(&g.z)),
                    joint: to_idx(&self.canonical_attrs(&g.joint)),
                    members: g.members.clone(),
                })
                .collect(),
        }
    }

    /// The a-priori staged budget checkpoints of one statement — the
    /// EXPLAIN per-statement stage record. `[m]` when the schedule is
    /// pinned single-stage, empty when the statement settles inline
    /// (χ² dispatch, HyMIT's χ² shortcut). A pure function of the
    /// statement seed, the strata shape, and the MIT config, so the
    /// record is byte-identical across threads, shards, and
    /// `HYPDB_PLAN_FORCE`.
    fn stage_budget(&self, x: Var, y: Var, z: &[Var]) -> Vec<usize> {
        let derive = || {
            let seed = self.statement_seed(x, y, z);
            let strata = self.strata(x, y, z);
            StageSchedule::derive(seed, &strata, &self.cfg.mit, self.cfg.alpha)
                .stages()
                .to_vec()
        };
        match self.cfg.kind {
            IndependenceTestKind::ChiSquared => Vec::new(),
            IndependenceTestKind::Mit | IndependenceTestKind::MitSampled { .. } => derive(),
            IndependenceTestKind::HyMit => {
                let n = self.rows.len() as f64;
                let df = self.paper_dof(x, y, z);
                if df == 0.0 || df * self.cfg.mit.beta <= n {
                    Vec::new()
                } else {
                    derive()
                }
            }
        }
    }

    /// Stage-aware wave settlement for [`Self::find_first_planned`]:
    /// verdict-only, so the speculation round composes with staged
    /// budgets. Every wave member runs its screening pass in one
    /// fan-out; then, if a screening checkpoint already produced the
    /// wave's first `want` hit, only the near-alpha survivors sitting
    /// at *earlier* window positions escalate (they could still move
    /// the hit forward) — survivors at or past the hit are left
    /// unsettled, their verdict never consulted because the round
    /// returns at the hit. The returned index is therefore identical
    /// to full-budget evaluation; only the work differs. A skipped
    /// survivor's verdict stays `None`: if a later round needs it, the
    /// statement seed re-derives the same stream deterministically.
    ///
    /// Skipped survivors' screening permutations are charged to
    /// `mit_permutations` without a settled/escalated bump — they
    /// reached no verdict.
    fn settle_wave(
        &self,
        unique: &[CiStatement],
        members: &[usize],
        window: &[usize],
        verdicts: &mut [Option<bool>],
        want: bool,
    ) {
        let pool = ThreadPool::current();
        let prepared = pool.parallel_map(members, |_, &m| {
            let s = &unique[m];
            self.prepare_statement(s.x, s.y, &s.z)
        });
        let alpha = self.cfg.alpha;
        hypdb_obs::span("mit_settle", || {
            let deferred: Vec<usize> = prepared
                .iter()
                .enumerate()
                .filter_map(|(j, p)| matches!(p, PreparedTest::Perm(_)).then_some(j))
                .collect();
            let passes: Vec<StagePass> = hypdb_obs::span("mit_stage", || {
                pool.parallel_map(&deferred, |_, &j| {
                    let PreparedTest::Perm(job) = &prepared[j] else {
                        unreachable!("deferred positions hold jobs");
                    };
                    let tick = hypdb_obs::Tick::now();
                    let pass = mit_stage1(job);
                    hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
                    pass
                })
            });
            // Verdicts known without escalation: χ² inline results plus
            // decisively screened jobs.
            let mut outcome_of: Vec<Option<TestOutcome>> = prepared
                .iter()
                .map(|p| match p {
                    PreparedTest::Done(out) => Some(out.clone()),
                    PreparedTest::Perm(_) => None,
                })
                .collect();
            for (&j, pass) in deferred.iter().zip(&passes) {
                if let StagePass::Settled { outcome, stage } = pass {
                    let PreparedTest::Perm(job) = &prepared[j] else {
                        unreachable!("deferred positions hold jobs");
                    };
                    self.cache.counters.note_stage(&StageReport {
                        stages: job.schedule.stages().len(),
                        stage: *stage,
                        permutations: outcome.permutations.unwrap_or(0),
                    });
                    outcome_of[j] = Some(outcome.clone());
                }
            }
            // The earliest window position already holding the wanted
            // verdict, and each member's earliest window position.
            let member_at = |u: usize| members.binary_search(&u).ok();
            let hit_pos = window.iter().position(|&u| {
                member_at(u)
                    .and_then(|j| outcome_of[j].as_ref())
                    .map(|out| out.independent(alpha) == want)
                    .unwrap_or(false)
            });
            let earliest = |j: usize| -> usize {
                window
                    .iter()
                    .position(|&u| u == members[j])
                    .unwrap_or(usize::MAX)
            };
            let survivors: Vec<(usize, &MitPartial)> = deferred
                .iter()
                .zip(&passes)
                .filter_map(|(&j, pass)| match pass {
                    StagePass::Escalate(partial) => Some((j, partial)),
                    StagePass::Settled { .. } => None,
                })
                .collect();
            let run: Vec<usize> = survivors
                .iter()
                .enumerate()
                .filter_map(|(k, &(j, _))| match hit_pos {
                    Some(h) => (earliest(j) < h).then_some(k),
                    None => Some(k),
                })
                .collect();
            if !run.is_empty() {
                let resumed: Vec<TestOutcome> = hypdb_obs::span("mit_stage", || {
                    pool.parallel_map(&run, |_, &k| {
                        let (j, partial) = survivors[k];
                        let PreparedTest::Perm(job) = &prepared[j] else {
                            unreachable!("deferred positions hold jobs");
                        };
                        let tick = hypdb_obs::Tick::now();
                        let out = mit_resume(partial, job.early_stop);
                        hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
                        out
                    })
                });
                for (&k, out) in run.iter().zip(resumed) {
                    let (j, _) = survivors[k];
                    let PreparedTest::Perm(job) = &prepared[j] else {
                        unreachable!("deferred positions hold jobs");
                    };
                    let stages = job.schedule.stages().len();
                    self.cache.counters.note_stage(&StageReport {
                        stages,
                        stage: stages - 1,
                        permutations: out.permutations.unwrap_or(0),
                    });
                    outcome_of[j] = Some(out);
                }
            }
            // Screening work of the survivors the hit made moot.
            for (k, &(_, partial)) in survivors.iter().enumerate() {
                if !run.contains(&k) {
                    AtomicStats::add(
                        &self.cache.counters.mit_permutations,
                        partial.permutations_done() as u64,
                    );
                }
            }
            for (&m, out) in members.iter().zip(&outcome_of) {
                if let Some(out) = out {
                    verdicts[m] = Some(out.independent(alpha));
                }
            }
        });
    }

    /// The planned body of [`CiOracle::find_first`], split out so the
    /// round can be spanned and its EXPLAIN record capture the result.
    fn find_first_planned(&self, stmts: &[CiStatement], plan: &Plan, want: bool) -> Option<usize> {
        let group_of: Vec<usize> = {
            let mut g = vec![0usize; plan.num_unique()];
            for (gi, group) in plan.groups().iter().enumerate() {
                for &m in &group.members {
                    g[m] = gi;
                }
            }
            g
        };
        let mut staged = vec![false; plan.groups().len()];
        let slots = plan.slots();
        let mut verdicts: Vec<Option<bool>> = vec![None; plan.num_unique()];
        let mut i = 0;
        let mut wave = 1usize;
        while i < stmts.len() {
            let end = (i + wave).min(stmts.len());
            wave = (wave * 2).min(SPECULATION_WAVE);
            let mut members: Vec<usize> = slots[i..end]
                .iter()
                .copied()
                .filter(|&u| verdicts[u].is_none())
                .collect();
            members.sort_unstable();
            members.dedup();
            if !members.is_empty() {
                if self.cfg.materialize {
                    for &u in &members {
                        let gi = group_of[u];
                        if !staged[gi] {
                            staged[gi] = true;
                            self.stage_group(plan.unique(), &plan.groups()[gi]);
                        }
                    }
                }
                AtomicStats::add(
                    &self.cache.counters.batched_statements,
                    members.len() as u64,
                );
                self.settle_wave(plan.unique(), &members, &slots[i..end], &mut verdicts, want);
            }
            for (k, &u) in slots[i..end].iter().enumerate() {
                if verdicts[u] == Some(want) {
                    AtomicStats::add(
                        &self.cache.counters.speculative_skipped,
                        (stmts.len() - end) as u64,
                    );
                    return Some(i + k);
                }
            }
            i = end;
        }
        None
    }
}

/// A statement after the cheap dispatch phase of batched execution:
/// either already settled (χ² paths) or a deferred permutation job.
enum PreparedTest {
    Done(TestOutcome),
    Perm(MitJob),
}

fn is_subset<T: Ord>(small: &[T], big: &[T]) -> bool {
    // Both sorted.
    let mut it = big.iter();
    'outer: for s in small {
        for b in it.by_ref() {
            if b == s {
                continue 'outer;
            }
            if b > s {
                return false;
            }
        }
        return false;
    }
    true
}

impl<S: Scan + ?Sized> CiOracle for DataOracle<'_, S> {
    fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// One statement, settled through the same staged procedure the
    /// batched paths run ([`mit_settle_one`] agrees bit for bit with
    /// [`mit_batch_staged`]), so call-at-a-time and batched execution
    /// stay byte-identical at every `HYPDB_MIT_STAGES` setting.
    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        match self.prepare_statement(x, y, z) {
            PreparedTest::Done(out) => out,
            PreparedTest::Perm(job) => {
                let tick = hypdb_obs::Tick::now();
                let (mut out, report) = mit_settle_one(&job);
                hypdb_obs::MIT_SETTLE.observe(tick.elapsed_secs());
                self.cache.counters.note_stage(&report);
                out.statistic = self.cmi(x, y, z);
                out
            }
        }
    }

    fn alpha(&self) -> f64 {
        self.cfg.alpha
    }

    fn assoc(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        self.cmi(x, y, z)
    }

    /// The χ²-style power heuristic: a test is reliable when
    /// `df · β ≤ n` (the same rule HyMIT uses to trust the asymptotic
    /// approximation, §6).
    fn reliable(&self, x: Var, y: Var, z: &[Var]) -> bool {
        let df = self.paper_dof(x, y, z);
        df > 0.0 && df * self.cfg.mit.beta <= self.rows.len() as f64
    }

    /// Dependence verdicts are calibrated for the permutation-based
    /// procedures regardless of sparseness (HyMIT switches to MIT
    /// exactly when χ² would be untrustworthy); the pure χ² oracle
    /// keeps the power gate.
    fn reliable_dependence(&self, x: Var, y: Var, z: &[Var]) -> bool {
        match self.cfg.kind {
            IndependenceTestKind::ChiSquared => self.reliable(x, y, z),
            IndependenceTestKind::Mit
            | IndependenceTestKind::MitSampled { .. }
            | IndependenceTestKind::HyMit => {
                // Still require a non-degenerate pair (both variables
                // must vary in the selection).
                self.counts_for(&[x]).support() > 1 && self.counts_for(&[y]).support() > 1
            }
        }
    }

    fn prefers_batches(&self) -> bool {
        self.cfg.batch.enabled
    }

    /// Plan-then-execute: canonicalise + dedupe the statements, group
    /// them by conditioning set, materialise each group's shared joint
    /// contingency table (largest first, so smaller groups marginalise
    /// from cached supersets), then settle every group's permutation
    /// tests in one pool fan-out with per-statement seeds. Verdicts are
    /// byte-identical to call-at-a-time `test` — grouping and group
    /// order only change which scans are *skipped*.
    fn test_batch(&self, stmts: &[CiStatement]) -> Vec<TestOutcome> {
        if !self.cfg.batch.enabled || stmts.len() <= 1 {
            return stmts.iter().map(|s| self.test(s.x, s.y, &s.z)).collect();
        }
        let plan = Plan::build(stmts);
        hypdb_obs::record_explain(|| self.explain_round("batch", stmts, &plan, None).to_json());
        let counters = &self.cache.counters;
        AtomicStats::add(&counters.batched_statements, stmts.len() as u64);
        AtomicStats::add(&counters.groups_planned, plan.groups().len() as u64);
        hypdb_obs::span("planner_round", || {
            let mut results: Vec<Option<TestOutcome>> = vec![None; plan.num_unique()];
            for group in plan.groups() {
                // The shared pass: when the cost model approves (or a
                // forced strategy demands it), one scan — plus any
                // lattice-descent intermediates — covers every member's
                // contingency and entropy work for this conditioning set.
                if self.cfg.materialize {
                    self.stage_group(plan.unique(), group);
                }
                let outcomes = self.test_group(plan.unique(), &group.members);
                for (&m, out) in group.members.iter().zip(outcomes) {
                    results[m] = Some(out);
                }
            }
            plan.slots()
                .iter()
                .map(|&u| results[u].clone().expect("every unique statement executed"))
                .collect()
        })
    }

    /// Speculation-pruned round evaluation: plan the round once (so
    /// conditioning-set groups share staged joints and lattice
    /// intermediates), then settle verdicts in waves of at most
    /// [`SPECULATION_WAVE`] statements in submission order, stopping at
    /// the first wave containing a hit. Everything past the hit — the
    /// statements the round's sequential semantics must discard — is
    /// skipped unevaluated and counted as `speculative_skipped`. A
    /// statement group is staged (its shared joint and lattice
    /// intermediates materialised) only when a wave first touches it,
    /// so work planned for skipped statements is never paid. The
    /// returned index is identical to the default linear scan — only
    /// the work differs.
    fn find_first(&self, stmts: &[CiStatement], want: bool) -> Option<usize> {
        if !self.cfg.batch.enabled || stmts.len() <= 1 {
            return stmts
                .iter()
                .position(|s| self.independent(s.x, s.y, &s.z) == want);
        }
        let plan = Plan::build(stmts);
        AtomicStats::add(
            &self.cache.counters.groups_planned,
            plan.groups().len() as u64,
        );
        let hit = hypdb_obs::span("planner_round", || {
            self.find_first_planned(stmts, &plan, want)
        });
        hypdb_obs::record_explain(|| {
            self.explain_round("find_first", stmts, &plan, hit)
                .to_json()
        });
        hit
    }

    fn stats(&self) -> OracleStats {
        self.cache.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.cache.counters.reset();
    }
}

/// Exact d-separation oracle over a known DAG (for tests & calibration).
pub struct GraphOracle {
    dag: Dag,
    counters: Mutex<OracleStats>,
}

impl GraphOracle {
    /// Wraps a DAG; variable `i` is DAG node `i`.
    pub fn new(dag: Dag) -> Self {
        GraphOracle {
            dag,
            counters: Mutex::new(OracleStats::default()),
        }
    }

    /// The wrapped DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }
}

impl CiOracle for GraphOracle {
    fn num_vars(&self) -> usize {
        self.dag.len()
    }

    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        self.counters.lock().tests += 1;
        let sep = d_separated_pair(&self.dag, x, y, z);
        TestOutcome {
            statistic: if sep { 0.0 } else { 1.0 },
            p_value: if sep { 1.0 } else { 0.0 },
            ci95: None,
            df: None,
            method: TestMethod::ChiSquared,
            permutations: None,
        }
    }

    fn alpha(&self) -> f64 {
        0.5
    }

    fn stats(&self) -> OracleStats {
        *self.counters.lock()
    }

    fn reset_stats(&self) {
        *self.counters.lock() = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_graph::bayes::BayesNet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Z -> X, Z -> Y (X ⊥ Y | Z), n = 20k.
    fn fork_table() -> Table {
        let mut dag = Dag::with_names(["X", "Y", "Z"]);
        dag.add_edge(2, 0);
        dag.add_edge(2, 1);
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(2, vec![0.5, 0.5]);
        net.set_cpt(0, vec![0.85, 0.15, 0.15, 0.85]);
        net.set_cpt(1, vec![0.2, 0.8, 0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(11);
        net.sample_table(&mut rng, 20_000)
    }

    fn oracle(table: &Table, kind: IndependenceTestKind) -> DataOracle<'_> {
        let cfg = CiConfig {
            kind,
            ..CiConfig::default()
        };
        DataOracle::over_all_attrs(table, table.all_rows(), cfg)
    }

    #[test]
    fn chi2_oracle_fork_structure() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        assert!(o.dependent(0, 1, &[]), "X, Y marginally dependent");
        assert!(o.independent(0, 1, &[2]), "X ⊥ Y | Z");
        assert!(o.dependent(0, 2, &[]));
        assert_eq!(o.stats().tests, 3);
    }

    #[test]
    fn all_test_kinds_agree_on_fork() {
        let t = fork_table();
        for kind in [
            IndependenceTestKind::ChiSquared,
            IndependenceTestKind::Mit,
            IndependenceTestKind::MitSampled { max_groups: 8 },
            IndependenceTestKind::HyMit,
        ] {
            let o = oracle(&t, kind);
            assert!(o.dependent(0, 1, &[]), "{kind:?}: marginal dependence");
            assert!(o.independent(0, 1, &[2]), "{kind:?}: conditional indep");
        }
    }

    #[test]
    fn entropy_cache_hits() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        o.cmi(0, 1, &[2]);
        let s1 = o.stats();
        assert!(s1.entropy_misses >= 4);
        o.cmi(0, 2, &[1]); // shares H(XYZ)... and more
        let s2 = o.stats();
        assert!(s2.entropy_hits > 0, "shared entropies must hit the cache");
    }

    #[test]
    fn caching_off_recomputes() {
        let t = fork_table();
        let cfg = CiConfig {
            kind: IndependenceTestKind::ChiSquared,
            cache_entropies: false,
            materialize: false,
            ..CiConfig::default()
        };
        let o = DataOracle::over_all_attrs(&t, t.all_rows(), cfg);
        o.cmi(0, 1, &[2]);
        o.cmi(0, 1, &[2]);
        let s = o.stats();
        assert_eq!(s.entropy_hits, 0);
        assert_eq!(s.count_cache_hits, 0);
        assert!(s.table_scans >= 8);
    }

    #[test]
    fn materialization_derives_marginals() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        // Prime with the full joint.
        o.counts_for(&[0, 1, 2]);
        let before = o.stats();
        // All strict subsets should now derive, not scan.
        o.entropy(&[0, 1]);
        o.entropy(&[2]);
        let after = o.stats();
        assert_eq!(after.table_scans, before.table_scans);
        assert_eq!(after.marginalizations, before.marginalizations + 2);
    }

    #[test]
    fn support_predictor_bounds_and_refines() {
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "y", "k"]);
        for r in 0..400u32 {
            let i = r / 4; // 100 distinct rows, each seen four times
            let x = (i % 2).to_string();
            let y = ((i / 2) % 2).to_string();
            let k = i.to_string();
            b.push_row([x.as_str(), y.as_str(), k.as_str()]).unwrap();
        }
        let t = b.finish();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        let cm = o.cost_model();
        let attrs = |vars: &[Var]| o.canonical_attrs(vars);
        // Cold: the predictor is the pure min(∏ dims, rows) bound.
        assert_eq!(o.predict_support(&attrs(&[0, 1])), 4);
        assert_eq!(o.predict_support(&attrs(&[0, 2])), 200); // 2·100 < 400 rows
                                                             // Building a table makes its own prediction exact…
        let joint = o.counts_for(&[0, 1, 2]);
        assert_eq!(joint.support(), 100);
        assert_eq!(o.predict_support(&attrs(&[0, 1, 2])), 100);
        // …and refines every subset: a marginal cannot out-support its
        // parent, so the [0, 2] estimate halves (and is exact here).
        assert_eq!(o.predict_support(&attrs(&[0, 2])), 100);
        assert_eq!(o.counts_for(&[0, 2]).support(), 100);
        // A cached table costs nothing to "build"; deriving a fresh
        // marginal from the cached joint is priced below a scan.
        assert_eq!(o.predict_build_cost(&attrs(&[0, 1, 2]), &cm), 0);
        assert!(o.predict_build_cost(&attrs(&[1, 2]), &cm) < cm.scan_cost(2));
    }

    #[test]
    fn cache_bytes_track_resident_tables() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        assert_eq!(o.shared_cache().cache_bytes(), 0);
        let joint = o.counts_for(&[0, 1, 2]);
        let after_joint = o.shared_cache().cache_bytes();
        assert_eq!(after_joint, joint.approx_bytes());
        // Re-requesting the same table must not double-charge.
        o.counts_for(&[0, 1, 2]);
        assert_eq!(o.shared_cache().cache_bytes(), after_joint);
        // A derived marginal adds its own footprint.
        let pair = o.counts_for(&[0, 1]);
        assert_eq!(
            o.shared_cache().cache_bytes(),
            after_joint + pair.approx_bytes()
        );
    }

    #[test]
    fn find_first_matches_lazy_scan() {
        let t = fork_table();
        // In the fork X ← Z → Y: X ⊥⊥ Y | Z, everything else dependent.
        let stmts = vec![
            CiStatement::new(0, 2, vec![]),
            CiStatement::new(1, 2, vec![0]),
            CiStatement::new(0, 1, vec![2]),
            CiStatement::new(0, 1, vec![]),
            CiStatement::new(1, 2, vec![]),
        ];
        for force in [PlanForce::Cost, PlanForce::Scan, PlanForce::Marginalise] {
            let mut cfg = CiConfig::default();
            cfg.batch.force = force;
            let o = DataOracle::over_all_attrs(&t, t.all_rows(), cfg);
            for want in [true, false] {
                let lazy = stmts
                    .iter()
                    .position(|s| o.independent(s.x, s.y, &s.z) == want);
                assert_eq!(o.find_first(&stmts, want), lazy, "want={want}");
            }
            // An all-miss round returns None.
            let all_dep = vec![
                CiStatement::new(0, 2, vec![]),
                CiStatement::new(1, 2, vec![]),
            ];
            assert_eq!(o.find_first(&all_dep, true), None);
        }
    }

    #[test]
    fn forced_strategies_agree_and_count_decisions() {
        let t = fork_table();
        let stmts = vec![
            CiStatement::new(0, 1, vec![2]),
            CiStatement::new(0, 2, vec![]),
            CiStatement::new(1, 2, vec![]),
            CiStatement::new(0, 1, vec![]),
        ];
        let mut baseline = None;
        for force in [PlanForce::Cost, PlanForce::Scan, PlanForce::Marginalise] {
            let mut cfg = CiConfig::default();
            cfg.batch.force = force;
            let o = DataOracle::over_all_attrs(&t, t.all_rows(), cfg);
            let outs = o.test_batch(&stmts);
            let key: Vec<(u64, u64)> = outs
                .iter()
                .map(|o| (o.statistic.to_bits(), o.p_value.to_bits()))
                .collect();
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(&key, b, "strategy {force:?} changed outcomes"),
            }
            let s = o.stats();
            match force {
                // Every table built fresh: no superset derivations.
                PlanForce::Scan => assert_eq!(s.marginalised_from_superset, 0),
                // The group joint always materialises, so the
                // single-stratum tables derive from it.
                PlanForce::Marginalise => assert!(s.marginalised_from_superset > 0),
                PlanForce::Cost => {}
            }
            assert_eq!(s.scans_direct, s.table_scans);
        }
    }

    #[test]
    fn counts_respect_order() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        let xy = o.counts_for(&[0, 1]);
        let yx = o.counts_for(&[1, 0]);
        assert_eq!(xy.get(&[0, 1]), yx.get(&[1, 0]));
        assert_eq!(xy.total(), yx.total());
    }

    #[test]
    fn graph_oracle_is_exact() {
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2);
        dag.add_edge(1, 2);
        let o = GraphOracle::new(dag);
        assert!(o.independent(0, 1, &[]));
        assert!(o.dependent(0, 1, &[2]));
        assert!(o.dependent(0, 2, &[1]));
        assert_eq!(o.stats().tests, 3);
        o.reset_stats();
        assert_eq!(o.stats().tests, 0);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn reliability_gates_are_asymmetric() {
        // A table with a wide key-like column: conditioning on it
        // shatters the data, so acceptances must be unreliable.
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "y", "k"]);
        for i in 0..400u32 {
            let x = (i % 2).to_string();
            let y = ((i / 2) % 2).to_string();
            let k = (i % 199).to_string();
            b.push_row([x.as_str(), y.as_str(), k.as_str()]).unwrap();
        }
        let t = b.finish();
        // χ² oracle: both gates use the power rule.
        let chi = DataOracle::over_all_attrs(
            &t,
            t.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::ChiSquared,
                ..CiConfig::default()
            },
        );
        assert!(
            !chi.reliable(0, 1, &[2]),
            "shattered: acceptance unreliable"
        );
        assert!(
            !chi.reliable_dependence(0, 1, &[2]),
            "sparse χ² rejection is anti-conservative"
        );
        assert!(chi.reliable(0, 1, &[]), "marginal test is fine");
        // Permutation oracle: rejections stay trustworthy.
        let mitc = DataOracle::over_all_attrs(
            &t,
            t.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::HyMit,
                ..CiConfig::default()
            },
        );
        assert!(!mitc.reliable(0, 1, &[2]));
        assert!(mitc.reliable_dependence(0, 1, &[2]));
    }

    #[test]
    fn degenerate_variable_never_reliable() {
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "c"]);
        for i in 0..50u32 {
            b.push_row([(i % 2).to_string().as_str(), "const"]).unwrap();
        }
        let t = b.finish();
        let o = DataOracle::over_all_attrs(&t, t.all_rows(), CiConfig::default());
        // `c` has a single value: df = 0 -> no test is informative.
        assert!(!o.reliable(0, 1, &[]));
        assert!(!o.reliable_dependence(0, 1, &[]));
    }

    #[test]
    fn statement_seeding_makes_tests_pure() {
        // The same statement must give the same outcome on repeat and
        // under concurrent access from pool workers — the property that
        // lets CD fan tests out without changing any verdict.
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::Mit);
        let base = o.test(0, 1, &[2]);
        assert_eq!(o.test(0, 1, &[2]), base, "repeat call");
        let outs = hypdb_exec::ThreadPool::new(4).map_indices(8, |_| o.test(0, 1, &[2]));
        for out in outs {
            assert_eq!(out, base, "concurrent call");
        }
        // The z-set seed is order-insensitive (z is a set).
        let t2 = fork_table();
        let o2 = DataOracle::over_all_attrs(
            &t2,
            t2.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::Mit,
                ..CiConfig::default()
            },
        );
        assert_eq!(o2.test(0, 1, &[2]), base, "fresh oracle, same data");
    }

    #[test]
    fn oracle_honours_early_stop() {
        // A key-like column shatters the selection so HyMit takes the
        // permutation path; with early_stop set, a clear verdict must
        // settle before the full budget (and identically on repeat).
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "y", "k"]);
        for i in 0..400u32 {
            let x = (i % 2).to_string();
            let y = (i % 2).to_string(); // x == y: maximal dependence
            let k = (i % 199).to_string();
            b.push_row([x.as_str(), y.as_str(), k.as_str()]).unwrap();
        }
        let t = b.finish();
        let budget = 2_048;
        let mk = |early| {
            let cfg = CiConfig {
                kind: IndependenceTestKind::HyMit,
                mit: MitConfig {
                    permutations: budget,
                    early_stop: early,
                    // Pinned single-stage: this test is about the
                    // early-termination rule's own budget cut; staging
                    // would settle the statement at a screening
                    // checkpoint first and mask it.
                    staged: false,
                    ..MitConfig::default()
                },
                ..CiConfig::default()
            };
            DataOracle::over_all_attrs(&t, t.all_rows(), cfg)
        };
        let stopped = mk(Some(0.01)).test(0, 1, &[2]);
        assert_ne!(stopped.method, TestMethod::ChiSquared);
        let done = stopped.permutations.expect("permutation test");
        assert!(done < budget, "early_stop must cut the budget ({done})");
        let full = mk(None).test(0, 1, &[2]);
        assert_eq!(full.permutations, Some(budget));
        // Same verdict either way.
        assert_eq!(
            stopped.dependent(0.01),
            full.dependent(0.01),
            "stopped p={} full p={}",
            stopped.p_value,
            full.p_value
        );
    }

    #[test]
    fn batched_outcomes_equal_call_at_a_time() {
        // The planner invariant: grouping, dedup, and group order never
        // change a single verdict byte. Compare against a *separate*
        // oracle so the batched run cannot lean on sequentially warmed
        // caches.
        let t = fork_table();
        for kind in [
            IndependenceTestKind::ChiSquared,
            IndependenceTestKind::Mit,
            IndependenceTestKind::MitSampled { max_groups: 8 },
            IndependenceTestKind::HyMit,
        ] {
            let stmts = vec![
                CiStatement::new(0, 1, vec![]),
                CiStatement::new(0, 1, vec![2]),
                CiStatement::new(1, 0, vec![2]), // orientation is distinct
                CiStatement::new(0, 2, vec![]),
                CiStatement::new(0, 1, vec![2]), // duplicate
                CiStatement::new(1, 2, vec![0]),
            ];
            let sequential: Vec<TestOutcome> = {
                let o = oracle(&t, kind);
                stmts.iter().map(|s| o.test(s.x, s.y, &s.z)).collect()
            };
            let batched = oracle(&t, kind).test_batch(&stmts);
            assert_eq!(batched, sequential, "{kind:?}");
        }
    }

    #[test]
    fn batching_counts_statements_and_saves_scans() {
        // A Grow–Shrink-shaped round: every candidate against the same
        // (empty) boundary — one shared joint answers all of them.
        let t = fork_table();
        let stmts: Vec<CiStatement> = vec![
            CiStatement::new(0, 1, vec![]),
            CiStatement::new(0, 2, vec![]),
            CiStatement::new(1, 2, vec![]),
        ];
        let batched = oracle(&t, IndependenceTestKind::ChiSquared);
        batched.test_batch(&stmts);
        let bs = batched.stats();
        assert_eq!(bs.batched_statements, 3);
        assert_eq!(bs.groups_planned, 1, "{bs:?}");
        let sequential = oracle(&t, IndependenceTestKind::ChiSquared);
        for s in &stmts {
            sequential.test(s.x, s.y, &s.z);
        }
        let ss = sequential.stats();
        assert_eq!(ss.batched_statements, 0);
        assert!(
            bs.table_scans < ss.table_scans,
            "batched {} vs sequential {} scans",
            bs.table_scans,
            ss.table_scans
        );
    }

    #[test]
    fn batch_disabled_falls_back_to_sequential() {
        let t = fork_table();
        let cfg = CiConfig {
            kind: IndependenceTestKind::HyMit,
            batch: crate::plan::BatchConfig {
                enabled: false,
                ..crate::plan::BatchConfig::default()
            },
            ..CiConfig::default()
        };
        let o = DataOracle::over_all_attrs(&t, t.all_rows(), cfg);
        let stmts = vec![
            CiStatement::new(0, 1, vec![2]),
            CiStatement::new(0, 2, vec![]),
        ];
        let outs = o.test_batch(&stmts);
        assert_eq!(o.stats().batched_statements, 0, "planner bypassed");
        let o2 = oracle(&t, IndependenceTestKind::HyMit);
        assert_eq!(outs[0], o2.test(0, 1, &[2]));
        assert_eq!(outs[1], o2.test(0, 2, &[]));
    }

    #[test]
    fn shared_cache_serves_oracles_with_different_var_lists() {
        // Two oracles over the same (table, rows) but different
        // variable lists must share contingency work through one
        // attr-keyed cache — the cross-request serving scenario.
        let t = fork_table();
        let cache = Arc::new(OracleCache::new());
        let all: Vec<AttrId> = t.schema().attr_ids().collect();
        let a = DataOracle::with_cache(
            &t,
            t.all_rows(),
            all.clone(),
            CiConfig::default(),
            Arc::clone(&cache),
        );
        // Prime the full joint through oracle A.
        a.counts_for(&[0, 1, 2]);
        let scans_after_prime = cache.stats().table_scans;
        // Oracle B sees the variables in a different order; its lookups
        // must hit A's entries (attr-keyed), not scan again.
        let reordered = vec![all[2], all[0], all[1]];
        let b = DataOracle::with_cache(
            &t,
            t.all_rows(),
            reordered,
            CiConfig {
                seed: 999, // different seed is irrelevant to the caches
                ..CiConfig::default()
            },
            Arc::clone(&cache),
        );
        b.entropy(&[0, 1, 2]);
        b.entropy(&[0]);
        let s = cache.stats();
        assert_eq!(s.table_scans, scans_after_prime, "no new scans");
        assert!(s.marginalizations > 0 || s.count_cache_hits > 0);
        // And the verdict equals a fresh oracle's (sharing is invisible).
        let fresh = DataOracle::over_all_attrs(
            &t,
            t.all_rows(),
            CiConfig {
                seed: 999,
                ..CiConfig::default()
            },
        );
        // b's var 1 is attr all[0] = X, var 2 is attr all[1] = Y, var 0 is Z.
        assert_eq!(b.test(1, 2, &[0]), fresh.test(0, 1, &[2]));
    }

    #[test]
    fn restricted_var_set_maps_attrs() {
        let t = fork_table();
        let ids = t.attrs(["Z", "X"]).unwrap();
        let o = DataOracle::new(&t, t.all_rows(), ids.clone(), CiConfig::default());
        assert_eq!(o.num_vars(), 2);
        assert_eq!(o.attr_of(0), ids[0]);
        assert_eq!(o.var_of(ids[1]), Some(1));
        assert!(o.dependent(0, 1, &[])); // Z and X are dependent
    }
}
