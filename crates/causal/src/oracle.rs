//! Conditional-independence oracles (§4 assumes one; §5–§6 build it).
//!
//! The [`CiOracle`] trait is what every discovery algorithm consumes.
//! Two implementations:
//!
//! * [`DataOracle`] — backed by a table selection. Implements the §6
//!   optimisations behind feature flags: **entropy caching** (shared
//!   entropies across CMI statements) and **contingency-table
//!   materialisation** (marginals derived from cached supersets instead
//!   of re-scanning rows). The test procedure is configurable: χ², MIT,
//!   MIT with group sampling, or the HyMIT hybrid.
//! * [`GraphOracle`] — exact d-separation on a known DAG; the
//!   noise-free oracle used to validate discovery algorithms.

use hypdb_exec::{seed, ShardedMap};
use hypdb_graph::dag::Dag;
use hypdb_graph::dsep::d_separated_pair;
use hypdb_stats::crosstab::CrossTab;
use hypdb_stats::independence::{
    mit_early, mit_sampled_early, MitConfig, Strata, TestMethod, TestOutcome,
};
use hypdb_stats::math::chi2_sf;
use hypdb_stats::EntropyEstimator;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::hash::{FxBuildHasher, FxHashMap};
use hypdb_table::sync::Mutex;
use hypdb_table::{AttrId, RowSet, Scan, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Variable index within an oracle (0-based, oracle-local).
pub type Var = usize;

/// Which independence-test procedure a [`DataOracle`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IndependenceTestKind {
    /// Asymptotic χ² (G) test.
    ChiSquared,
    /// MIT permutation test over all conditioning groups.
    Mit,
    /// MIT over a weighted sample of conditioning groups.
    MitSampled {
        /// Maximum number of groups to keep.
        max_groups: usize,
    },
    /// HyMIT: χ² when `df·β ≤ n`, MIT (with auto group sampling)
    /// otherwise.
    HyMit,
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiConfig {
    /// Significance level for `independent` decisions (§7.3 uses 0.01).
    pub alpha: f64,
    /// Test procedure.
    pub kind: IndependenceTestKind,
    /// Permutation-test parameters (m, β).
    pub mit: MitConfig,
    /// Entropy estimator for reported CMI statistics (§2 uses
    /// Miller–Madow).
    pub estimator: EntropyEstimator,
    /// §6 "Caching entropy".
    pub cache_entropies: bool,
    /// §6 "Materializing contingency tables".
    pub materialize: bool,
    /// RNG seed for the permutation tests.
    pub seed: u64,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            alpha: 0.01,
            kind: IndependenceTestKind::HyMit,
            mit: MitConfig::default(),
            estimator: EntropyEstimator::MillerMadow,
            cache_entropies: true,
            materialize: true,
            seed: 0x48_7970_4442, // "HypDB"
        }
    }
}

/// Lock-free work counters ([`OracleStats`] is the snapshot form).
/// Relaxed ordering suffices: the counts are statistics, not
/// synchronisation, and each event is a single atomic increment.
#[derive(Debug, Default)]
struct AtomicStats {
    tests: AtomicU64,
    table_scans: AtomicU64,
    count_cache_hits: AtomicU64,
    marginalizations: AtomicU64,
    entropy_hits: AtomicU64,
    entropy_misses: AtomicU64,
}

impl AtomicStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OracleStats {
        OracleStats {
            tests: self.tests.load(Ordering::Relaxed),
            table_scans: self.table_scans.load(Ordering::Relaxed),
            count_cache_hits: self.count_cache_hits.load(Ordering::Relaxed),
            marginalizations: self.marginalizations.load(Ordering::Relaxed),
            entropy_hits: self.entropy_hits.load(Ordering::Relaxed),
            entropy_misses: self.entropy_misses.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.tests.store(0, Ordering::Relaxed);
        self.table_scans.store(0, Ordering::Relaxed);
        self.count_cache_hits.store(0, Ordering::Relaxed);
        self.marginalizations.store(0, Ordering::Relaxed);
        self.entropy_hits.store(0, Ordering::Relaxed);
        self.entropy_misses.store(0, Ordering::Relaxed);
    }
}

/// Work counters, the instrumentation behind Fig 6(a)/(c).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Independence tests performed.
    pub tests: u64,
    /// Full row scans to build a contingency table.
    pub table_scans: u64,
    /// Contingency tables served from the materialisation cache.
    pub count_cache_hits: u64,
    /// Contingency tables derived by marginalising a cached superset.
    pub marginalizations: u64,
    /// Entropy values served from the entropy cache.
    pub entropy_hits: u64,
    /// Entropy values computed.
    pub entropy_misses: u64,
}

/// The conditional-independence oracle interface.
pub trait CiOracle {
    /// Number of variables `0..n` the oracle ranges over.
    fn num_vars(&self) -> usize;

    /// Tests `X ⊥⊥ Y | Z`; `x`, `y` must be distinct and absent from `z`.
    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome;

    /// Decision threshold.
    fn alpha(&self) -> f64;

    /// True when the test does **not** reject independence.
    fn independent(&self, x: Var, y: Var, z: &[Var]) -> bool {
        self.test(x, y, z).independent(self.alpha())
    }

    /// True when dependence is significant.
    fn dependent(&self, x: Var, y: Var, z: &[Var]) -> bool {
        !self.independent(x, y, z)
    }

    /// Association strength heuristic (used by IAMB's ordering); default
    /// is the test statistic (estimated CMI).
    fn assoc(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        self.test(x, y, z).statistic
    }

    /// Whether an *acceptance* of `X ⊥⊥ Y | Z` would be reliable — i.e.
    /// whether there is enough data per degree of freedom for a failure
    /// to reject to mean anything. Constraint-based discovery must not
    /// conclude a separation from an underpowered test (§4's "not
    /// robust to sparse subpopulations" failure mode); callers skip
    /// unreliable tests instead. Exact oracles are always reliable.
    fn reliable(&self, _x: Var, _y: Var, _z: &[Var]) -> bool {
        true
    }

    /// Whether a *rejection* (a dependence verdict) would be reliable.
    /// This is a calibration question, not a power question: a
    /// permutation test's rejection is trustworthy even on shattered
    /// data (the paper's core argument for MIT), whereas a sparse χ²
    /// rejection is anti-conservative. Defaults to the acceptance rule.
    fn reliable_dependence(&self, x: Var, y: Var, z: &[Var]) -> bool {
        self.reliable(x, y, z)
    }

    /// Work counters.
    fn stats(&self) -> OracleStats;

    /// Resets work counters.
    fn reset_stats(&self);
}

/// Data-backed oracle over a selection of any [`Scan`] storage
/// (defaults to the monolithic [`Table`]; `hypdb-store`'s
/// `ShardedTable` plugs in identically — contingency scans fan out per
/// shard and the counts are byte-identical either way).
///
/// The oracle is `Sync` and safe to drive from many worker threads at
/// once (CD's phases fan independence tests out over the global pool):
/// the contingency/entropy caches are sharded maps whose entries are
/// pure functions of the underlying data, the work counters are
/// atomics, and every test's RNG is seeded *per statement* — a
/// deterministic mix of the configured seed with `(x, y, sorted z)` —
/// so each outcome is a pure function of (data, config, statement), no
/// matter which thread runs it or in what order.
pub struct DataOracle<'a, S: Scan + ?Sized = Table> {
    table: &'a S,
    rows: RowSet,
    vars: Vec<AttrId>,
    cfg: CiConfig,
    counts: ShardedMap<Vec<Var>, Arc<ContingencyTable>, FxBuildHasher>,
    entropies: ShardedMap<Vec<Var>, f64, FxBuildHasher>,
    counters: AtomicStats,
}

impl<'a, S: Scan + ?Sized> DataOracle<'a, S> {
    /// Builds an oracle over `vars` (oracle variable `i` ↔ `vars[i]`)
    /// restricted to `rows`.
    pub fn new(table: &'a S, rows: RowSet, vars: Vec<AttrId>, cfg: CiConfig) -> Self {
        DataOracle {
            table,
            rows,
            vars,
            cfg,
            counts: ShardedMap::default(),
            entropies: ShardedMap::default(),
            counters: AtomicStats::default(),
        }
    }

    /// Oracle over every attribute of the table.
    pub fn over_all_attrs(table: &'a S, rows: RowSet, cfg: CiConfig) -> Self {
        let vars: Vec<AttrId> = table.schema().attr_ids().collect();
        DataOracle::new(table, rows, vars, cfg)
    }

    /// The attribute backing an oracle variable.
    pub fn attr_of(&self, v: Var) -> AttrId {
        self.vars[v]
    }

    /// The oracle variable of an attribute, if covered.
    pub fn var_of(&self, a: AttrId) -> Option<Var> {
        self.vars.iter().position(|&x| x == a)
    }

    /// The variable list.
    pub fn vars(&self) -> &[AttrId] {
        &self.vars
    }

    /// Number of selected rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The oracle's configuration.
    pub fn config(&self) -> &CiConfig {
        &self.cfg
    }

    /// Counts over `vars` in the *given* order. Internally normalises to
    /// a sorted cache key and derives reorderings/marginals from cached
    /// supersets when materialisation is enabled.
    pub fn counts_for(&self, vars: &[Var]) -> Arc<ContingencyTable> {
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        debug_assert_eq!(
            sorted.len(),
            vars.len(),
            "duplicate variables in counts_for"
        );
        let base = self.sorted_counts(&sorted);
        if sorted == vars {
            return base;
        }
        // Reorder by marginalising onto the requested permutation.
        let positions: Vec<usize> = vars
            .iter()
            .map(|v| sorted.binary_search(v).expect("var present"))
            .collect();
        Arc::new(base.marginal(&positions))
    }

    fn sorted_counts(&self, sorted: &[Var]) -> Arc<ContingencyTable> {
        if self.cfg.materialize {
            if let Some(hit) = self.counts.get(sorted) {
                AtomicStats::bump(&self.counters.count_cache_hits);
                return hit;
            }
            // Find the smallest cached superset to marginalise from.
            // Minimising over the *total* order (len, key) keeps the
            // choice independent of the shard/bucket visit order; two
            // workers racing here compute identical tables either way.
            let superset = self.counts.fold(
                None::<(Vec<Var>, Arc<ContingencyTable>)>,
                |best, key, ct| {
                    if !is_subset(sorted, key) {
                        return best;
                    }
                    match &best {
                        Some((bk, _))
                            if (bk.len(), bk.as_slice()) <= (key.len(), key.as_slice()) =>
                        {
                            best
                        }
                        _ => Some((key.clone(), ct.clone())),
                    }
                },
            );
            let ct = if let Some((key, sup)) = superset {
                AtomicStats::bump(&self.counters.marginalizations);
                let positions: Vec<usize> = sorted
                    .iter()
                    .map(|v| key.binary_search(v).expect("subset"))
                    .collect();
                Arc::new(sup.marginal(&positions))
            } else {
                AtomicStats::bump(&self.counters.table_scans);
                let attrs: Vec<AttrId> = sorted.iter().map(|&v| self.vars[v]).collect();
                Arc::new(ContingencyTable::from_table(self.table, &self.rows, &attrs))
            };
            self.counts.insert(sorted.to_vec(), ct.clone());
            ct
        } else {
            AtomicStats::bump(&self.counters.table_scans);
            let attrs: Vec<AttrId> = sorted.iter().map(|&v| self.vars[v]).collect();
            Arc::new(ContingencyTable::from_table(self.table, &self.rows, &attrs))
        }
    }

    /// Entropy (config estimator) of the joint distribution of `vars`,
    /// cached when enabled. The empty set has entropy 0.
    pub fn entropy(&self, vars: &[Var]) -> f64 {
        if vars.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if self.cfg.cache_entropies {
            if let Some(h) = self.entropies.get(sorted.as_slice()) {
                AtomicStats::bump(&self.counters.entropy_hits);
                return h;
            }
        }
        AtomicStats::bump(&self.counters.entropy_misses);
        let h = self.sorted_counts(&sorted).entropy(self.cfg.estimator);
        if self.cfg.cache_entropies {
            self.entropies.insert(sorted, h);
        }
        h
    }

    /// The statement-local RNG seed: a deterministic mix of the
    /// configured seed with `(x, y, sorted z)`. Every permutation test
    /// for a given statement therefore draws the same stream no matter
    /// which worker thread issues it, in which order — the keystone of
    /// the parallel-discovery determinism guarantee.
    fn statement_seed(&self, x: Var, y: Var, z: &[Var]) -> u64 {
        let mut zs: Vec<u64> = z.iter().map(|&v| v as u64).collect();
        zs.sort_unstable();
        seed::mix_all(self.cfg.seed, [x as u64, y as u64].into_iter().chain(zs))
    }

    /// Estimated CMI `Î(X;Y|Z)` with the configured estimator, via the
    /// entropy identity (this is where entropy caching pays off: `H(XZ)`
    /// and `H(Z)` are shared across many statements).
    pub fn cmi(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        let mut xz = z.to_vec();
        xz.push(x);
        let mut yz = z.to_vec();
        yz.push(y);
        let mut xyz = z.to_vec();
        xyz.push(x);
        xyz.push(y);
        self.entropy(&xz) + self.entropy(&yz) - self.entropy(&xyz) - self.entropy(z)
    }

    /// The paper's degrees-of-freedom formula
    /// `(|Π_X|−1)(|Π_Y|−1)|Π_Z|`, with supports measured on the current
    /// selection.
    fn paper_dof(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        let sx = self.counts_for(&[x]).support().max(1);
        let sy = self.counts_for(&[y]).support().max(1);
        let sz = if z.is_empty() {
            1
        } else {
            let mut zs = z.to_vec();
            zs.sort_unstable();
            self.sorted_counts(&zs).support().max(1)
        };
        ((sx - 1) * (sy - 1) * sz) as f64
    }

    /// Builds the stratified cross tabs of `(x, y)` given `z` from the
    /// (possibly cached) joint contingency table.
    fn strata(&self, x: Var, y: Var, z: &[Var]) -> Strata {
        let mut order = Vec::with_capacity(z.len() + 2);
        order.push(x);
        order.push(y);
        let mut zs = z.to_vec();
        zs.sort_unstable();
        order.extend_from_slice(&zs);
        let ct = self.counts_for(&order);
        let dims = ct.dims();
        let (r, c) = (dims[0] as usize, dims[1] as usize);
        if z.is_empty() {
            return Strata::single(ct.to_crosstab());
        }
        let mut groups: FxHashMap<Box<[u32]>, CrossTab> = FxHashMap::default();
        ct.for_each(|key, count| {
            let tab = groups
                .entry(key[2..].to_vec().into_boxed_slice())
                .or_insert_with(|| CrossTab::zeros(r, c));
            tab.add(key[0] as usize, key[1] as usize, count);
        });
        // Canonical group order (sorted by conditioning key): the map's
        // iteration order depends on how `ct` was built (scan vs cached
        // marginalisation — timing-dependent under parallel discovery),
        // and the group order drives both the CMI's floating-point sum
        // and MIT's per-group RNG consumption.
        let mut keyed: Vec<(Box<[u32]>, CrossTab)> = groups.into_iter().collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Strata::new(keyed.into_iter().map(|(_, tab)| tab).collect())
    }

    fn chi2_outcome(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        let stat = self.cmi(x, y, z);
        let n = self.rows.len() as f64;
        let df = self.paper_dof(x, y, z);
        let g = 2.0 * n * stat.max(0.0);
        let p = if df == 0.0 { 1.0 } else { chi2_sf(g, df) };
        TestOutcome {
            statistic: stat,
            p_value: p,
            ci95: None,
            df: Some(df),
            method: TestMethod::ChiSquared,
            permutations: None,
        }
    }
}

fn is_subset(small: &[Var], big: &[Var]) -> bool {
    // Both sorted.
    let mut it = big.iter();
    'outer: for s in small {
        for b in it.by_ref() {
            if b == s {
                continue 'outer;
            }
            if b > s {
                return false;
            }
        }
        return false;
    }
    true
}

impl<S: Scan + ?Sized> CiOracle for DataOracle<'_, S> {
    fn num_vars(&self) -> usize {
        self.vars.len()
    }

    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        assert!(x != y && !z.contains(&x) && !z.contains(&y));
        AtomicStats::bump(&self.counters.tests);
        let mut rng = StdRng::seed_from_u64(self.statement_seed(x, y, z));
        let early = self.cfg.mit.early_stop;
        match self.cfg.kind {
            IndependenceTestKind::ChiSquared => self.chi2_outcome(x, y, z),
            IndependenceTestKind::Mit => {
                let strata = self.strata(x, y, z);
                let mut out = mit_early(&strata, self.cfg.mit.permutations, early, &mut rng);
                out.statistic = self.cmi(x, y, z);
                out
            }
            IndependenceTestKind::MitSampled { max_groups } => {
                let strata = self.strata(x, y, z);
                let mut out = mit_sampled_early(
                    &strata,
                    self.cfg.mit.permutations,
                    max_groups,
                    early,
                    &mut rng,
                );
                out.statistic = self.cmi(x, y, z);
                out
            }
            IndependenceTestKind::HyMit => {
                let n = self.rows.len() as f64;
                let df = self.paper_dof(x, y, z);
                if df == 0.0 || df * self.cfg.mit.beta <= n {
                    self.chi2_outcome(x, y, z)
                } else {
                    let strata = self.strata(x, y, z);
                    let g = strata.num_groups();
                    let mut out = if g > 64 {
                        mit_sampled_early(
                            &strata,
                            self.cfg.mit.permutations,
                            MitConfig::auto_group_sample(g),
                            early,
                            &mut rng,
                        )
                    } else {
                        mit_early(&strata, self.cfg.mit.permutations, early, &mut rng)
                    };
                    out.statistic = self.cmi(x, y, z);
                    out
                }
            }
        }
    }

    fn alpha(&self) -> f64 {
        self.cfg.alpha
    }

    fn assoc(&self, x: Var, y: Var, z: &[Var]) -> f64 {
        self.cmi(x, y, z)
    }

    /// The χ²-style power heuristic: a test is reliable when
    /// `df · β ≤ n` (the same rule HyMIT uses to trust the asymptotic
    /// approximation, §6).
    fn reliable(&self, x: Var, y: Var, z: &[Var]) -> bool {
        let df = self.paper_dof(x, y, z);
        df > 0.0 && df * self.cfg.mit.beta <= self.rows.len() as f64
    }

    /// Dependence verdicts are calibrated for the permutation-based
    /// procedures regardless of sparseness (HyMIT switches to MIT
    /// exactly when χ² would be untrustworthy); the pure χ² oracle
    /// keeps the power gate.
    fn reliable_dependence(&self, x: Var, y: Var, z: &[Var]) -> bool {
        match self.cfg.kind {
            IndependenceTestKind::ChiSquared => self.reliable(x, y, z),
            IndependenceTestKind::Mit
            | IndependenceTestKind::MitSampled { .. }
            | IndependenceTestKind::HyMit => {
                // Still require a non-degenerate pair (both variables
                // must vary in the selection).
                self.counts_for(&[x]).support() > 1 && self.counts_for(&[y]).support() > 1
            }
        }
    }

    fn stats(&self) -> OracleStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

/// Exact d-separation oracle over a known DAG (for tests & calibration).
pub struct GraphOracle {
    dag: Dag,
    counters: Mutex<OracleStats>,
}

impl GraphOracle {
    /// Wraps a DAG; variable `i` is DAG node `i`.
    pub fn new(dag: Dag) -> Self {
        GraphOracle {
            dag,
            counters: Mutex::new(OracleStats::default()),
        }
    }

    /// The wrapped DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }
}

impl CiOracle for GraphOracle {
    fn num_vars(&self) -> usize {
        self.dag.len()
    }

    fn test(&self, x: Var, y: Var, z: &[Var]) -> TestOutcome {
        self.counters.lock().tests += 1;
        let sep = d_separated_pair(&self.dag, x, y, z);
        TestOutcome {
            statistic: if sep { 0.0 } else { 1.0 },
            p_value: if sep { 1.0 } else { 0.0 },
            ci95: None,
            df: None,
            method: TestMethod::ChiSquared,
            permutations: None,
        }
    }

    fn alpha(&self) -> f64 {
        0.5
    }

    fn stats(&self) -> OracleStats {
        *self.counters.lock()
    }

    fn reset_stats(&self) {
        *self.counters.lock() = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_graph::bayes::BayesNet;
    use rand::SeedableRng;

    /// Z -> X, Z -> Y (X ⊥ Y | Z), n = 20k.
    fn fork_table() -> Table {
        let mut dag = Dag::with_names(["X", "Y", "Z"]);
        dag.add_edge(2, 0);
        dag.add_edge(2, 1);
        let mut net = BayesNet::uniform(dag, vec![2, 2, 2]);
        net.set_cpt(2, vec![0.5, 0.5]);
        net.set_cpt(0, vec![0.85, 0.15, 0.15, 0.85]);
        net.set_cpt(1, vec![0.2, 0.8, 0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(11);
        net.sample_table(&mut rng, 20_000)
    }

    fn oracle(table: &Table, kind: IndependenceTestKind) -> DataOracle<'_> {
        let cfg = CiConfig {
            kind,
            ..CiConfig::default()
        };
        DataOracle::over_all_attrs(table, table.all_rows(), cfg)
    }

    #[test]
    fn chi2_oracle_fork_structure() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        assert!(o.dependent(0, 1, &[]), "X, Y marginally dependent");
        assert!(o.independent(0, 1, &[2]), "X ⊥ Y | Z");
        assert!(o.dependent(0, 2, &[]));
        assert_eq!(o.stats().tests, 3);
    }

    #[test]
    fn all_test_kinds_agree_on_fork() {
        let t = fork_table();
        for kind in [
            IndependenceTestKind::ChiSquared,
            IndependenceTestKind::Mit,
            IndependenceTestKind::MitSampled { max_groups: 8 },
            IndependenceTestKind::HyMit,
        ] {
            let o = oracle(&t, kind);
            assert!(o.dependent(0, 1, &[]), "{kind:?}: marginal dependence");
            assert!(o.independent(0, 1, &[2]), "{kind:?}: conditional indep");
        }
    }

    #[test]
    fn entropy_cache_hits() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        o.cmi(0, 1, &[2]);
        let s1 = o.stats();
        assert!(s1.entropy_misses >= 4);
        o.cmi(0, 2, &[1]); // shares H(XYZ)... and more
        let s2 = o.stats();
        assert!(s2.entropy_hits > 0, "shared entropies must hit the cache");
    }

    #[test]
    fn caching_off_recomputes() {
        let t = fork_table();
        let cfg = CiConfig {
            kind: IndependenceTestKind::ChiSquared,
            cache_entropies: false,
            materialize: false,
            ..CiConfig::default()
        };
        let o = DataOracle::over_all_attrs(&t, t.all_rows(), cfg);
        o.cmi(0, 1, &[2]);
        o.cmi(0, 1, &[2]);
        let s = o.stats();
        assert_eq!(s.entropy_hits, 0);
        assert_eq!(s.count_cache_hits, 0);
        assert!(s.table_scans >= 8);
    }

    #[test]
    fn materialization_derives_marginals() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        // Prime with the full joint.
        o.counts_for(&[0, 1, 2]);
        let before = o.stats();
        // All strict subsets should now derive, not scan.
        o.entropy(&[0, 1]);
        o.entropy(&[2]);
        let after = o.stats();
        assert_eq!(after.table_scans, before.table_scans);
        assert_eq!(after.marginalizations, before.marginalizations + 2);
    }

    #[test]
    fn counts_respect_order() {
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::ChiSquared);
        let xy = o.counts_for(&[0, 1]);
        let yx = o.counts_for(&[1, 0]);
        assert_eq!(xy.get(&[0, 1]), yx.get(&[1, 0]));
        assert_eq!(xy.total(), yx.total());
    }

    #[test]
    fn graph_oracle_is_exact() {
        let mut dag = Dag::new(3);
        dag.add_edge(0, 2);
        dag.add_edge(1, 2);
        let o = GraphOracle::new(dag);
        assert!(o.independent(0, 1, &[]));
        assert!(o.dependent(0, 1, &[2]));
        assert!(o.dependent(0, 2, &[1]));
        assert_eq!(o.stats().tests, 3);
        o.reset_stats();
        assert_eq!(o.stats().tests, 0);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn reliability_gates_are_asymmetric() {
        // A table with a wide key-like column: conditioning on it
        // shatters the data, so acceptances must be unreliable.
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "y", "k"]);
        for i in 0..400u32 {
            let x = (i % 2).to_string();
            let y = ((i / 2) % 2).to_string();
            let k = (i % 199).to_string();
            b.push_row([x.as_str(), y.as_str(), k.as_str()]).unwrap();
        }
        let t = b.finish();
        // χ² oracle: both gates use the power rule.
        let chi = DataOracle::over_all_attrs(
            &t,
            t.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::ChiSquared,
                ..CiConfig::default()
            },
        );
        assert!(
            !chi.reliable(0, 1, &[2]),
            "shattered: acceptance unreliable"
        );
        assert!(
            !chi.reliable_dependence(0, 1, &[2]),
            "sparse χ² rejection is anti-conservative"
        );
        assert!(chi.reliable(0, 1, &[]), "marginal test is fine");
        // Permutation oracle: rejections stay trustworthy.
        let mitc = DataOracle::over_all_attrs(
            &t,
            t.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::HyMit,
                ..CiConfig::default()
            },
        );
        assert!(!mitc.reliable(0, 1, &[2]));
        assert!(mitc.reliable_dependence(0, 1, &[2]));
    }

    #[test]
    fn degenerate_variable_never_reliable() {
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "c"]);
        for i in 0..50u32 {
            b.push_row([(i % 2).to_string().as_str(), "const"]).unwrap();
        }
        let t = b.finish();
        let o = DataOracle::over_all_attrs(&t, t.all_rows(), CiConfig::default());
        // `c` has a single value: df = 0 -> no test is informative.
        assert!(!o.reliable(0, 1, &[]));
        assert!(!o.reliable_dependence(0, 1, &[]));
    }

    #[test]
    fn statement_seeding_makes_tests_pure() {
        // The same statement must give the same outcome on repeat and
        // under concurrent access from pool workers — the property that
        // lets CD fan tests out without changing any verdict.
        let t = fork_table();
        let o = oracle(&t, IndependenceTestKind::Mit);
        let base = o.test(0, 1, &[2]);
        assert_eq!(o.test(0, 1, &[2]), base, "repeat call");
        let outs = hypdb_exec::ThreadPool::new(4).map_indices(8, |_| o.test(0, 1, &[2]));
        for out in outs {
            assert_eq!(out, base, "concurrent call");
        }
        // The z-set seed is order-insensitive (z is a set).
        let t2 = fork_table();
        let o2 = DataOracle::over_all_attrs(
            &t2,
            t2.all_rows(),
            CiConfig {
                kind: IndependenceTestKind::Mit,
                ..CiConfig::default()
            },
        );
        assert_eq!(o2.test(0, 1, &[2]), base, "fresh oracle, same data");
    }

    #[test]
    fn oracle_honours_early_stop() {
        // A key-like column shatters the selection so HyMit takes the
        // permutation path; with early_stop set, a clear verdict must
        // settle before the full budget (and identically on repeat).
        use hypdb_table::TableBuilder;
        let mut b = TableBuilder::new(["x", "y", "k"]);
        for i in 0..400u32 {
            let x = (i % 2).to_string();
            let y = (i % 2).to_string(); // x == y: maximal dependence
            let k = (i % 199).to_string();
            b.push_row([x.as_str(), y.as_str(), k.as_str()]).unwrap();
        }
        let t = b.finish();
        let budget = 2_048;
        let mk = |early| {
            let cfg = CiConfig {
                kind: IndependenceTestKind::HyMit,
                mit: MitConfig {
                    permutations: budget,
                    early_stop: early,
                    ..MitConfig::default()
                },
                ..CiConfig::default()
            };
            DataOracle::over_all_attrs(&t, t.all_rows(), cfg)
        };
        let stopped = mk(Some(0.01)).test(0, 1, &[2]);
        assert_ne!(stopped.method, TestMethod::ChiSquared);
        let done = stopped.permutations.expect("permutation test");
        assert!(done < budget, "early_stop must cut the budget ({done})");
        let full = mk(None).test(0, 1, &[2]);
        assert_eq!(full.permutations, Some(budget));
        // Same verdict either way.
        assert_eq!(
            stopped.dependent(0.01),
            full.dependent(0.01),
            "stopped p={} full p={}",
            stopped.p_value,
            full.p_value
        );
    }

    #[test]
    fn restricted_var_set_maps_attrs() {
        let t = fork_table();
        let ids = t.attrs(["Z", "X"]).unwrap();
        let o = DataOracle::new(&t, t.all_rows(), ids.clone(), CiConfig::default());
        assert_eq!(o.num_vars(), 2);
        assert_eq!(o.attr_of(0), ids[0]);
        assert_eq!(o.var_of(ids[1]), Some(1));
        assert!(o.dependent(0, 1, &[])); // Z and X are dependent
    }
}
