//! The multi-query statement planner: batched conditional-independence
//! testing (the *Analyze-operator* multi-query optimisation applied to
//! the CMI workload of §6).
//!
//! Causal discovery issues thousands of independence statements, and
//! most of them share structure: a Grow–Shrink round tests every
//! candidate against the *same* boundary, CD phase I tests every
//! `W ∈ MB(T)` against the same separating set. Call-at-a-time
//! execution re-scans the data for each statement's contingency table;
//! plan-then-execute instead
//!
//! 1. **canonicalises** each statement (`z` sorted and deduplicated —
//!    the conditioning side is a set, while the `(x, y)` orientation is
//!    preserved because the per-statement RNG seed and the strata
//!    orientation depend on it),
//! 2. **dedupes** exact duplicates so each distinct statement is
//!    evaluated once,
//! 3. **groups** statements by conditioning set `z`, computing each
//!    group's *joint* variable set `z ∪ {x, y : members}`,
//! 4. **orders** groups so larger joints are materialised first —
//!    smaller groups then marginalise from cached supersets instead of
//!    re-scanning rows.
//!
//! The plan is a pure function of the submitted statement list: the
//! same statements always produce the same groups in the same order,
//! at any thread count. Execution (on `DataOracle`) preserves
//! byte-identical verdicts relative to call-at-a-time testing because
//! every statement keeps its own seed and its strata are exact integer
//! marginals of the shared joint.

use crate::oracle::Var;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One conditional-independence statement `X ⊥⊥ Y | Z` submitted to a
/// batch ([`crate::oracle::CiOracle::test_batch`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CiStatement {
    /// Left variable.
    pub x: Var,
    /// Right variable.
    pub y: Var,
    /// Conditioning set (order-insensitive; canonicalised by the plan).
    pub z: Vec<Var>,
}

impl CiStatement {
    /// Builds a statement. `x`, `y` must be distinct and absent from
    /// `z` (enforced by the oracle at evaluation time, like `test`).
    pub fn new(x: Var, y: Var, z: Vec<Var>) -> CiStatement {
        CiStatement { x, y, z }
    }

    /// The canonical form: `z` sorted ascending and deduplicated. The
    /// `(x, y)` orientation is significant — the statement-local RNG
    /// seed mixes `x` before `y` — and is left untouched.
    pub fn canonical(&self) -> CiStatement {
        let mut z = self.z.clone();
        z.sort_unstable();
        z.dedup();
        CiStatement {
            x: self.x,
            y: self.y,
            z,
        }
    }
}

/// A planned group: all distinct statements sharing one conditioning
/// set, plus the joint variable set one shared contingency pass covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanGroup {
    /// The shared conditioning set (sorted).
    pub z: Vec<Var>,
    /// `z ∪ {x, y}` over every member (sorted): materialising this
    /// joint once lets every member's strata, marginals, and entropies
    /// derive from it without another row scan.
    pub joint: Vec<Var>,
    /// Indices into [`Plan::unique`], in first-submission order.
    pub members: Vec<usize>,
}

/// An execution plan over a submitted statement batch.
#[derive(Debug, Clone)]
pub struct Plan {
    unique: Vec<CiStatement>,
    /// `slots[i]` = index into `unique` answering submitted statement `i`.
    slots: Vec<usize>,
    groups: Vec<PlanGroup>,
}

impl Plan {
    /// Canonicalises, dedupes, groups by conditioning set, and orders
    /// groups largest-joint-first (ties broken lexicographically, so
    /// the plan is deterministic).
    pub fn build(stmts: &[CiStatement]) -> Plan {
        let mut index: HashMap<CiStatement, usize> = HashMap::with_capacity(stmts.len());
        let mut unique: Vec<CiStatement> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(stmts.len());
        for s in stmts {
            let c = s.canonical();
            let slot = *index.entry(c.clone()).or_insert_with(|| {
                unique.push(c);
                unique.len() - 1
            });
            slots.push(slot);
        }

        // Group by conditioning set; a BTreeMap makes the grouping
        // order a pure function of the statements.
        let mut by_z: BTreeMap<Vec<Var>, Vec<usize>> = BTreeMap::new();
        for (i, s) in unique.iter().enumerate() {
            by_z.entry(s.z.clone()).or_default().push(i);
        }
        let mut groups: Vec<PlanGroup> = by_z
            .into_iter()
            .map(|(z, members)| {
                let mut joint = z.clone();
                for &m in &members {
                    joint.push(unique[m].x);
                    joint.push(unique[m].y);
                }
                joint.sort_unstable();
                joint.dedup();
                PlanGroup { z, joint, members }
            })
            .collect();
        // Larger joints first: a later, smaller group whose joint is a
        // subset of an earlier one marginalises from the cache instead
        // of scanning rows.
        groups.sort_by(|a, b| {
            b.joint
                .len()
                .cmp(&a.joint.len())
                .then_with(|| a.joint.cmp(&b.joint))
                .then_with(|| a.z.cmp(&b.z))
        });
        Plan {
            unique,
            slots,
            groups,
        }
    }

    /// The distinct statements, first-submission order.
    pub fn unique(&self) -> &[CiStatement] {
        &self.unique
    }

    /// The answer slot (index into [`Plan::unique`]) of each submitted
    /// statement.
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// The planned groups, execution order (largest joint first).
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// Number of distinct statements.
    pub fn num_unique(&self) -> usize {
        self.unique.len()
    }
}

/// Forced planner strategy — the `HYPDB_PLAN_FORCE` escape hatch that
/// replaced the static pre-cost-model batching knobs. The
/// strategy decides *how* tables get built, never what any report
/// contains: all three settings produce byte-identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlanForce {
    /// Cost-based choice (the default): per table, compare the
    /// predicted marginalisation cost against the segment-scan cost
    /// and take the cheaper; per group, weigh a shared joint (plus
    /// lattice descent) against direct member builds.
    #[default]
    Cost,
    /// Never derive from a cached superset: every table is built by a
    /// row scan (the worst-case baseline the tests pin against).
    Scan,
    /// Always derive from the smallest cached superset and always
    /// materialise a group's full joint (the pre-cost-model planner).
    Marginalise,
}

impl PlanForce {
    /// Reads `HYPDB_PLAN_FORCE` (`scan`, `marginalise`/`marginalize`,
    /// anything else → cost-based). Tests usually set the field on
    /// [`BatchConfig`] directly instead.
    pub fn from_env() -> PlanForce {
        match std::env::var("HYPDB_PLAN_FORCE").ok().as_deref() {
            Some("scan") => PlanForce::Scan,
            Some("marginalise") | Some("marginalize") => PlanForce::Marginalise,
            _ => PlanForce::Cost,
        }
    }
}

/// The planner's cost model. Work is measured in *key slots touched*
/// (cells × key width), which makes a row scan and a sequential
/// marginal walk over sorted cells directly comparable.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Selected rows — the number of cells a scan visits.
    pub rows: u64,
    /// Workers a segment scan spreads over (a marginal walk is
    /// sequential, so only the scan side divides by this).
    pub scan_lanes: u64,
}

impl CostModel {
    /// Builds a model for `rows` selected rows scanned across
    /// `scan_lanes` parallel segment lanes (clamped to ≥ 1).
    pub fn new(rows: u64, scan_lanes: usize) -> CostModel {
        CostModel {
            rows,
            scan_lanes: scan_lanes.max(1) as u64,
        }
    }

    /// Cost of building a `width`-attribute table by scanning rows.
    pub fn scan_cost(&self, width: usize) -> u64 {
        (self.rows / self.scan_lanes).max(1) * width.max(1) as u64
    }

    /// Cost of deriving a `width`-attribute table by walking a parent
    /// with `parent_support` non-zero cells.
    pub fn marginal_cost(&self, parent_support: u64, width: usize) -> u64 {
        parent_support * width.max(1) as u64
    }
}

/// A-priori support bound for a table over attributes with the given
/// dimensions: `min(∏ dims, rows)` — a table cannot have more distinct
/// cells than its domain product or its row count. The oracle refines
/// this online with supports it has already observed.
pub fn support_bound(dims: &[u32], rows: u64) -> u64 {
    let mut product: u64 = 1;
    for &d in dims {
        product = product.saturating_mul(u64::from(d.max(1)));
        if product >= rows {
            return rows;
        }
    }
    product.min(rows)
}

/// Cap on the speculative lookahead of the round-wise issuers
/// (Grow–Shrink, CD phase I/II): a round stops at its first decisive
/// verdict, so every statement evaluated past it is wasted work. The
/// executor still *plans* the whole round (group staging amortises the
/// shared joints), but settles verdicts in waves of at most this many
/// statements. Profiling on adult (100k rows) showed lookahead > 1
/// loses more in discarded tests than it gains, so the default is 1 —
/// pure pruning, the evaluated set exactly matching a lazy scan. Fixed
/// — never a function of the thread count — so the set of evaluated
/// statements is deterministic.
pub const SPECULATION_WAVE: usize = 1;

/// Batching knobs, threaded from `HypDbConfig` through `CiConfig` down
/// to the oracle (the "batch hints" of the pipeline configuration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Master switch: `false` reverts every issuer to call-at-a-time
    /// testing (the pre-planner behaviour, bit for bit).
    pub enabled: bool,
    /// Strategy override (default: cost-based). Initialised from
    /// `HYPDB_PLAN_FORCE` so byte-identity across strategies can be
    /// checked end to end without recompiling.
    pub force: PlanForce,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: true,
            force: PlanForce::from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: Var, y: Var, z: &[Var]) -> CiStatement {
        CiStatement::new(x, y, z.to_vec())
    }

    #[test]
    fn canonicalises_z_but_not_xy() {
        let a = s(0, 1, &[3, 2, 3]).canonical();
        assert_eq!(a.z, vec![2, 3]);
        let b = s(1, 0, &[2, 3]).canonical();
        assert_ne!(a, b, "orientation is significant");
    }

    #[test]
    fn dedupes_and_maps_slots() {
        let stmts = vec![s(0, 1, &[2]), s(0, 1, &[2]), s(0, 3, &[2]), s(0, 1, &[2])];
        let plan = Plan::build(&stmts);
        assert_eq!(plan.num_unique(), 2);
        assert_eq!(plan.slots(), &[0, 0, 1, 0]);
        // Both unique statements share the one conditioning set.
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(plan.groups()[0].members, vec![0, 1]);
    }

    #[test]
    fn z_order_does_not_split_groups() {
        let stmts = vec![s(0, 1, &[3, 2]), s(0, 4, &[2, 3])];
        let plan = Plan::build(&stmts);
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(plan.groups()[0].z, vec![2, 3]);
        assert_eq!(plan.groups()[0].joint, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn larger_joints_come_first() {
        let stmts = vec![
            s(0, 1, &[]),        // joint {0,1}
            s(0, 1, &[2, 3, 4]), // joint {0,1,2,3,4}
            s(0, 1, &[2]),       // joint {0,1,2}
        ];
        let plan = Plan::build(&stmts);
        let sizes: Vec<usize> = plan.groups().iter().map(|g| g.joint.len()).collect();
        assert_eq!(sizes, vec![5, 3, 2]);
    }

    #[test]
    fn plan_is_deterministic() {
        let stmts = vec![
            s(5, 1, &[0]),
            s(2, 3, &[0]),
            s(4, 0, &[1, 2]),
            s(5, 1, &[0]),
        ];
        let a = Plan::build(&stmts);
        let b = Plan::build(&stmts);
        assert_eq!(a.groups(), b.groups());
        assert_eq!(a.slots(), b.slots());
    }

    #[test]
    fn empty_batch_plans_empty() {
        let plan = Plan::build(&[]);
        assert_eq!(plan.num_unique(), 0);
        assert!(plan.groups().is_empty());
        assert!(plan.slots().is_empty());
    }

    #[test]
    fn batch_config_defaults_enable_batching() {
        let cfg = BatchConfig::default();
        assert!(cfg.enabled);
        // Strategy defaults to the cost model unless HYPDB_PLAN_FORCE
        // overrides it (not set in the test environment).
        assert_eq!(cfg.force, PlanForce::Cost);
    }

    #[test]
    fn support_bound_is_min_of_product_and_rows() {
        assert_eq!(support_bound(&[2, 2, 2], 20_000), 8);
        assert_eq!(support_bound(&[100, 100, 100], 5_000), 5_000);
        // Saturating: huge products clamp to the row bound.
        assert_eq!(support_bound(&[u32::MAX; 8], 1_000), 1_000);
        assert_eq!(support_bound(&[], 1_000), 1);
    }

    #[test]
    fn cost_model_prices_scans_and_marginals() {
        let cm = CostModel::new(100_000, 4);
        assert_eq!(cm.scan_cost(3), 25_000 * 3);
        assert_eq!(cm.marginal_cost(500, 3), 1_500);
        // A marginal walk beats the scan iff the parent support is
        // below rows/lanes.
        assert!(cm.marginal_cost(500, 3) < cm.scan_cost(3));
        assert!(cm.marginal_cost(100_000, 3) > cm.scan_cost(3));
    }
}
