//! Markov-boundary discovery: Grow–Shrink (Margaritis & Thrun 2000) and
//! IAMB (Tsamardinos et al. 2003) — the building block of both the CD
//! algorithm (§4) and the FGS baseline (§7.4).
//!
//! When the oracle profits from batches ([`CiOracle::prefers_batches`]),
//! both learners issue their independence statements round-wise. Rounds
//! whose sequential semantics stop at the *first* hit — Grow–Shrink
//! admissions, the shared shrink phase — go through
//! [`CiOracle::find_first`], which plans the whole round's contingency
//! work once but settles verdicts in speculation waves, skipping the
//! statements a sequential pass would never have evaluated. Rounds that
//! consume *every* verdict (IAMB's strongest-first grow) still use the
//! full batch API ([`CiOracle::test_batch`]). Either way the sequential
//! semantics are preserved exactly: within a Grow–Shrink pass the
//! boundary mutates as soon as a candidate is admitted, only the
//! verdicts up to the first change are consumed, and the remaining
//! candidates re-round against the updated boundary (speculative
//! verdicts are pure, so this changes cost, never results). Oracles
//! that answer call-at-a-time (exact d-separation oracles; a data
//! oracle with batching disabled) keep the original lazy early-exit
//! scans, so opting out costs exactly what the pre-planner code did.

use crate::oracle::{CiOracle, Var};
use crate::plan::CiStatement;

/// Grow–Shrink Markov-boundary discovery for `target`.
///
/// Grow phase: repeatedly add any variable dependent on the target given
/// the current boundary, until a fixpoint. Shrink phase: remove any
/// member that is independent of the target given the rest. Returns the
/// boundary sorted ascending.
pub fn grow_shrink<O: CiOracle + ?Sized>(oracle: &O, target: Var) -> Vec<Var> {
    let n = oracle.num_vars();
    let batched = oracle.prefers_batches();
    let mut boundary: Vec<Var> = Vec::new();
    // Grow. Additions require a dependence verdict that is *calibrated*
    // on the current conditioning (always true for permutation tests;
    // the df·β ≤ n power gate for χ²) — once the boundary conditions
    // the data into groups too small to test, no further variable can
    // be admitted on evidence.
    let mut changed = true;
    while changed {
        changed = false;
        if !batched {
            // Lazy call-at-a-time pass (the cheapest plan when the
            // oracle gains nothing from batches).
            for x in 0..n {
                if x == target || boundary.contains(&x) {
                    continue;
                }
                if oracle.reliable_dependence(target, x, &boundary)
                    && oracle.dependent(target, x, &boundary)
                {
                    boundary.push(x);
                    changed = true;
                }
            }
            continue;
        }
        let cands: Vec<Var> = (0..n)
            .filter(|&x| x != target && !boundary.contains(&x))
            .collect();
        // One pass over the candidates, batched in rounds: the round is
        // evaluated against the boundary as it stands, the *first*
        // admission wins (later verdicts conditioned on the stale
        // boundary are discarded), and the rest of the pass re-batches
        // against the grown boundary — byte-identical to the
        // call-at-a-time pass, round by round.
        let mut i = 0;
        while i < cands.len() {
            let round: Vec<Var> = cands[i..]
                .iter()
                .copied()
                .filter(|&x| oracle.reliable_dependence(target, x, &boundary))
                .collect();
            if round.is_empty() {
                break;
            }
            let stmts: Vec<CiStatement> = round
                .iter()
                .map(|&x| CiStatement::new(target, x, boundary.clone()))
                .collect();
            // Only the first dependence is consumed; `find_first` lets
            // the oracle skip the speculative tail of the round.
            match oracle.find_first(&stmts, false) {
                Some(k) => {
                    let x = round[k];
                    boundary.push(x);
                    changed = true;
                    i = cands.iter().position(|&c| c == x).expect("candidate") + 1;
                }
                None => break,
            }
        }
    }
    shrink(oracle, target, &mut boundary);
    boundary.sort_unstable();
    boundary
}

/// IAMB: like Grow–Shrink, but the grow phase admits the *strongest*
/// associated candidate first, which keeps the boundary (and hence the
/// conditioning sets) small and the tests reliable.
///
/// Every IAMB round conditions all candidates on the same boundary, so
/// the whole round batches with no speculation at all.
pub fn iamb<O: CiOracle + ?Sized>(oracle: &O, target: Var) -> Vec<Var> {
    let n = oracle.num_vars();
    let alpha = oracle.alpha();
    let batched = oracle.prefers_batches();
    let mut boundary: Vec<Var> = Vec::new();
    loop {
        let best = if batched {
            let cands: Vec<Var> = (0..n)
                .filter(|&x| {
                    x != target
                        && !boundary.contains(&x)
                        && oracle.reliable_dependence(target, x, &boundary)
                })
                .collect();
            let stmts: Vec<CiStatement> = cands
                .iter()
                .map(|&x| CiStatement::new(target, x, boundary.clone()))
                .collect();
            let outs = oracle.test_batch(&stmts);
            let mut best: Option<(Var, f64)> = None;
            for (&x, out) in cands.iter().zip(&outs) {
                if out.dependent(alpha) {
                    // The outcome's statistic is the oracle's
                    // association measure (estimated CMI), the same
                    // value `assoc` reports for this statement.
                    let a = out.statistic;
                    if best.is_none_or(|(_, b)| a > b) {
                        best = Some((x, a));
                    }
                }
            }
            best
        } else {
            let mut best: Option<(Var, f64)> = None;
            for x in 0..n {
                if x == target || boundary.contains(&x) {
                    continue;
                }
                if oracle.reliable_dependence(target, x, &boundary)
                    && oracle.dependent(target, x, &boundary)
                {
                    let a = oracle.assoc(target, x, &boundary);
                    if best.is_none_or(|(_, b)| a > b) {
                        best = Some((x, a));
                    }
                }
            }
            best
        };
        match best {
            Some((x, _)) => boundary.push(x),
            None => break,
        }
    }
    shrink(oracle, target, &mut boundary);
    boundary.sort_unstable();
    boundary
}

/// Shrink phase shared by both algorithms: drop members independent of
/// the target given the remaining boundary, to a fixpoint. A member is
/// only removed on a *reliable* independence — an underpowered test
/// accepting the null is not evidence (§4's sparse-subpopulation
/// failure mode). Rounds batch the tail of the boundary; the first
/// removal wins and the rest re-batch against the shrunk membership.
fn shrink<O: CiOracle + ?Sized>(oracle: &O, target: Var, boundary: &mut Vec<Var>) {
    let batched = oracle.prefers_batches();
    let mut changed = true;
    while changed {
        changed = false;
        if !batched {
            // Lazy call-at-a-time pass.
            let mut i = 0;
            while i < boundary.len() {
                let x = boundary[i];
                let rest: Vec<Var> = boundary.iter().copied().filter(|&v| v != x).collect();
                if oracle.reliable(target, x, &rest) && oracle.independent(target, x, &rest) {
                    boundary.remove(i);
                    changed = true;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        let mut i = 0;
        while i < boundary.len() {
            // Every member of the tail, conditioned on the *current*
            // membership minus itself; only gated (reliable) members
            // are worth testing.
            let tail: Vec<Var> = boundary[i..].to_vec();
            let checks: Vec<(usize, Vec<Var>)> = tail
                .iter()
                .enumerate()
                .filter_map(|(k, &x)| {
                    let rest: Vec<Var> = boundary.iter().copied().filter(|&v| v != x).collect();
                    oracle.reliable(target, x, &rest).then_some((k, rest))
                })
                .collect();
            if checks.is_empty() {
                break;
            }
            let stmts: Vec<CiStatement> = checks
                .iter()
                .map(|(k, rest)| CiStatement::new(target, tail[*k], rest.clone()))
                .collect();
            // Only the first independence is consumed; `find_first`
            // lets the oracle skip the speculative tail of the round.
            match oracle.find_first(&stmts, true).map(|j| &checks[j]) {
                Some((k, _)) => {
                    let x = tail[*k];
                    let pos = boundary.iter().position(|&v| v == x).expect("member");
                    boundary.remove(pos);
                    changed = true;
                    // The removed slot's successor shifted into `pos`;
                    // everything before it was already cleared against
                    // this membership.
                    i = pos;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use hypdb_graph::dag::Dag;

    /// Z -> T <- W, T -> C <- D, T -> Y (the §4 running example).
    fn fig2_oracle() -> GraphOracle {
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D", "Y"]);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(4, 3);
        g.add_edge(2, 5);
        GraphOracle::new(g)
    }

    #[test]
    fn gs_recovers_exact_boundary() {
        let o = fig2_oracle();
        // MB(T) = {Z, W, C, D, Y}.
        assert_eq!(grow_shrink(&o, 2), vec![0, 1, 3, 4, 5]);
        // MB(Z) = {W, T} (child T, spouse W).
        assert_eq!(grow_shrink(&o, 0), vec![1, 2]);
        // MB(D) = {T, C}.
        assert_eq!(grow_shrink(&o, 4), vec![2, 3]);
        // MB(Y) = {T}.
        assert_eq!(grow_shrink(&o, 5), vec![2]);
    }

    #[test]
    fn iamb_matches_gs_on_exact_oracle() {
        let o = fig2_oracle();
        for v in 0..6 {
            assert_eq!(
                iamb(&o, v),
                grow_shrink(&o, v),
                "boundary mismatch at node {v}"
            );
        }
    }

    #[test]
    fn isolated_node_has_empty_boundary() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        let o = GraphOracle::new(g);
        assert!(grow_shrink(&o, 2).is_empty());
        assert!(iamb(&o, 2).is_empty());
    }

    #[test]
    fn chain_boundaries() {
        // 0 -> 1 -> 2 -> 3.
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let o = GraphOracle::new(g);
        assert_eq!(grow_shrink(&o, 0), vec![1]);
        assert_eq!(grow_shrink(&o, 1), vec![0, 2]);
        assert_eq!(grow_shrink(&o, 2), vec![1, 3]);
    }

    #[test]
    fn dense_collider_boundary() {
        // 0,1,2 all parents of 3; 3 -> 4.
        let mut g = Dag::new(5);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let o = GraphOracle::new(g);
        assert_eq!(grow_shrink(&o, 3), vec![0, 1, 2, 4]);
        // Parents see each other through the collider: MB(0) = {1,2,3}.
        assert_eq!(grow_shrink(&o, 0), vec![1, 2, 3]);
    }
}
