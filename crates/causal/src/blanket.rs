//! Markov-boundary discovery: Grow–Shrink (Margaritis & Thrun 2000) and
//! IAMB (Tsamardinos et al. 2003) — the building block of both the CD
//! algorithm (§4) and the FGS baseline (§7.4).

use crate::oracle::{CiOracle, Var};

/// Grow–Shrink Markov-boundary discovery for `target`.
///
/// Grow phase: repeatedly add any variable dependent on the target given
/// the current boundary, until a fixpoint. Shrink phase: remove any
/// member that is independent of the target given the rest. Returns the
/// boundary sorted ascending.
pub fn grow_shrink<O: CiOracle + ?Sized>(oracle: &O, target: Var) -> Vec<Var> {
    let n = oracle.num_vars();
    let mut boundary: Vec<Var> = Vec::new();
    // Grow. Additions require a dependence verdict that is *calibrated*
    // on the current conditioning (always true for permutation tests;
    // the df·β ≤ n power gate for χ²) — once the boundary conditions
    // the data into groups too small to test, no further variable can
    // be admitted on evidence.
    let mut changed = true;
    while changed {
        changed = false;
        for x in 0..n {
            if x == target || boundary.contains(&x) {
                continue;
            }
            if oracle.reliable_dependence(target, x, &boundary)
                && oracle.dependent(target, x, &boundary)
            {
                boundary.push(x);
                changed = true;
            }
        }
    }
    shrink(oracle, target, &mut boundary);
    boundary.sort_unstable();
    boundary
}

/// IAMB: like Grow–Shrink, but the grow phase admits the *strongest*
/// associated candidate first, which keeps the boundary (and hence the
/// conditioning sets) small and the tests reliable.
pub fn iamb<O: CiOracle + ?Sized>(oracle: &O, target: Var) -> Vec<Var> {
    let n = oracle.num_vars();
    let mut boundary: Vec<Var> = Vec::new();
    loop {
        let mut best: Option<(Var, f64)> = None;
        for x in 0..n {
            if x == target || boundary.contains(&x) {
                continue;
            }
            if oracle.reliable_dependence(target, x, &boundary)
                && oracle.dependent(target, x, &boundary)
            {
                let a = oracle.assoc(target, x, &boundary);
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((x, a));
                }
            }
        }
        match best {
            Some((x, _)) => boundary.push(x),
            None => break,
        }
    }
    shrink(oracle, target, &mut boundary);
    boundary.sort_unstable();
    boundary
}

/// Shrink phase shared by both algorithms: drop members independent of
/// the target given the remaining boundary, to a fixpoint. A member is
/// only removed on a *reliable* independence — an underpowered test
/// accepting the null is not evidence (§4's sparse-subpopulation
/// failure mode).
fn shrink<O: CiOracle + ?Sized>(oracle: &O, target: Var, boundary: &mut Vec<Var>) {
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < boundary.len() {
            let x = boundary[i];
            let rest: Vec<Var> = boundary.iter().copied().filter(|&v| v != x).collect();
            if oracle.reliable(target, x, &rest) && oracle.independent(target, x, &rest) {
                boundary.remove(i);
                changed = true;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use hypdb_graph::dag::Dag;

    /// Z -> T <- W, T -> C <- D, T -> Y (the §4 running example).
    fn fig2_oracle() -> GraphOracle {
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D", "Y"]);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(4, 3);
        g.add_edge(2, 5);
        GraphOracle::new(g)
    }

    #[test]
    fn gs_recovers_exact_boundary() {
        let o = fig2_oracle();
        // MB(T) = {Z, W, C, D, Y}.
        assert_eq!(grow_shrink(&o, 2), vec![0, 1, 3, 4, 5]);
        // MB(Z) = {W, T} (child T, spouse W).
        assert_eq!(grow_shrink(&o, 0), vec![1, 2]);
        // MB(D) = {T, C}.
        assert_eq!(grow_shrink(&o, 4), vec![2, 3]);
        // MB(Y) = {T}.
        assert_eq!(grow_shrink(&o, 5), vec![2]);
    }

    #[test]
    fn iamb_matches_gs_on_exact_oracle() {
        let o = fig2_oracle();
        for v in 0..6 {
            assert_eq!(
                iamb(&o, v),
                grow_shrink(&o, v),
                "boundary mismatch at node {v}"
            );
        }
    }

    #[test]
    fn isolated_node_has_empty_boundary() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        let o = GraphOracle::new(g);
        assert!(grow_shrink(&o, 2).is_empty());
        assert!(iamb(&o, 2).is_empty());
    }

    #[test]
    fn chain_boundaries() {
        // 0 -> 1 -> 2 -> 3.
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let o = GraphOracle::new(g);
        assert_eq!(grow_shrink(&o, 0), vec![1]);
        assert_eq!(grow_shrink(&o, 1), vec![0, 2]);
        assert_eq!(grow_shrink(&o, 2), vec![1, 3]);
    }

    #[test]
    fn dense_collider_boundary() {
        // 0,1,2 all parents of 3; 3 -> 4.
        let mut g = Dag::new(5);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let o = GraphOracle::new(g);
        assert_eq!(grow_shrink(&o, 3), vec![0, 1, 2, 4]);
        // Parents see each other through the collider: MB(0) = {1,2,3}.
        assert_eq!(grow_shrink(&o, 0), vec![1, 2, 3]);
    }
}
