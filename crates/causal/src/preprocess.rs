//! Dropping logical dependencies before discovery (§4).
//!
//! Integrity constraints confuse constraint-based discovery: an
//! approximate FD `X ⇒ T` (e.g. `AirportWAC ⇒ Airport`) makes `T`
//! conditionally independent of everything given `X`, severing it from
//! the DAG; key-like attributes (`ID`, `FlightNum`, `TailNum`)
//! participate in such FDs by construction. HypDB therefore
//!
//! 1. discards attributes *equivalent* to another attribute
//!    (`H(X|Y) ≈ 0 ∧ H(Y|X) ≈ 0`), keeping one representative,
//! 2. discards *key-like* attributes, detected by the paper's
//!    entropy-scaling heuristic: entropy is a property of the generative
//!    distribution, not of the sample size — an attribute whose entropy
//!    keeps growing with the sample size is a key fragment, not a
//!    category.

use hypdb_exec::ThreadPool;
use hypdb_stats::entropy::entropy_plugin;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::{AttrId, RowSet, Scan};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for logical-dependency dropping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// `ε` for the approximate-FD test `H(X|Y) ≤ ε ∧ H(Y|X) ≤ ε`.
    pub fd_epsilon: f64,
    /// Number of nested subsample sizes for the key heuristic.
    pub key_levels: usize,
    /// Entropy growth (nats) per doubling of the sample size above which
    /// an attribute is considered key-like.
    pub key_growth_threshold: f64,
    /// Seed for the subsampling.
    pub seed: u64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            fd_epsilon: 0.05,
            key_levels: 4,
            key_growth_threshold: 0.35,
            seed: 0xFD,
        }
    }
}

/// What was dropped and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessReport {
    /// Attributes that survive.
    pub kept: Vec<AttrId>,
    /// `(dropped, kept_representative)` pairs from the FD test.
    pub dropped_fd: Vec<(AttrId, AttrId)>,
    /// Attributes dropped as key-like.
    pub dropped_keys: Vec<AttrId>,
}

/// Runs both filters over `attrs` of `table` restricted to `rows`.
///
/// The per-attribute work of both filters — the entropy-scaling scan of
/// the key heuristic and the marginal entropies the FD test compares —
/// fans out over the global worker pool; each attribute's verdict is
/// independent of the others, so the report is identical at any thread
/// count.
pub fn drop_logical_dependencies<S: Scan + ?Sized>(
    table: &S,
    rows: &RowSet,
    attrs: &[AttrId],
    cfg: &PreprocessConfig,
) -> PreprocessReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pool = ThreadPool::current();

    // --- Key-like attributes (entropy-vs-sample-size scaling). ---
    let row_ids: Vec<u32> = rows.iter().collect();
    let n = row_ids.len();
    let mut dropped_keys = Vec::new();
    let mut survivors: Vec<AttrId> = Vec::new();
    if n >= 16 {
        // Nested subsamples of sizes n, n/2, n/4, …
        let mut sizes = Vec::new();
        let mut s = n;
        for _ in 0..cfg.key_levels {
            sizes.push(s);
            s /= 2;
            if s < 8 {
                break;
            }
        }
        sizes.reverse(); // ascending

        // One shared shuffled order => nested samples (drawn once, up
        // front, so the parallel per-attribute scans share it read-only).
        let mut order = row_ids.clone();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let key_like_flags = pool.parallel_map(attrs, |_, &a| {
            let codes = table.col(a);
            let card = table.cardinality(a).max(1) as usize;
            let mut prev_h: Option<f64> = None;
            let mut growths = Vec::new();
            let mut counts = vec![0u64; card];
            let mut consumed = 0usize;
            for &size in &sizes {
                while consumed < size {
                    counts[codes.at(order[consumed]) as usize] += 1;
                    consumed += 1;
                }
                let h = entropy_plugin(counts.iter().copied());
                if let Some(p) = prev_h {
                    growths.push(h - p);
                }
                prev_h = Some(h);
            }
            // Key-like: entropy grows by more than the threshold at
            // every doubling (monotone scaling with sample size).
            !growths.is_empty() && growths.iter().all(|&g| g > cfg.key_growth_threshold)
        });
        for (&a, key_like) in attrs.iter().zip(key_like_flags) {
            if key_like {
                dropped_keys.push(a);
            } else {
                survivors.push(a);
            }
        }
    } else {
        survivors = attrs.to_vec();
    }

    // --- Approximate-FD equivalences among survivors. ---
    // Marginal entropies in parallel up front; the pairwise scan below
    // is inherently sequential (each verdict depends on what is already
    // kept), but each attribute's *round* of candidate joint entropies
    // is submitted as one parallel batch: the verdict only needs the
    // first matching representative in kept order, which is recovered
    // from the batch results exactly as the sequential scan would.
    let marginal_entropies = pool.parallel_map(&survivors, |_, &a| {
        ContingencyTable::from_table(table, rows, &[a])
            .entropy(hypdb_stats::EntropyEstimator::PlugIn)
    });
    let mut dropped_fd = Vec::new();
    let mut kept: Vec<AttrId> = Vec::new();
    let mut entropies: Vec<f64> = Vec::new();
    for (&a, &h_a) in survivors.iter().zip(&marginal_entropies) {
        // Quick reject: equivalence needs similar entropies; only the
        // candidates passing the screen pay a joint-table pass.
        let cand_idx: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|(i, _)| (h_a - entropies[*i]).abs() <= 2.0 * cfg.fd_epsilon)
            .map(|(i, _)| i)
            .collect();
        let joint_entropies = pool.parallel_map(&cand_idx, |_, &i| {
            ContingencyTable::from_table(table, rows, &[a, kept[i]])
                .entropy(hypdb_stats::EntropyEstimator::PlugIn)
        });
        let mut representative: Option<AttrId> = None;
        for (&i, &h_ab) in cand_idx.iter().zip(&joint_entropies) {
            let h_a_given_b = h_ab - entropies[i];
            let h_b_given_a = h_ab - h_a;
            if h_a_given_b <= cfg.fd_epsilon && h_b_given_a <= cfg.fd_epsilon {
                representative = Some(kept[i]);
                break;
            }
        }
        match representative {
            Some(b) => dropped_fd.push((a, b)),
            None => {
                kept.push(a);
                entropies.push(h_a);
            }
        }
    }

    PreprocessReport {
        kept,
        dropped_fd,
        dropped_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::{Table, TableBuilder};

    /// carrier/airport categorical data + `wac` (bijective with
    /// airport) + `id` (unique per row).
    fn sample(n: usize) -> Table {
        let mut b = TableBuilder::new(["carrier", "airport", "wac", "id"]);
        let airports = ["COS", "MFE", "MTJ", "ROC"];
        let wacs = ["41", "74", "82", "22"]; // one per airport
        for i in 0..n {
            let a = i % 4;
            let carrier = if (i / 4) % 2 == 0 { "AA" } else { "UA" };
            let id = i.to_string();
            b.push_row([carrier, airports[a], wacs[a], id.as_str()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn detects_bijective_fd() {
        let t = sample(1024);
        let attrs: Vec<AttrId> = t.schema().attr_ids().collect();
        let rows = t.all_rows();
        let rep = drop_logical_dependencies(&t, &rows, &attrs, &PreprocessConfig::default());
        let airport = t.attr("airport").unwrap();
        let wac = t.attr("wac").unwrap();
        // wac should be dropped in favour of airport (first-kept wins).
        assert!(rep.dropped_fd.contains(&(wac, airport)), "{rep:?}");
        assert!(rep.kept.contains(&airport));
    }

    #[test]
    fn detects_key_attribute() {
        let t = sample(1024);
        let attrs: Vec<AttrId> = t.schema().attr_ids().collect();
        let rows = t.all_rows();
        let rep = drop_logical_dependencies(&t, &rows, &attrs, &PreprocessConfig::default());
        let id = t.attr("id").unwrap();
        assert!(rep.dropped_keys.contains(&id), "{rep:?}");
        assert!(!rep.kept.contains(&id));
    }

    #[test]
    fn keeps_ordinary_attributes() {
        let t = sample(1024);
        let attrs: Vec<AttrId> = t.schema().attr_ids().collect();
        let rows = t.all_rows();
        let rep = drop_logical_dependencies(&t, &rows, &attrs, &PreprocessConfig::default());
        assert!(rep.kept.contains(&t.attr("carrier").unwrap()));
        assert!(rep.kept.contains(&t.attr("airport").unwrap()));
        // Exactly airport+carrier survive.
        assert_eq!(rep.kept.len(), 2);
    }

    #[test]
    fn tiny_tables_skip_key_heuristic() {
        let t = sample(8);
        let attrs: Vec<AttrId> = t.schema().attr_ids().collect();
        let rows = t.all_rows();
        let rep = drop_logical_dependencies(&t, &rows, &attrs, &PreprocessConfig::default());
        assert!(rep.dropped_keys.is_empty());
    }

    #[test]
    fn self_equivalence_not_tested() {
        // A single attribute can never be dropped.
        let t = sample(256);
        let carrier = t.attr("carrier").unwrap();
        let rows = t.all_rows();
        let rep = drop_logical_dependencies(&t, &rows, &[carrier], &PreprocessConfig::default());
        assert_eq!(rep.kept, vec![carrier]);
    }
}
