//! The deterministic EXPLAIN surface of the multi-query planner.
//!
//! Classic optimisers ship EXPLAIN; this module is ours. While an
//! analysis runs with an explain-collecting tracer installed
//! (`hypdb_obs::Tracer::with_explain`), the data oracle records one
//! [`RoundRecord`] per planner round — **only data-deterministic
//! facts**: the round kind, the planned statement groups (attribute
//! sets and cardinalities), and, for speculative rounds, the decisive
//! hit index (itself invariant by the byte-identity guarantee). The
//! records deliberately exclude live cache state, counters, and clocks,
//! all of which depend on scheduling.
//!
//! [`assemble`] then replays the planner's cost model over the records
//! in canonical `(span path, seq)` order against a *simulated* cache
//! that starts empty at the request boundary: per-group
//! scan-vs-marginalise choices with their predicted costs, lattice
//! intermediates, cache reuse, and speculation skips. Because the
//! replay consumes only a-priori quantities — `min(∏ dims, rows)`
//! support bounds, attribute widths, row counts — the assembled JSON is
//! **byte-identical across worker counts, shard layouts, and
//! `HYPDB_PLAN_FORCE` strategies**. It is a *predicted* plan in the
//! EXPLAIN tradition: the live counters in `/metrics` may differ when
//! concurrent requests warm the shared cache or a forced strategy
//! overrides the cost model; the explain output never does.

use crate::plan::{support_bound, CostModel};
use hypdb_obs::ExplainEntry;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// One planned statement group as recorded by the oracle. Attribute
/// sets are ascending index lists into the round's [`RoundRecord::attrs`]
/// dictionary (index order = `AttrId` order, so lexicographic
/// comparisons mirror the planner's exactly).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupRecord {
    /// Conditioning-set attributes (ascending indices).
    pub z: Vec<usize>,
    /// The group's joint table attributes (ascending indices).
    pub joint: Vec<usize>,
    /// Member statements, as indices into the round's unique list.
    pub members: Vec<usize>,
}

/// One planner round's data-deterministic record — what the oracle
/// writes into the EXPLAIN sink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// `"batch"` (settle everything) or `"find_first"` (speculative).
    pub kind: String,
    /// Selected row count the round's cost model priced against.
    pub rows: u64,
    /// Submitted statements (before dedup).
    pub statements: usize,
    /// For `find_first`: the decisive statement index, if any.
    pub hit: Option<usize>,
    /// Statement slot → unique-statement index.
    pub slots: Vec<usize>,
    /// Attribute dictionary `(name, cardinality)`, ascending `AttrId`.
    pub attrs: Vec<(String, u64)>,
    /// Per unique statement: its target table `{x, y} ∪ z` (ascending
    /// indices into `attrs`).
    pub unique_targets: Vec<Vec<usize>>,
    /// Per unique statement: the staged permutation-budget checkpoints
    /// ([`StageSchedule::stages`](hypdb_stats::independence::StageSchedule::stages))
    /// its permutation test will run — `[m]` when the schedule is
    /// pinned single-stage, empty when the statement settles inline
    /// (χ² paths). A pure function of (seed, strata shape, config).
    pub stage_budgets: Vec<Vec<usize>>,
    /// Planned groups, planner order (largest joint first).
    pub groups: Vec<GroupRecord>,
}

impl RoundRecord {
    /// The sink payload (canonical JSON text).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("round record serialises")
    }
}

/// Mirror of the oracle's lattice-descent thresholds.
const MIN_FANOUT: usize = 4;
const MAX_DEPTH: usize = 4;

/// The simulated cache: attribute set → predicted support of the table
/// built over it. Starts empty at the request boundary and evolves in
/// canonical round order.
type SimCache = BTreeMap<Vec<usize>, u64>;

struct Sim<'a> {
    cards: Vec<u32>,
    rows: u64,
    cm: CostModel,
    cache: &'a mut SimCache,
}

impl Sim<'_> {
    /// Predicted support: the a-priori bound refined by every simulated
    /// superset (mirror of the oracle's `predict_support`).
    fn support(&self, attrs: &[usize]) -> u64 {
        if let Some(&s) = self.cache.get(attrs) {
            return s;
        }
        let dims: Vec<u32> = attrs.iter().map(|&i| self.cards[i].max(1)).collect();
        let mut best = support_bound(&dims, self.rows);
        for (key, &sup) in self.cache.iter() {
            if sup < best && is_subset(attrs, key) {
                best = sup;
            }
        }
        best
    }

    /// Predicted build cost: zero when simulated-cached, else the
    /// cheaper of a scan and the best simulated superset walk (mirror
    /// of the oracle's `predict_build_cost`).
    fn build_cost(&self, attrs: &[usize]) -> u64 {
        if self.cache.contains_key(attrs) {
            return 0;
        }
        let mut best = self.cm.scan_cost(attrs.len());
        for (key, &sup) in self.cache.iter() {
            if is_subset(attrs, key) {
                best = best.min(self.cm.marginal_cost(sup, attrs.len()));
            }
        }
        best
    }

    /// Marks `attrs` built (at its predicted support).
    fn insert(&mut self, attrs: &[usize]) {
        let sup = self.support(attrs);
        self.cache.insert(attrs.to_vec(), sup);
    }

    /// Mirror of the oracle's top-down lattice descent, collecting the
    /// intermediates the cost model approves.
    fn lattice(
        &mut self,
        parent: &[usize],
        targets: &[Vec<usize>],
        depth: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        if depth >= MAX_DEPTH || targets.len() < MIN_FANOUT {
            return;
        }
        let sup_parent = self.support(parent);
        let mid = targets.len() / 2;
        for half in [&targets[..mid], &targets[mid..]] {
            let mut inter: Vec<usize> = half.iter().flatten().copied().collect();
            inter.sort_unstable();
            inter.dedup();
            if inter.len() >= parent.len() {
                continue;
            }
            let sup_inter = self.support(&inter);
            let with_inter = self.cm.marginal_cost(sup_parent, inter.len())
                + half
                    .iter()
                    .map(|t| self.cm.marginal_cost(sup_inter, t.len()))
                    .sum::<u64>();
            let without = half
                .iter()
                .map(|t| self.cm.marginal_cost(sup_parent, t.len()))
                .sum::<u64>();
            if with_inter < without {
                if !self.cache.contains_key(inter.as_slice()) {
                    out.push(inter.clone());
                    self.insert(&inter);
                }
                self.lattice(&inter, half, depth + 1, out);
            }
        }
    }
}

fn is_subset(small: &[usize], big: &[usize]) -> bool {
    let mut it = big.iter();
    'outer: for s in small {
        for b in it.by_ref() {
            if b == s {
                continue 'outer;
            }
            if b > s {
                return false;
            }
        }
        return false;
    }
    true
}

/// Per-group simulated decision, accumulated while replaying a round.
#[derive(Debug, Default)]
struct GroupSim {
    joint_support: u64,
    joint_cost: u64,
    direct_cost: u64,
    marginalise: bool,
    joint_cached: bool,
    lattice: Vec<Vec<usize>>,
    targets_cached: u64,
    targets_marginalised: u64,
    targets_scanned: u64,
    staged: bool,
}

/// Running totals across every round of one request.
#[derive(Debug, Default)]
struct Totals {
    rounds: u64,
    statements: u64,
    groups: u64,
    joints_marginalised: u64,
    lattice_intermediates: u64,
    cache_hits: u64,
    marginalisations: u64,
    scans: u64,
    speculative_skipped: u64,
}

fn names(attrs: &[(String, u64)], set: &[usize]) -> Value {
    Value::Arr(
        set.iter()
            .map(|&i| Value::Str(attrs[i].0.clone()))
            .collect(),
    )
}

/// Stages one group against the simulation (the scan-vs-marginalise
/// decision plus lattice descent), mirroring the oracle's
/// `stage_group` under the pure cost strategy.
fn stage(sim: &mut Sim<'_>, rec: &RoundRecord, group: &GroupRecord, gs: &mut GroupSim) {
    gs.staged = true;
    let mut targets: Vec<Vec<usize>> = group
        .members
        .iter()
        .map(|&m| rec.unique_targets[m].clone())
        .collect();
    targets.sort_unstable();
    targets.dedup();
    gs.joint_cached = sim.cache.contains_key(&group.joint);
    gs.joint_support = sim.support(&group.joint);
    gs.joint_cost = sim.build_cost(&group.joint)
        + targets
            .iter()
            .filter(|t| *t != &group.joint)
            .map(|t| sim.cm.marginal_cost(gs.joint_support, t.len()))
            .sum::<u64>();
    gs.direct_cost = targets.iter().map(|t| sim.build_cost(t)).sum();
    gs.marginalise = gs.joint_cost < gs.direct_cost;
    if gs.marginalise {
        sim.insert(&group.joint);
        sim.lattice(&group.joint, &targets, 0, &mut gs.lattice);
    }
}

/// Simulates building one unique statement's target table, charging
/// the owning group's accounting.
fn build_target(sim: &mut Sim<'_>, target: &[usize], gs: &mut GroupSim) {
    let cost = sim.build_cost(target);
    if cost == 0 {
        gs.targets_cached += 1;
    } else if cost < sim.cm.scan_cost(target.len()) {
        gs.targets_marginalised += 1;
    } else {
        gs.targets_scanned += 1;
    }
    sim.insert(target);
}

/// Replays the recorded rounds in canonical `(path, seq)` order and
/// returns the EXPLAIN document (`hypdb-explain/v1`). Entries that are
/// not round records (or fail to parse) are skipped — parseability is
/// itself deterministic, so skipping cannot break byte-identity.
pub fn assemble(entries: &[ExplainEntry]) -> Value {
    let mut cache = SimCache::new();
    let mut totals = Totals::default();
    let mut rounds: Vec<Value> = Vec::new();
    for entry in entries {
        let Ok(rec) = serde_json::from_str::<RoundRecord>(&entry.payload) else {
            continue;
        };
        let mut sim = Sim {
            cards: rec
                .attrs
                .iter()
                .map(|&(_, c)| c.min(u32::MAX as u64) as u32)
                .collect(),
            rows: rec.rows,
            cm: CostModel::new(rec.rows, 1),
            cache: &mut cache,
        };
        let mut group_sims: Vec<GroupSim> =
            rec.groups.iter().map(|_| GroupSim::default()).collect();
        let speculative_skipped = match (rec.kind.as_str(), rec.hit) {
            ("find_first", Some(h)) => rec.statements.saturating_sub(h + 1) as u64,
            _ => 0,
        };
        if rec.kind == "find_first" {
            // Wave-of-one replay: statements execute in submission
            // order up to (and including) the decisive hit; a group is
            // staged when a wave first touches it.
            let group_of: Vec<usize> = {
                let mut g = vec![0usize; rec.unique_targets.len()];
                for (gi, group) in rec.groups.iter().enumerate() {
                    for &m in &group.members {
                        g[m] = gi;
                    }
                }
                g
            };
            let mut executed = vec![false; rec.unique_targets.len()];
            let last = rec.hit.unwrap_or(rec.slots.len().saturating_sub(1));
            for &u in rec.slots.iter().take(last + 1) {
                if executed[u] {
                    continue;
                }
                executed[u] = true;
                let gi = group_of[u];
                if !group_sims[gi].staged {
                    stage(&mut sim, &rec, &rec.groups[gi], &mut group_sims[gi]);
                }
                let target = rec.unique_targets[u].clone();
                build_target(&mut sim, &target, &mut group_sims[gi]);
            }
        } else {
            // Batch replay: groups stage and settle in planner order.
            for (group, gs) in rec.groups.iter().zip(group_sims.iter_mut()) {
                stage(&mut sim, &rec, group, gs);
                for &m in &group.members {
                    let target = rec.unique_targets[m].clone();
                    build_target(&mut sim, &target, gs);
                }
            }
        }
        let groups_json: Vec<Value> = rec
            .groups
            .iter()
            .zip(&group_sims)
            .filter(|(_, gs)| gs.staged)
            .map(|(group, gs)| {
                totals.groups += 1;
                totals.joints_marginalised += u64::from(gs.marginalise);
                totals.lattice_intermediates += gs.lattice.len() as u64;
                totals.cache_hits += gs.targets_cached;
                totals.marginalisations += gs.targets_marginalised;
                totals.scans += gs.targets_scanned;
                Value::Obj(vec![
                    ("z".into(), names(&rec.attrs, &group.z)),
                    ("joint".into(), names(&rec.attrs, &group.joint)),
                    ("members".into(), Value::UInt(group.members.len() as u64)),
                    ("joint_support".into(), Value::UInt(gs.joint_support)),
                    ("joint_cost".into(), Value::UInt(gs.joint_cost)),
                    ("direct_cost".into(), Value::UInt(gs.direct_cost)),
                    (
                        "strategy".into(),
                        Value::Str(
                            if gs.marginalise {
                                "marginalise"
                            } else {
                                "scan"
                            }
                            .into(),
                        ),
                    ),
                    ("joint_cached".into(), Value::Bool(gs.joint_cached)),
                    (
                        "lattice_intermediates".into(),
                        Value::Arr(gs.lattice.iter().map(|l| names(&rec.attrs, l)).collect()),
                    ),
                    ("targets_cached".into(), Value::UInt(gs.targets_cached)),
                    (
                        "targets_marginalised".into(),
                        Value::UInt(gs.targets_marginalised),
                    ),
                    ("targets_scanned".into(), Value::UInt(gs.targets_scanned)),
                ])
            })
            .collect();
        totals.rounds += 1;
        totals.statements += rec.statements as u64;
        totals.speculative_skipped += speculative_skipped;
        rounds.push(Value::Obj(vec![
            ("path".into(), Value::Str(entry.path.clone())),
            ("kind".into(), Value::Str(rec.kind.clone())),
            ("rows".into(), Value::UInt(rec.rows)),
            ("statements".into(), Value::UInt(rec.statements as u64)),
            (
                "unique".into(),
                Value::UInt(rec.unique_targets.len() as u64),
            ),
            (
                "hit".into(),
                match rec.hit {
                    Some(h) => Value::UInt(h as u64),
                    None => Value::Null,
                },
            ),
            (
                "speculative_skipped".into(),
                Value::UInt(speculative_skipped),
            ),
            (
                "stage_budgets".into(),
                Value::Arr(
                    rec.stage_budgets
                        .iter()
                        .map(|b| Value::Arr(b.iter().map(|&c| Value::UInt(c as u64)).collect()))
                        .collect(),
                ),
            ),
            ("groups".into(), Value::Arr(groups_json)),
        ]));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str("hypdb-explain/v1".into())),
        ("rounds".into(), Value::Arr(rounds)),
        (
            "totals".into(),
            Value::Obj(vec![
                ("rounds".into(), Value::UInt(totals.rounds)),
                ("statements".into(), Value::UInt(totals.statements)),
                ("groups".into(), Value::UInt(totals.groups)),
                (
                    "joints_marginalised".into(),
                    Value::UInt(totals.joints_marginalised),
                ),
                (
                    "lattice_intermediates".into(),
                    Value::UInt(totals.lattice_intermediates),
                ),
                (
                    "predicted_cache_hits".into(),
                    Value::UInt(totals.cache_hits),
                ),
                (
                    "predicted_marginalisations".into(),
                    Value::UInt(totals.marginalisations),
                ),
                ("predicted_scans".into(), Value::UInt(totals.scans)),
                (
                    "speculative_skipped".into(),
                    Value::UInt(totals.speculative_skipped),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RoundRecord {
        RoundRecord {
            kind: "batch".into(),
            rows: 1000,
            statements: 3,
            hit: None,
            slots: vec![0, 1, 2],
            attrs: vec![
                ("A".into(), 2),
                ("B".into(), 3),
                ("C".into(), 4),
                ("D".into(), 5),
            ],
            unique_targets: vec![vec![0, 1, 3], vec![0, 2, 3], vec![1, 2, 3]],
            stage_budgets: vec![vec![16, 64, 400], vec![400], vec![]],
            groups: vec![GroupRecord {
                z: vec![3],
                joint: vec![0, 1, 2, 3],
                members: vec![0, 1, 2],
            }],
        }
    }

    fn entry(rec: &RoundRecord, path: &str, seq: u64) -> ExplainEntry {
        ExplainEntry {
            path: path.into(),
            seq,
            payload: rec.to_json(),
        }
    }

    #[test]
    fn round_record_roundtrips_through_json() {
        let rec = record();
        let back: RoundRecord = serde_json::from_str(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn assemble_is_deterministic_and_prices_the_joint() {
        let rec = record();
        let entries = vec![entry(&rec, "request/discovery", 0)];
        let a = serde_json::to_string(&assemble(&entries)).unwrap();
        let b = serde_json::to_string(&assemble(&entries)).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"hypdb-explain/v1\""));
        // joint: build 1000*4 = 4000, three members derived at
        // support(joint)=min(120,1000)=120 × width 3 = 360 each →
        // 4000+1080 < direct 3×3000: marginalise wins.
        assert!(a.contains("\"strategy\":\"marginalise\""));
        assert!(a.contains("\"joint_support\":120"));
        assert!(a.contains("\"targets_marginalised\":3"));
        assert!(a.contains("\"predicted_scans\":0"));
    }

    #[test]
    fn simulated_cache_carries_across_rounds() {
        let rec = record();
        let entries = vec![
            entry(&rec, "request/discovery", 0),
            entry(&rec, "request/discovery", 1),
        ];
        let doc = serde_json::to_string(&assemble(&entries)).unwrap();
        // Second identical round finds every table simulated-cached.
        assert!(doc.contains("\"joint_cached\":true"));
        assert!(doc.contains("\"targets_cached\":3"));
        assert!(doc.contains("\"predicted_cache_hits\":3"));
    }

    #[test]
    fn find_first_replay_skips_past_the_hit() {
        let mut rec = record();
        rec.kind = "find_first".into();
        rec.hit = Some(0);
        let entries = vec![entry(&rec, "request/discovery", 0)];
        let doc = serde_json::to_string(&assemble(&entries)).unwrap();
        assert!(doc.contains("\"speculative_skipped\":2"));
        // Only slot 0's unique executed: one target built.
        assert!(doc.contains("\"targets_marginalised\":1"));
    }

    #[test]
    fn unparsable_entries_are_skipped() {
        let entries = vec![ExplainEntry {
            path: "request".into(),
            seq: 0,
            payload: "not json".into(),
        }];
        let doc = serde_json::to_string(&assemble(&entries)).unwrap();
        assert!(doc.contains("\"rounds\":[]"));
    }
}
