//! FGS — the Full Grow-Shrink structure-learning baseline (§7.4).
//!
//! "The FGS utilizes Markov boundary for learning the structure of a
//! causal DAG. It first discovers the Markov boundary of all nodes …
//! Then, it determines the underlying undirected graph … For edge
//! orientation, it uses similar principles as used in the CD algorithm."
//!
//! Our implementation: (1) Grow–Shrink blankets for every node,
//! (2) skeleton via separating-set search within the smaller blanket,
//! (3) collider orientation from recorded separating sets,
//! (4) Meek rules R1–R3 to propagate orientations. The result is a
//! partially-directed graph; for parent-recovery scoring, a node's
//! parents are its incoming directed edges.

use crate::blanket::{grow_shrink, iamb};
use crate::cd::BlanketAlgorithm;
use crate::oracle::{CiOracle, Var};
use crate::subsets::subsets_ascending;
use hypdb_table::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Edge state in a partially directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeMark {
    /// No edge.
    None,
    /// Undirected edge.
    Undirected,
    /// Directed `row → col`.
    Out,
    /// Directed `col → row`.
    In,
}

/// A partially directed acyclic graph over `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pdag {
    n: usize,
    marks: Vec<EdgeMark>, // n*n, marks[u*n+v]
}

impl Pdag {
    /// Edgeless PDAG.
    pub fn new(n: usize) -> Self {
        Pdag {
            n,
            marks: vec![EdgeMark::None; n * n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, u: Var, v: Var) -> usize {
        u * self.n + v
    }

    /// Adds an undirected edge.
    pub fn add_undirected(&mut self, u: Var, v: Var) {
        let (i, j) = (self.idx(u, v), self.idx(v, u));
        self.marks[i] = EdgeMark::Undirected;
        self.marks[j] = EdgeMark::Undirected;
    }

    /// Orients `u → v` (the edge must exist or is created).
    pub fn orient(&mut self, u: Var, v: Var) {
        let (i, j) = (self.idx(u, v), self.idx(v, u));
        self.marks[i] = EdgeMark::Out;
        self.marks[j] = EdgeMark::In;
    }

    /// True when any edge joins `u` and `v`.
    pub fn adjacent(&self, u: Var, v: Var) -> bool {
        self.marks[self.idx(u, v)] != EdgeMark::None
    }

    /// True for a directed edge `u → v`.
    pub fn directed(&self, u: Var, v: Var) -> bool {
        self.marks[self.idx(u, v)] == EdgeMark::Out
    }

    /// True for an undirected edge between `u` and `v`.
    pub fn undirected(&self, u: Var, v: Var) -> bool {
        self.marks[self.idx(u, v)] == EdgeMark::Undirected
    }

    /// Parents of `v` (incoming directed edges).
    pub fn parents(&self, v: Var) -> Vec<Var> {
        (0..self.n).filter(|&u| self.directed(u, v)).collect()
    }

    /// All neighbours of `v` regardless of orientation.
    pub fn neighbors(&self, v: Var) -> Vec<Var> {
        (0..self.n).filter(|&u| self.adjacent(u, v)).collect()
    }

    /// Number of edges (of any kind).
    pub fn num_edges(&self) -> usize {
        let mut c = 0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if self.adjacent(u, v) {
                    c += 1;
                }
            }
        }
        c
    }
}

/// Configuration for the FGS learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FgsConfig {
    /// Cap on separating-set size during skeleton pruning.
    pub max_sepset: usize,
    /// Markov-boundary learner: Grow–Shrink gives the paper's "FGS"
    /// baseline, IAMB gives its "IAMB" baseline (§7.4: "The IAMB is
    /// similar to FGS except that it uses an improved version of the
    /// Grow-Shrink algorithm to learn Markov boundaries").
    pub blanket: BlanketAlgorithm,
}

impl Default for FgsConfig {
    fn default() -> Self {
        FgsConfig {
            max_sepset: 8,
            blanket: BlanketAlgorithm::GrowShrink,
        }
    }
}

/// The FGS structure learner.
pub struct FgsLearner {
    cfg: FgsConfig,
}

impl Default for FgsLearner {
    fn default() -> Self {
        FgsLearner::new(FgsConfig::default())
    }
}

impl FgsLearner {
    /// Creates a learner.
    pub fn new(cfg: FgsConfig) -> Self {
        FgsLearner { cfg }
    }

    /// Learns a PDAG from the oracle.
    pub fn learn<O: CiOracle + ?Sized>(&self, oracle: &O) -> Pdag {
        let n = oracle.num_vars();
        let blankets: Vec<Vec<Var>> = (0..n)
            .map(|v| match self.cfg.blanket {
                BlanketAlgorithm::GrowShrink => grow_shrink(oracle, v),
                BlanketAlgorithm::Iamb => iamb(oracle, v),
            })
            .collect();

        // Skeleton + separating sets.
        let mut pdag = Pdag::new(n);
        let mut sepsets: FxHashMap<(Var, Var), Vec<Var>> = FxHashMap::default();
        for x in 0..n {
            for y in (x + 1)..n {
                let in_bx = blankets[x].contains(&y);
                let in_by = blankets[y].contains(&x);
                if !in_bx && !in_by {
                    // Not in each other's boundary: separated by the
                    // (smaller) boundary itself — X ⊥ Y | MB(X) for any
                    // Y outside MB(X) ∪ {X}. Recording the true
                    // separator matters for collider orientation.
                    let sep = if blankets[x].len() <= blankets[y].len() {
                        blankets[x].clone()
                    } else {
                        blankets[y].clone()
                    };
                    sepsets.insert((x, y), sep);
                    continue;
                }
                // Search the smaller boundary for a separator.
                let bx: Vec<Var> = blankets[x].iter().copied().filter(|&v| v != y).collect();
                let by: Vec<Var> = blankets[y].iter().copied().filter(|&v| v != x).collect();
                let pool = if bx.len() <= by.len() { &bx } else { &by };
                let mut separated = false;
                for s in subsets_ascending(pool, self.cfg.max_sepset) {
                    if oracle.reliable(x, y, &s) && oracle.independent(x, y, &s) {
                        sepsets.insert((x, y), s);
                        separated = true;
                        break;
                    }
                }
                if !separated {
                    pdag.add_undirected(x, y);
                }
            }
        }

        // Collider orientation: for x - z - y with x,y non-adjacent,
        // orient x -> z <- y iff z is NOT in sepset(x, y).
        for z in 0..n {
            for x in 0..n {
                if x == z || !pdag.adjacent(x, z) {
                    continue;
                }
                for y in (x + 1)..n {
                    if y == z || !pdag.adjacent(y, z) || pdag.adjacent(x, y) {
                        continue;
                    }
                    let key = (x.min(y), x.max(y));
                    if let Some(s) = sepsets.get(&key) {
                        if !s.contains(&z) && pdag.undirected(x, z) && pdag.undirected(y, z) {
                            pdag.orient(x, z);
                            pdag.orient(y, z);
                        }
                    }
                }
            }
        }

        meek_rules(&mut pdag);
        pdag
    }
}

/// Meek rules R1–R3, applied to a fixpoint.
fn meek_rules(pdag: &mut Pdag) {
    let n = pdag.len();
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            for b in 0..n {
                if a == b || !pdag.undirected(a, b) {
                    continue;
                }
                // R1: c -> a, a - b, c and b non-adjacent  =>  a -> b.
                let r1 = (0..n).any(|c| c != b && pdag.directed(c, a) && !pdag.adjacent(c, b));
                if r1 {
                    pdag.orient(a, b);
                    changed = true;
                    continue;
                }
                // R2: a -> c -> b and a - b  =>  a -> b.
                let r2 =
                    (0..n).any(|c| c != a && c != b && pdag.directed(a, c) && pdag.directed(c, b));
                if r2 {
                    pdag.orient(a, b);
                    changed = true;
                    continue;
                }
                // R3: a - c, a - d, c -> b, d -> b, c/d non-adjacent =>
                // a -> b.
                let mut r3 = false;
                for c in 0..n {
                    if c == a || c == b || !pdag.undirected(a, c) || !pdag.directed(c, b) {
                        continue;
                    }
                    for d in (c + 1)..n {
                        if d == a
                            || d == b
                            || !pdag.undirected(a, d)
                            || !pdag.directed(d, b)
                            || pdag.adjacent(c, d)
                        {
                            continue;
                        }
                        r3 = true;
                        break;
                    }
                    if r3 {
                        break;
                    }
                }
                if r3 {
                    pdag.orient(a, b);
                    changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use hypdb_graph::dag::Dag;

    fn learn(g: Dag) -> Pdag {
        let o = GraphOracle::new(g);
        FgsLearner::default().learn(&o)
    }

    #[test]
    fn recovers_collider_orientation() {
        // 0 -> 2 <- 1: fully identifiable.
        let mut g = Dag::new(3);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        let p = learn(g);
        assert!(p.directed(0, 2));
        assert!(p.directed(1, 2));
        assert!(!p.adjacent(0, 1));
        assert_eq!(p.parents(2), vec![0, 1]);
    }

    #[test]
    fn chain_stays_undirected() {
        // 0 -> 1 -> 2 is Markov-equivalent to its reversals: skeleton
        // recovered, no orientation possible.
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let p = learn(g);
        assert!(p.undirected(0, 1));
        assert!(p.undirected(1, 2));
        assert!(!p.adjacent(0, 2));
    }

    #[test]
    fn meek_r1_propagates() {
        // 0 -> 2 <- 1 collider plus 2 - 3: R1 orients 2 -> 3 (else a
        // new collider at 2 would have been detected).
        let mut g = Dag::new(4);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let p = learn(g);
        assert!(p.directed(0, 2));
        assert!(p.directed(1, 2));
        assert!(p.directed(2, 3), "Meek R1 must orient 2 -> 3");
    }

    #[test]
    fn fig2_structure_parents_of_t() {
        // Z -> T <- W, T -> C <- D, T -> Y.
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D", "Y"]);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(4, 3);
        g.add_edge(2, 5);
        let p = learn(g);
        assert_eq!(p.parents(2), vec![0, 1]);
        assert_eq!(p.parents(3), vec![2, 4]);
        // Y's single edge is oriented away from T by Meek R1.
        assert!(p.directed(2, 5));
    }

    #[test]
    fn empty_graph_learns_empty() {
        let g = Dag::new(4);
        let p = learn(g);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn pdag_accessors() {
        let mut p = Pdag::new(3);
        p.add_undirected(0, 1);
        p.orient(1, 2);
        assert!(p.adjacent(0, 1));
        assert!(p.undirected(0, 1));
        assert!(p.directed(1, 2));
        assert!(!p.directed(2, 1));
        assert_eq!(p.neighbors(1), vec![0, 2]);
        assert_eq!(p.parents(2), vec![1]);
        assert_eq!(p.num_edges(), 2);
    }
}
