//! The CD (Covariate Detection) algorithm — Alg 1 / Prop 4.1, the
//! paper's method for learning `PA_T` directly from data without
//! learning the entire causal DAG.
//!
//! Phase I collects candidates: every `Z ∈ MB(T)` such that `T` is a
//! collider on a path between `Z` and some `W ∈ MB(T)` — detected by the
//! signature `(Z ⊥⊥ W | S) ∧ (Z ̸⊥⊥ W | S ∪ {T})` for some
//! `S ⊆ MB(Z) − {T}`. This finds all parents, plus possibly parents of
//! children that happen to be ancestors of `T`. Phase II removes every
//! candidate that can be separated from `T` by some
//! `S' ⊆ MB(T) − {C}` — non-neighbours of `T` cannot be parents.

use crate::blanket::{grow_shrink, iamb};
use crate::oracle::{CiOracle, Var};
use crate::plan::CiStatement;
use crate::subsets::subsets_ascending;
use hypdb_exec::ThreadPool;
use hypdb_table::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which Markov-boundary learner CD uses internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BlanketAlgorithm {
    /// Grow–Shrink (the paper's choice, §4).
    #[default]
    GrowShrink,
    /// IAMB.
    Iamb,
}

/// Configuration for the CD algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdConfig {
    /// Cap on the size of conditioning sets enumerated in both phases.
    /// The worst case is exponential in the largest Markov boundary
    /// (§4); boundaries are small in practice (≤ 8 in the paper's
    /// experiments), but a cap keeps adversarial inputs bounded.
    pub max_sepset: usize,
    /// Markov-boundary learner.
    pub blanket: BlanketAlgorithm,
}

impl Default for CdConfig {
    fn default() -> Self {
        CdConfig {
            // The largest conditioning set HypDB used in the paper's
            // experiments had 6 attributes (§7.3); 5 keeps interactive
            // latency with plenty of headroom and is configurable.
            max_sepset: 5,
            blanket: BlanketAlgorithm::GrowShrink,
        }
    }
}

/// Output of covariate discovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdOutcome {
    /// The discovered parent set `PA_T` (the covariates `Z`).
    pub parents: Vec<Var>,
    /// The Markov boundary `MB(T)` the search ran over.
    pub markov_boundary: Vec<Var>,
    /// Phase-I candidates before the phase-II neighbour filter.
    pub candidates: Vec<Var>,
}

/// The CD algorithm bound to an oracle.
///
/// Both phases fan out over the global worker pool
/// ([`hypdb_exec::global_threads`]): Phase I searches every
/// `Z ∈ MB(T)` independently, Phase II checks every candidate
/// independently. Within a search, each round's statements are
/// submitted as one batch ([`CiOracle::test_batch`]) so a planning
/// oracle answers them from shared contingency passes. Because each
/// verdict is a pure function of the oracle (oracles seed their
/// permutation tests per statement), the discovered sets are identical
/// at any thread count, batched or not.
pub struct CovariateDiscovery<'o, O: CiOracle + Sync + ?Sized> {
    oracle: &'o O,
    cfg: CdConfig,
    /// Markov boundaries are consulted repeatedly (phase I touches
    /// `MB(Z)` for every `Z ∈ MB(T)`); memoise them per instance.
    blankets: Mutex<BTreeMap<Var, Vec<Var>>>,
}

impl<'o, O: CiOracle + Sync + ?Sized> CovariateDiscovery<'o, O> {
    /// Binds the algorithm to an oracle.
    pub fn new(oracle: &'o O, cfg: CdConfig) -> Self {
        CovariateDiscovery {
            oracle,
            cfg,
            blankets: Mutex::new(BTreeMap::new()),
        }
    }

    fn blanket(&self, v: Var) -> Vec<Var> {
        if let Some(b) = self.blankets.lock().get(&v) {
            return b.clone();
        }
        let b = match self.cfg.blanket {
            BlanketAlgorithm::GrowShrink => grow_shrink(self.oracle, v),
            BlanketAlgorithm::Iamb => iamb(self.oracle, v),
        };
        self.blankets.lock().insert(v, b.clone());
        b
    }

    /// Phase-I search for one `z`: the first `(w, S)` witnessing the
    /// collider signature `(Z ⊥⊥ W | S) ∧ (Z ̸⊥⊥ W | S ∪ {T})`, if any.
    /// Subsets are enumerated ascending, so "first" is well defined and
    /// scheduling-independent.
    ///
    /// Each `(z, S)` round submits its candidate set through the batch
    /// API instead of looping `independent()`: all `W` share the
    /// conditioning set `S` (and then `S ∪ {T}`), so a planning oracle
    /// answers the round from two shared contingency passes. The first
    /// witness in `mb_t` order wins, exactly as the sequential scan.
    fn collider_witness(&self, t: Var, z: Var, mb_t: &[Var]) -> Option<(Var, Var)> {
        let mb_z = self.blanket(z);
        let pool: Vec<Var> = mb_z.iter().copied().filter(|&v| v != t).collect();
        let batched = self.oracle.prefers_batches();
        for s in subsets_ascending(&pool, self.cfg.max_sepset) {
            if !batched {
                // Lazy call-at-a-time scan for oracles that gain
                // nothing from batches.
                for &w in mb_t {
                    if w == z || s.contains(&w) {
                        continue;
                    }
                    let mut s_t = s.clone();
                    s_t.push(t);
                    if !self.oracle.reliable(z, w, &s)
                        || !self.oracle.reliable_dependence(z, w, &s_t)
                    {
                        continue;
                    }
                    if self.oracle.independent(z, w, &s) && self.oracle.dependent(z, w, &s_t) {
                        return Some((z, w));
                    }
                }
                continue;
            }
            // Candidates whose two tests would be trusted: the
            // independence half needs power (an acceptance from an
            // underpowered test means nothing); the dependence half
            // needs calibration only.
            let mut cands: Vec<(Var, Vec<Var>)> = Vec::new();
            for &w in mb_t {
                if w == z || s.contains(&w) {
                    continue;
                }
                let mut s_t = s.clone();
                s_t.push(t);
                if !self.oracle.reliable(z, w, &s) || !self.oracle.reliable_dependence(z, w, &s_t) {
                    continue;
                }
                cands.push((w, s_t));
            }
            if cands.is_empty() {
                continue;
            }
            // Round 1: the independence half for every candidate.
            let stmts: Vec<CiStatement> = cands
                .iter()
                .map(|(w, _)| CiStatement::new(z, *w, s.clone()))
                .collect();
            let indep = self.oracle.independent_batch(&stmts);
            let passed: Vec<&(Var, Vec<Var>)> = cands
                .iter()
                .zip(&indep)
                .filter_map(|(c, &ok)| ok.then_some(c))
                .collect();
            if passed.is_empty() {
                continue;
            }
            // Round 2: the dependence half, only for the survivors
            // (the same statements the sequential scan would issue).
            // Only the first dependence is consumed, so `find_first`
            // lets the oracle skip the round's speculative tail.
            let stmts: Vec<CiStatement> = passed
                .iter()
                .map(|(w, s_t)| CiStatement::new(z, *w, s_t.clone()))
                .collect();
            if let Some(j) = self.oracle.find_first(&stmts, false) {
                return Some((z, passed[j].0));
            }
        }
        None
    }

    /// Phase-II check: can candidate `c` be separated from `t` by some
    /// subset of `MB(T) − {c}`? Separation needs a *reliable* acceptance
    /// of independence. Subsets are submitted in same-size rounds — the
    /// verdict ("does any subset separate?") is order-insensitive within
    /// a round, and the planner orders each round's conditioning sets
    /// so cached joints serve the smaller ones.
    fn separable(&self, t: Var, c: Var, mb_t: &[Var]) -> bool {
        let others: Vec<Var> = mb_t.iter().copied().filter(|&v| v != c).collect();
        let subsets = subsets_ascending(&others, self.cfg.max_sepset);
        if !self.oracle.prefers_batches() {
            // Lazy call-at-a-time scan: stop at the first separator.
            return subsets
                .iter()
                .any(|s| self.oracle.reliable(t, c, s) && self.oracle.independent(t, c, s));
        }
        let mut start = 0;
        while start < subsets.len() {
            let size = subsets[start].len();
            let end = subsets[start..]
                .iter()
                .position(|s| s.len() != size)
                .map_or(subsets.len(), |p| start + p);
            let gated: Vec<&Vec<Var>> = subsets[start..end]
                .iter()
                .filter(|s| self.oracle.reliable(t, c, s))
                .collect();
            let stmts: Vec<CiStatement> = gated
                .iter()
                .map(|s| CiStatement::new(t, c, (*s).clone()))
                .collect();
            // "Does any subset separate?" needs only the first
            // independence; `find_first` skips the speculative tail.
            if self.oracle.find_first(&stmts, true).is_some() {
                return true;
            }
            start = end;
        }
        false
    }

    /// Runs Alg 1 for treatment `t`.
    pub fn discover(&self, t: Var) -> CdOutcome {
        let pool = ThreadPool::current();
        let mb_t = self.blanket(t);

        // Phase I: search every Z ∈ MB(T) for the collider signature.
        // Each search is independent (no skip of already-found
        // candidates — that sequential shortcut would make the result
        // depend on the visit order); MB(Z) lookups warm the shared
        // memo as a side effect. The union of witnesses over a BTreeSet
        // is order-insensitive.
        let witnesses = pool.parallel_map(&mb_t, |_, &z| self.collider_witness(t, z, &mb_t));
        let mut candidates: BTreeSet<Var> = BTreeSet::new();
        for (z, w) in witnesses.into_iter().flatten() {
            candidates.insert(z);
            candidates.insert(w);
        }

        // Phase II: discard candidates separable from T — non-neighbours
        // of T cannot be parents. One independent check per candidate.
        let candidates: Vec<Var> = candidates.into_iter().collect();
        let keep = pool.parallel_map(&candidates, |_, &c| !self.separable(t, c, &mb_t));
        let parents: Vec<Var> = candidates
            .iter()
            .zip(&keep)
            .filter_map(|(&c, &k)| k.then_some(c))
            .collect();

        CdOutcome {
            parents,
            markov_boundary: mb_t,
            candidates,
        }
    }
}

/// Convenience wrapper: runs CD with a config in one call.
pub fn discover_parents<O: CiOracle + Sync + ?Sized>(
    oracle: &O,
    t: Var,
    cfg: CdConfig,
) -> CdOutcome {
    CovariateDiscovery::new(oracle, cfg).discover(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GraphOracle;
    use hypdb_graph::dag::Dag;

    fn cd(oracle: &GraphOracle, t: Var) -> CdOutcome {
        discover_parents(oracle, t, CdConfig::default())
    }

    #[test]
    fn recovers_two_nonadjacent_parents() {
        // Z -> T <- W, T -> C <- D, T -> Y (§4's running structure).
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D", "Y"]);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(4, 3);
        g.add_edge(2, 5);
        let o = GraphOracle::new(g);
        let out = cd(&o, 2);
        assert_eq!(out.parents, vec![0, 1]);
        assert_eq!(out.markov_boundary, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn phase_two_removes_ancestor_spouse() {
        // Z -> T, W -> T, D -> Z, D -> C, T -> C:
        // D is both a spouse (via C) and a grandparent (via Z); it
        // satisfies the phase-I signature through the collider at T but
        // is separated from T by {Z}, so phase II must drop it.
        let mut g = Dag::with_names(["Z", "W", "T", "C", "D"]);
        g.add_edge(0, 2); // Z -> T
        g.add_edge(1, 2); // W -> T
        g.add_edge(4, 0); // D -> Z
        g.add_edge(4, 3); // D -> C
        g.add_edge(2, 3); // T -> C
        let o = GraphOracle::new(g);
        let out = cd(&o, 2);
        assert!(
            out.candidates.contains(&4),
            "phase I should flag D, got {:?}",
            out.candidates
        );
        assert_eq!(out.parents, vec![0, 1], "phase II must drop D");
    }

    #[test]
    fn three_mutually_nonadjacent_parents() {
        let mut g = Dag::new(5);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let o = GraphOracle::new(g);
        let out = cd(&o, 3);
        assert_eq!(out.parents, vec![0, 1, 2]);
    }

    #[test]
    fn root_node_has_no_parents() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let o = GraphOracle::new(g);
        let out = cd(&o, 0);
        assert!(out.parents.is_empty());
    }

    #[test]
    fn single_parent_undetectable() {
        // Chain 0 -> 1 -> 2: node 1's single parent cannot be oriented
        // from data (Markov-equivalence); the assumption of §4 fails and
        // CD correctly returns no parents (HypDB then falls back to
        // MB(T) − {Y}).
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let o = GraphOracle::new(g);
        let out = cd(&o, 1);
        assert!(out.parents.is_empty());
        assert_eq!(out.markov_boundary, vec![0, 2]);
    }

    #[test]
    fn collider_child_not_a_parent() {
        // T -> C <- D: C and D must not be reported as parents of T.
        let mut g = Dag::new(4);
        g.add_edge(0, 1); // T=0 -> C=1
        g.add_edge(2, 1); // D=2 -> C=1
        g.add_edge(3, 0); // P=3 -> T
        let o = GraphOracle::new(g);
        let out = cd(&o, 0);
        assert!(!out.parents.contains(&1));
        assert!(!out.parents.contains(&2));
    }

    #[test]
    fn diamond_parents() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: parents of 3 are {1, 2}
        // (non-adjacent, shared ancestor 0).
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let o = GraphOracle::new(g);
        let out = cd(&o, 3);
        assert_eq!(out.parents, vec![1, 2]);
    }

    #[test]
    fn sepset_cap_limits_search() {
        let mut g = Dag::new(4);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let o = GraphOracle::new(g);
        let out = discover_parents(
            &o,
            3,
            CdConfig {
                max_sepset: 0,
                ..CdConfig::default()
            },
        );
        // With S limited to ∅ the parents are still found here (S = ∅
        // suffices for marginally independent parents).
        assert_eq!(out.parents, vec![0, 1, 2]);
    }

    #[test]
    fn iamb_blanket_variant_agrees() {
        let mut g = Dag::new(5);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let o = GraphOracle::new(g);
        let out = discover_parents(
            &o,
            3,
            CdConfig {
                blanket: BlanketAlgorithm::Iamb,
                ..CdConfig::default()
            },
        );
        assert_eq!(out.parents, vec![0, 1, 2]);
    }
}
