//! `hypdb-serve`: the concurrent bias-analysis server.
//!
//! The paper pitches bias detection as an *interactive* aid — "think
//! twice about your group-by query" — and the workspace's north star is
//! serving that check at production scale. This crate is the serving
//! front-end over everything the lower layers guarantee: the pipeline
//! is `Sync` end to end and generic over [`Scan`](hypdb_table::Scan)
//! storage, every RNG seed derives from configuration, and a
//! `ShardedTable` is cheap to share immutably by `Arc` — so concurrent
//! `analyze()` calls against one shared table are safe *and*
//! reproducible, byte for byte, at any worker count.
//!
//! A hand-rolled HTTP/1.1 server (std `TcpListener`; the workspace
//! vendors no network dependencies) exposes:
//!
//! | Endpoint         | Meaning                                            |
//! |------------------|----------------------------------------------------|
//! | `POST /analyze`  | full bias report for a submitted group-by query    |
//! | `POST /detect`   | detection-only cheap path (no explain/resolve)     |
//! | `GET /datasets`  | registered datasets (name, rows, attrs, shards)    |
//! | `GET /healthz`   | liveness                                           |
//! | `GET /metrics`   | Prometheus text: request/cache/queue counters,     |
//! |                  | latency histograms, rolling 1m/5m window summaries |
//! | `GET /debug/traces`   | retained span trees (last N + K slowest)      |
//! | `GET /debug/requests` | the most recent journal records               |
//! | `GET /debug/config`   | the server's effective configuration          |
//!
//! The **flight recorder** (PR 9) threads through every request:
//! `HYPDB_JOURNAL=path` (or `hypdb serve --journal`) appends one
//! structural-first `hypdb-journal/v1` record per request ([`journal`])
//! through `hypdb-obs`'s bounded, never-blocking writer;
//! `HYPDB_DEBUG_TRACES=N` sizes the retained-trace ring behind
//! `/debug/traces`; and [`replay`] re-issues a captured journal and
//! verifies byte-identical response bodies — the `hypdb replay`
//! subcommand and the `replay_load` bench gate.
//!
//! Request/response bodies are the `hypdb-core` [`wire`] schema
//! ([`AnalyzeRequest`](hypdb_core::AnalyzeRequest) in, a timing-zeroed
//! [`AnalysisReport`](hypdb_core::AnalysisReport) or
//! [`DetectReport`](hypdb_core::DetectReport) out), shared verbatim
//! with the CLI and the test suite. Admission control is a bounded
//! connection queue (overflow → clean `503`) plus `hypdb-exec`'s
//! nested-fan-out guard around each request's pipeline run; responses
//! for identical requests come from a fingerprint-keyed,
//! **byte-bounded LRU** report cache ([`cache::ByteLruCache`]) with
//! hit/miss/eviction/resident-bytes counters surfaced in `/metrics`.
//!
//! Cross-request multi-query batching: every report request resolves
//! its `(dataset, WHERE selection)` to a shared
//! [`OracleCache`](hypdb_core::OracleCache) slot in the [`Registry`],
//! so concurrent analyses over one selection coalesce their
//! independence-statement batches and serve one another's contingency
//! tables and entropies. The aggregated
//! [`OracleStats`](hypdb_core::OracleStats) — scans, cache hits,
//! marginalisations, and the planner's `batched_statements` /
//! `groups_planned` counters — are exported in `/metrics`.
//!
//! Environment knobs: `HYPDB_SERVE_ADDR`, `HYPDB_SERVE_WORKERS`,
//! `HYPDB_SERVE_QUEUE`, `HYPDB_SERVE_MAX_BODY`,
//! `HYPDB_SERVE_TIMEOUT_MS`, `HYPDB_SERVE_CACHE_BYTES`,
//! `HYPDB_JOURNAL`, `HYPDB_DEBUG_TRACES` (see
//! [`ServeConfig::from_env`]), alongside the workspace-wide
//! `HYPDB_THREADS` and `HYPDB_SHARD_ROWS`.
//!
//! [`wire`]: hypdb_core::wire

#![deny(unsafe_code)] // one documented FFI exception lives in `sig`
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod registry;
pub mod replay;
pub mod server;
pub mod sig;

pub use cache::{ByteLruCache, CacheStats};
pub use metrics::{MetricsSnapshot, OracleSnapshot};
pub use registry::{DatasetInfo, Registry};
pub use replay::{Pace, ParsedJournal, ReplayOutcome};
pub use server::{ServeConfig, Server, ServerHandle};
