//! Hand-rolled HTTP/1.1 framing over `std::net` streams.
//!
//! In keeping with the workspace's vendored-stubs/offline policy there
//! is no HTTP dependency: this module implements exactly the slice the
//! server needs — one request per connection (`Connection: close`),
//! `Content-Length` bodies, and strict limits. Parsing failures map to
//! precise status codes so clients get actionable errors instead of
//! dropped sockets: 400 for malformed framing, 411 for a `POST` without
//! a length, 413 for a body over the configured cap, 431 for runaway
//! headers.

use hypdb_obs::Deadline;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Upper bound on the request line + headers (bytes).
pub const MAX_HEAD: usize = 8 * 1024;

/// A parsed request: method, path (query string stripped), and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path up to any `?`.
    pub path: String,
    /// Decoded body (empty for bodiless requests).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Client spoke garbage → 400 with a reason.
    Bad(String),
    /// `POST` without `Content-Length` → 411.
    LengthRequired,
    /// Declared body exceeds the cap → 413.
    TooLarge {
        /// The configured body cap (bytes).
        limit: usize,
    },
    /// Header section exceeds [`MAX_HEAD`] → 431.
    HeadTooLarge,
    /// Socket-level failure (peer vanished, timeout): no response owed.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// One `read` bounded by the connection's remaining deadline budget. A
/// per-*read* socket timeout alone would let a client trickle one byte
/// per interval and pin a worker forever; shrinking the timeout to the
/// time left makes the whole request strictly bounded.
fn read_within(stream: &mut TcpStream, chunk: &mut [u8], deadline: Deadline) -> io::Result<usize> {
    let remaining = deadline.remaining();
    if remaining.is_zero() {
        return Err(io::ErrorKind::TimedOut.into());
    }
    stream.set_read_timeout(Some(remaining))?;
    stream.read(chunk)
}

/// Reads one request from `stream`, enforcing `max_body` and giving the
/// client until `deadline` to deliver the complete request.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    deadline: Deadline,
) -> Result<Request, RequestError> {
    // Accumulate until the blank line that ends the header section.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err(RequestError::HeadTooLarge);
        }
        let n = read_within(stream, &mut chunk, deadline)?;
        if n == 0 {
            if buf.is_empty() {
                // Peer connected and left (port probe): nothing to answer.
                return Err(RequestError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            return Err(RequestError::Bad("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Bad("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line has no target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            let n = value
                .parse::<usize>()
                .map_err(|_| RequestError::Bad(format!("bad Content-Length `{value}`")))?;
            content_length = Some(n);
        } else if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(RequestError::Bad(
                "chunked transfer encoding is not supported".into(),
            ));
        }
    }

    let body_len = match (method.as_str(), content_length) {
        (_, Some(n)) => n,
        ("POST" | "PUT" | "PATCH", None) => return Err(RequestError::LengthRequired),
        (_, None) => 0,
    };
    if body_len > max_body {
        return Err(RequestError::TooLarge { limit: max_body });
    }

    // The body starts with whatever arrived after the head.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < body_len {
        let n = read_within(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(RequestError::Bad("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(body_len);
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Bad("request body is not UTF-8".into()))?;

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An outgoing response: status, content type, extra headers, body.
///
/// The body is an `Arc<String>` so a cached report can be served
/// without copying its bytes — the cache-hit hot path shares the
/// stored allocation all the way to the socket write.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers (e.g. cache diagnostics).
    pub headers: Vec<(String, String)>,
    /// Response body (shared, never mutated).
    pub body: Arc<String>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::json_shared(status, Arc::new(body.into()))
    }

    /// A JSON response over an already-shared body (zero-copy).
    pub fn json_shared(status: u16, body: Arc<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: Arc::new(body.into()),
        }
    }

    /// An `{"error": …}` JSON response with the message safely escaped.
    pub fn error(status: u16, message: impl AsRef<str>) -> Response {
        let quoted = serde_json::to_string(&message.as_ref()).unwrap_or_else(|_| "\"\"".into());
        Response::json(status, format!("{{\"error\":{quoted}}}"))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp` and flushes. One response per connection
/// (`Connection: close`), so clients may simply read to EOF.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn far_deadline() -> Deadline {
        Deadline::after(std::time::Duration::from_secs(10))
    }

    /// Runs `read_request` against raw client bytes via a loopback pair.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so reads see EOF cleanly.
            s.shutdown(std::net::Shutdown::Write).ok();
            let mut sink = Vec::new();
            s.read_to_end(&mut sink).ok();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream, max_body, far_deadline());
        drop(stream);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /analyze?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn parses_get_without_length() {
        let req = parse_raw(b"GET /healthz HTTP/1.0\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411() {
        assert!(matches!(
            parse_raw(b"POST /analyze HTTP/1.1\r\n\r\n", 1024),
            Err(RequestError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_413() {
        assert!(matches!(
            parse_raw(b"POST /a HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Err(RequestError::TooLarge { limit: 10 })
        ));
    }

    #[test]
    fn garbage_is_400() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n", 1024),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse_raw(b"POST /a HTTP/1.1\r\nContent-Length: zz\r\n\r\n", 1024),
            Err(RequestError::Bad(_))
        ));
    }

    #[test]
    fn runaway_headers_are_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD + 64));
        assert!(matches!(
            parse_raw(&raw, 1024),
            Err(RequestError::HeadTooLarge)
        ));
    }

    #[test]
    fn trickling_clients_hit_the_connection_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Drip bytes slowly, never completing the head: each write
            // would reset a naive per-read timeout.
            for _ in 0..20 {
                if s.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let t0 = hypdb_obs::Tick::now();
        let deadline = Deadline::after(std::time::Duration::from_millis(200));
        let out = read_request(&mut stream, 1024, deadline);
        assert!(matches!(out, Err(RequestError::Io(_))), "{out:?}");
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(900),
            "must give up at the deadline, not per-read"
        );
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn response_escapes_error_messages() {
        let r = Response::error(400, "bad \"quote\"\nline");
        assert!(r.body.starts_with("{\"error\":"));
        assert!(serde_json::parse(&r.body).is_ok());
    }
}
