//! Process shutdown signals as a pollable flag.
//!
//! `hypdb serve` drains in-flight requests on SIGTERM/ctrl-c. Pure std
//! cannot register signal handlers, and the workspace vendors no
//! `libc`/`signal-hook`; instead of a new dependency, this module
//! declares the one C function it needs (`signal(2)`, from the libc
//! that std already links) and installs a handler that only stores into
//! an atomic — the canonical async-signal-safe action. On non-Unix
//! targets the flag simply never fires from a signal (the binary also
//! honours stdin EOF as a shutdown request, which works everywhere).
//!
//! This is the only `unsafe` in the workspace; it is confined to the
//! FFI call below and documented inline.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler once SIGINT or SIGTERM arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown signal has been observed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Requests shutdown programmatically (the stdin-EOF path and tests
/// share the signal flag).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs SIGINT/SIGTERM handlers that set the flag (Unix; a no-op
/// elsewhere). Idempotent.
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A relaxed atomic store is async-signal-safe; everything else
        // (draining, joining, printing) happens on normal threads that
        // poll the flag.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    // SAFETY: the declaration matches `signal(2)`'s C prototype: an
    // `int` and a C-ABI handler pointer by value, returning the
    // pointer-sized previous handler (declared `usize` — it is only
    // compared, never called). A signature mismatch here would be UB
    // at the FFI boundary, not a compile error.
    extern "C" {
        /// `signal(2)` from the platform libc std already links. The
        /// return value (the previous handler) is pointer-sized; it is
        /// only checked, never called.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the documented libc entry point; the
        // handler is an `extern "C" fn(i32)` whose body performs a
        // single async-signal-safe atomic store and never unwinds.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_sets_the_flag() {
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
