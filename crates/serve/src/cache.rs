//! The byte-bounded LRU report cache.
//!
//! PR 4's report cache grew without bound: every distinct request body
//! pinned its response bytes forever. This cache accounts the resident
//! bytes of every entry (canonical request + response body + fixed
//! bookkeeping overhead) against a budget and evicts least-recently-
//! used entries once the budget is exceeded. Entries are still keyed by
//! request fingerprint with the canonical request bytes compared on
//! every probe — a 64-bit fingerprint can collide, and a collision must
//! recompute, never serve the wrong report.
//!
//! One mutex guards the whole cache (recency updates need a global
//! order anyway); the critical sections are a hash probe or an O(n)
//! eviction scan, both trivial next to a pipeline run, and bodies are
//! handed out as `Arc<String>` so no lock is held while a response is
//! written.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Fixed per-entry bookkeeping charge (hash-map slot, recency tick,
/// `Arc` headers) added to the measured string bytes.
const ENTRY_OVERHEAD: usize = 128;

/// One cached response: the canonical request it answers and the body.
struct Entry {
    request: String,
    body: Arc<String>,
    bytes: usize,
    /// Recency stamp (monotone; larger = more recent).
    used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    resident_bytes: usize,
    evictions: u64,
    evicted_bytes: u64,
}

/// Point-in-time cache accounting (exported via `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Bytes currently pinned by resident entries.
    pub resident_bytes: usize,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Total bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

/// A byte-bounded, last-recently-used-evicting response cache.
pub struct ByteLruCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ByteLruCache {
    /// A cache bounded at `capacity` resident bytes (min 1 — a zero
    /// budget degenerates to "never cache", which still works).
    pub fn new(capacity: usize) -> ByteLruCache {
        ByteLruCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poisoning is ignored: entries are plain owned values that
        // stay structurally valid if a holder panicked.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The configured byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Probes for `key`, serving the body only when the stored
    /// canonical request byte-equals `request` (collision safety).
    /// A hit refreshes the entry's recency.
    pub fn get(&self, key: u64, request: &str) -> Option<Arc<String>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        if entry.request != request {
            return None;
        }
        entry.used = tick;
        Some(Arc::clone(&entry.body))
    }

    /// Inserts (or overwrites) `key → (request, body)` and evicts
    /// least-recently-used entries until the budget holds again. An
    /// entry larger than the whole budget is evicted immediately —
    /// oversized responses are simply never resident.
    pub fn insert(&self, key: u64, request: String, body: Arc<String>) {
        let bytes = request.len() + body.len() + ENTRY_OVERHEAD;
        let mut inner = self.lock();
        inner.tick += 1;
        let entry = Entry {
            request,
            body,
            bytes,
            used: inner.tick,
        };
        if let Some(old) = inner.map.insert(key, entry) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.capacity {
            // O(n) LRU scan: the cache holds at most a few thousand
            // reports, and eviction is off the common (hit) path. The
            // `let … else` arms make an empty map end the loop instead
            // of panicking the request worker.
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.used, **k))
                .map(|(&k, _)| k)
            else {
                break;
            };
            let Some(evicted) = inner.map.remove(&victim) else {
                break;
            };
            inner.resident_bytes -= evicted.bytes;
            inner.evictions += 1;
            inner.evicted_bytes += evicted.bytes as u64;
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.map.len(),
            resident_bytes: inner.resident_bytes,
            evictions: inner.evictions,
            evicted_bytes: inner.evicted_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_requires_matching_request_bytes() {
        let c = ByteLruCache::new(1 << 20);
        c.insert(7, "req-a".into(), body("report-a"));
        assert_eq!(
            c.get(7, "req-a").as_deref().map(String::as_str),
            Some("report-a")
        );
        // Same fingerprint, different canonical bytes: a collision must
        // miss, never serve the colliding victim's report.
        assert!(c.get(7, "req-b").is_none());
        assert!(c.get(8, "req-a").is_none());
    }

    #[test]
    fn eviction_is_lru_and_accounted() {
        // Budget for roughly two entries.
        let c = ByteLruCache::new(2 * (10 + ENTRY_OVERHEAD) + 16);
        c.insert(1, "1234".into(), body("aaaaaa")); // 10 string bytes
        c.insert(2, "1234".into(), body("bbbbbb"));
        assert_eq!(c.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1, "1234").is_some());
        c.insert(3, "1234".into(), body("cccccc"));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, "1234").is_none(), "LRU entry evicted");
        assert!(c.get(1, "1234").is_some());
        assert!(c.get(3, "1234").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.evicted_bytes > 0);
        assert!(s.resident_bytes <= c.capacity());
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let c = ByteLruCache::new(1 << 20);
        c.insert(1, "r".into(), body("short"));
        let before = c.stats().resident_bytes;
        c.insert(1, "r".into(), body("a much longer body than before"));
        let after = c.stats().resident_bytes;
        assert_eq!(c.len(), 1);
        assert!(after > before);
        c.insert(1, "r".into(), body("short"));
        assert_eq!(c.stats().resident_bytes, before, "accounting is exact");
    }

    #[test]
    fn oversized_entries_never_stay_resident() {
        let c = ByteLruCache::new(64);
        c.insert(1, "r".into(), body(&"x".repeat(500)));
        assert!(c.is_empty(), "entry larger than the budget is dropped");
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = ByteLruCache::new(1 << 20);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = t * 1000 + i;
                        c.insert(key, format!("req-{key}"), body("resp"));
                        assert!(c.get(key, &format!("req-{key}")).is_some());
                    }
                });
            }
        });
        assert_eq!(c.len(), 8 * 200);
    }
}
