//! The `hypdb-journal/v1` record: one JSONL line per served request.
//!
//! `hypdb-obs`'s [`Journal`](hypdb_obs::Journal) moves finished lines;
//! this module defines what a line *is*. The schema follows the
//! workspace's structural/timing split: every field before `planner`
//! is **structural** — a pure function of the request sequence and the
//! canonical request bytes, byte-identical at any worker count, thread
//! count, or shard layout — while the two trailing keys are not:
//! `planner` is work accounting whose scan-vs-marginalise split
//! depends on pool scheduling at `HYPDB_THREADS > 1` (exact and
//! reproducible only at one thread under sequential driving), and
//! `timing` holds everything wall-clock. Consumers (tests, replay
//! drift-diffing) call [`structural_view`] to strip that tail in one
//! step before comparing journals.
//!
//! Field reference (`schema` = [`SCHEMA`](hypdb_obs::journal::SCHEMA)):
//!
//! | field         | meaning                                                  |
//! |---------------|----------------------------------------------------------|
//! | `schema`      | `"hypdb-journal/v1"`                                     |
//! | `id` / `seq`  | request id (`req-<seq>`, also the response header)       |
//! | `method`/`path` | the HTTP request line                                  |
//! | `dataset`     | resolved dataset, `null` off the report lanes            |
//! | `fingerprint` | canonical-request FNV-1a (16 hex), `null` if unparsed    |
//! | `cache`       | `"hit"`/`"miss"` report-cache outcome, `null` otherwise  |
//! | `status`      | HTTP status served                                       |
//! | `body_fnv`    | FNV-1a of the exact response body (replay pass criterion)|
//! | `body_bytes`  | response body length                                     |
//! | `request`     | the canonical request JSON, embedded verbatim            |
//! | `spans`       | span paths + counts (structural half of the trace)       |
//! | `planner`     | per-request [`OracleStats`] delta, `null` on cache hits — scheduling-dependent |
//! | `timing`      | `offset_ms`, `queue_wait_ms`, `total_ms`, `spans_ms`     |
//!
//! `timing.spans_ms` is positionally aligned with `spans`; `offset_ms`
//! is milliseconds since the server started (replay's pacing clock).

use hypdb_core::OracleStats;
use hypdb_obs::journal::SCHEMA;
use hypdb_obs::TraceReport;
use std::fmt::Write as _;

/// Everything the middleware knows about one finished request; the
/// input to [`render_record`]. Borrowed views — rendering allocates
/// only the output line.
pub struct RequestRecord<'a> {
    /// Request sequence number (1-based, per server).
    pub seq: u64,
    /// HTTP method.
    pub method: &'a str,
    /// Request path.
    pub path: &'a str,
    /// Resolved dataset (report lanes with a known dataset only).
    pub dataset: Option<&'a str>,
    /// Canonical-request fingerprint, 16 hex digits.
    pub fingerprint: Option<&'a str>,
    /// The canonical request JSON (embedded verbatim as `request`).
    pub canonical: Option<&'a str>,
    /// Report-cache outcome: `Some(true)` hit, `Some(false)` miss.
    pub cache: Option<bool>,
    /// HTTP status served.
    pub status: u16,
    /// The exact response body (fingerprinted, not embedded).
    pub body: &'a str,
    /// Oracle/planner work attributable to this request.
    pub planner: Option<OracleStats>,
    /// The request's merged span tree, when a tracer ran.
    pub report: Option<&'a TraceReport>,
    /// Milliseconds since the server started (timing).
    pub offset_ms: f64,
    /// Admission-queue wait, milliseconds (timing).
    pub queue_wait_ms: f64,
    /// Total request wall time, milliseconds (timing).
    pub total_ms: f64,
}

/// [`push_json_str`] into a fresh string — for callers assembling
/// small JSON documents by hand (e.g. `/debug/config`).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// record fields are ASCII-ish identifiers, but a request path comes
/// off the wire and must never corrupt the line framing.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one `hypdb-journal/v1` line (no trailing newline — the
/// journal writer frames lines). Structural fields first, the `timing`
/// object strictly last.
pub fn render_record(r: &RequestRecord<'_>) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"id\":\"{}\",\"seq\":{},",
        hypdb_core::wire::request_id(r.seq),
        r.seq
    );
    out.push_str("\"method\":");
    push_json_str(&mut out, r.method);
    out.push_str(",\"path\":");
    push_json_str(&mut out, r.path);
    out.push_str(",\"dataset\":");
    match r.dataset {
        Some(d) => push_json_str(&mut out, d),
        None => out.push_str("null"),
    }
    out.push_str(",\"fingerprint\":");
    match r.fingerprint {
        Some(fp) => push_json_str(&mut out, fp),
        None => out.push_str("null"),
    }
    out.push_str(",\"cache\":");
    match r.cache {
        Some(true) => out.push_str("\"hit\""),
        Some(false) => out.push_str("\"miss\""),
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"status\":{},\"body_fnv\":\"{}\",\"body_bytes\":{}",
        r.status,
        hypdb_core::wire::body_fnv_hex(r.body),
        r.body.len()
    );
    out.push_str(",\"request\":");
    match r.canonical {
        // Canonical request JSON is itself JSON: embed verbatim.
        Some(c) => out.push_str(c),
        None => out.push_str("null"),
    }
    out.push_str(",\"spans\":[");
    let spans = r.report.map(|rep| rep.spans.as_slice()).unwrap_or(&[]);
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(&mut out, &span.path);
        let _ = write!(out, ",\"count\":{}}}", span.count);
    }
    // The non-structural tail: planner work accounting (its
    // scan-vs-marginalise split depends on pool scheduling at
    // HYPDB_THREADS > 1), then the timing object, strictly last.
    out.push_str("],\"planner\":");
    match &r.planner {
        Some(stats) => match serde_json::to_string(stats) {
            Ok(s) => out.push_str(&s),
            Err(_) => out.push_str("null"),
        },
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"timing\":{{\"offset_ms\":{:.3},\"queue_wait_ms\":{:.3},\"total_ms\":{:.3},\"spans_ms\":[",
        r.offset_ms, r.queue_wait_ms, r.total_ms
    );
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{:.3}", span.nanos as f64 / 1e6);
    }
    out.push_str("]}}");
    out
}

/// Strips the non-structural tail (the `planner` work accounting and
/// the `timing` object) from a rendered record line, leaving only the
/// structural fields — the form the byte-identity tests (and any
/// journal-diffing tool) compare across worker counts, thread counts,
/// and shard layouts.
pub fn structural_view(line: &str) -> &str {
    // `planner` opens the tail; `timing` is the fallback for lines
    // from before the tail existed (defensive, not a live schema).
    for tail in [",\"planner\":", ",\"timing\":{"] {
        if let Some(at) = line.rfind(tail) {
            return &line[..at];
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_obs::SpanReport;

    fn record<'a>(report: Option<&'a TraceReport>) -> RequestRecord<'a> {
        RequestRecord {
            seq: 3,
            method: "POST",
            path: "/analyze",
            dataset: Some("adult"),
            fingerprint: Some("00000000deadbeef"),
            canonical: Some("{\"dataset\":\"adult\",\"sql\":\"select 1\"}"),
            cache: Some(false),
            status: 200,
            body: "{\"ok\":true}",
            planner: Some(OracleStats {
                tests: 7,
                ..Default::default()
            }),
            report,
            offset_ms: 12.5,
            queue_wait_ms: 0.25,
            total_ms: 3.125,
        }
    }

    #[test]
    fn renders_schema_structural_fields_then_timing_last() {
        let report = TraceReport {
            spans: vec![SpanReport {
                path: "request/discovery".into(),
                count: 2,
                nanos: 1_500_000,
            }],
        };
        let line = render_record(&record(Some(&report)));
        assert!(
            line.starts_with("{\"schema\":\"hypdb-journal/v1\",\"id\":\"req-00000003\",\"seq\":3,")
        );
        assert!(line.contains("\"dataset\":\"adult\""));
        assert!(line.contains("\"cache\":\"miss\""));
        assert!(line.contains("\"request\":{\"dataset\":\"adult\",\"sql\":\"select 1\"}"));
        assert!(line.contains("\"spans\":[{\"path\":\"request/discovery\",\"count\":2}]"));
        // Tail order: spans (structural), then planner, then timing.
        let spans_at = line.find("\"spans\":").unwrap();
        let planner_at = line.find("\"planner\":").unwrap();
        let timing_at = line.find("\"timing\":").unwrap();
        assert!(spans_at < planner_at && planner_at < timing_at);
        assert!(line.ends_with("\"timing\":{\"offset_ms\":12.500,\"queue_wait_ms\":0.250,\"total_ms\":3.125,\"spans_ms\":[1.500]}}"));
        // body_fnv matches an independent recomputation over the bytes.
        let expect = hypdb_core::wire::body_fnv_hex("{\"ok\":true}");
        assert!(line.contains(&format!("\"body_fnv\":\"{expect}\"")));
        // The whole line parses as JSON and the planner delta survives.
        let v = serde_json::parse(&line).unwrap();
        assert_eq!(
            v.get("planner").and_then(|p| p.get("tests")),
            Some(&serde::Value::Int(7))
        );
    }

    #[test]
    fn structural_view_drops_exactly_the_planner_and_timing_tail() {
        let line = render_record(&record(None));
        let structural = structural_view(&line);
        assert!(!structural.contains("timing"));
        assert!(!structural.contains("planner"));
        assert!(structural.contains("\"spans\":["));
        // A second render with different timings and a different
        // planner delta has the identical structural view.
        let mut other = record(None);
        other.offset_ms = 9999.0;
        other.total_ms = 123.0;
        other.planner = Some(OracleStats {
            tests: 99,
            table_scans: 5,
            ..Default::default()
        });
        let line2 = render_record(&other);
        assert_ne!(line, line2);
        assert_eq!(structural, structural_view(&line2));
    }

    #[test]
    fn non_report_requests_render_nulls() {
        let r = RequestRecord {
            seq: 1,
            method: "GET",
            path: "/metrics",
            dataset: None,
            fingerprint: None,
            canonical: None,
            cache: None,
            status: 200,
            body: "x",
            planner: None,
            report: None,
            offset_ms: 0.0,
            queue_wait_ms: 0.0,
            total_ms: 0.0,
        };
        let line = render_record(&r);
        assert!(line.contains("\"dataset\":null"));
        assert!(line.contains("\"fingerprint\":null"));
        assert!(line.contains("\"cache\":null"));
        assert!(line.contains("\"request\":null"));
        assert!(line.contains("\"planner\":null"));
        assert!(line.contains("\"spans\":[]"));
        assert!(serde_json::parse(&line).is_ok());
    }

    #[test]
    fn hostile_paths_are_escaped() {
        let r = RequestRecord {
            path: "/we\"ird\\path\nx",
            ..record(None)
        };
        let line = render_record(&r);
        let v = serde_json::parse(&line).unwrap();
        assert_eq!(
            v.get("path").and_then(|p| p.as_str()),
            Some("/we\"ird\\path\nx")
        );
    }
}
