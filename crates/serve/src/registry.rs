//! The dataset registry: named, shared, immutable sharded tables.
//!
//! `ShardedTable` is the natural serving store — cheap to clone by
//! `Arc`, shard-parallel to scan, streaming to (re)load — so the
//! registry holds every dataset as an `Arc<ShardedTable>` built once at
//! startup and handed out to request workers without copying. Lookups
//! are lock-free reads of an immutable vector; reports are
//! byte-identical to the monolithic layout by the PR-3 storage
//! invariant, so the shard size (`HYPDB_SHARD_ROWS` or the store's
//! default) is a pure performance knob.

use hypdb_store::{env_shard_rows, ShardedTable, DEFAULT_SHARD_ROWS};
use hypdb_table::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A name → table map, immutable once the server starts.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Vec<(String, Arc<ShardedTable>)>,
}

/// One row of `GET /datasets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Registry key (the `dataset` field of a request).
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Attribute names, schema order.
    pub attrs: Vec<String>,
    /// Number of storage shards.
    pub shards: usize,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The ambient shard size: `HYPDB_SHARD_ROWS` when set (> 0),
    /// otherwise the store's default.
    pub fn shard_rows() -> usize {
        env_shard_rows().unwrap_or(DEFAULT_SHARD_ROWS)
    }

    /// Registers `table` under `name`, re-sharding a monolithic table
    /// at the ambient shard size. Last insert wins on duplicate names.
    pub fn insert(&mut self, name: impl Into<String>, table: &Table) -> &mut Self {
        self.insert_sharded(name, ShardedTable::from_table(table, Self::shard_rows()))
    }

    /// Registers an already-sharded table under `name`.
    pub fn insert_sharded(&mut self, name: impl Into<String>, table: ShardedTable) -> &mut Self {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Arc::new(table)));
        self
    }

    /// Looks a dataset up by name (cheap `Arc` clone).
    pub fn get(&self, name: &str) -> Option<Arc<ShardedTable>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| Arc::clone(t))
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `GET /datasets` listing, registration order.
    pub fn infos(&self) -> Vec<DatasetInfo> {
        self.entries
            .iter()
            .map(|(name, t)| DatasetInfo {
                name: name.clone(),
                rows: t.nrows(),
                attrs: t.schema().attrs().iter().map(|a| a.name.clone()).collect(),
                shards: t.n_shards(),
            })
            .collect()
    }

    /// Names of the built-in demo datasets ([`Registry::builtin`]).
    pub const BUILTIN_NAMES: &'static [&'static str] = &["cancer", "adult", "berkeley"];

    /// Generates one built-in dataset by name at roughly `rows` rows
    /// (`None` for unknown names). Generation is seeded, so every
    /// process builds the identical table — what makes `hypdb analyze`
    /// byte-equal to a `hypdb serve` instance it never talked to.
    pub fn builtin_dataset(name: &str, rows: usize) -> Option<Table> {
        match name {
            "cancer" => Some(hypdb_datasets::cancer_data(rows, 1)),
            "adult" => Some(hypdb_datasets::adult_data(&hypdb_datasets::AdultConfig {
                rows,
                seed: 1994,
            })),
            "berkeley" => Some(hypdb_datasets::berkeley_data()),
            _ => None,
        }
    }

    /// All built-in demo datasets — what `hypdb serve` loads when no
    /// CSVs are given, and what the bench/CI smoke tests hammer.
    pub fn builtin(rows: usize) -> Registry {
        let mut reg = Registry::new();
        for name in Self::BUILTIN_NAMES {
            reg.insert(
                *name,
                &Self::builtin_dataset(name, rows).expect("known builtin"),
            );
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::TableBuilder;

    fn tiny() -> Table {
        let mut b = TableBuilder::new(["T", "Y"]);
        b.push_row(["a", "0"]).unwrap();
        b.push_row(["b", "1"]).unwrap();
        b.finish()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.insert("tiny", &tiny());
        assert_eq!(reg.len(), 1);
        let t = reg.get("tiny").expect("registered");
        assert_eq!(t.nrows(), 2);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_last_wins() {
        let mut reg = Registry::new();
        reg.insert("d", &tiny());
        let mut b = TableBuilder::new(["T", "Y"]);
        b.push_row(["x", "9"]).unwrap();
        reg.insert("d", &b.finish());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("d").unwrap().nrows(), 1);
    }

    #[test]
    fn infos_describe_datasets() {
        let mut reg = Registry::new();
        reg.insert("tiny", &tiny());
        let infos = reg.infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "tiny");
        assert_eq!(infos[0].rows, 2);
        assert_eq!(infos[0].attrs, vec!["T", "Y"]);
        assert!(infos[0].shards >= 1);
        // The listing serializes (it backs `GET /datasets`).
        let json = serde_json::to_string(&infos).unwrap();
        let back: Vec<DatasetInfo> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, infos);
    }

    #[test]
    fn builtin_has_the_demo_datasets() {
        let reg = Registry::builtin(200);
        for name in ["cancer", "adult", "berkeley"] {
            assert!(reg.get(name).is_some(), "missing builtin `{name}`");
        }
    }
}
