//! The dataset registry: named, shared, immutable sharded tables —
//! plus the shared **oracle-cache slots** that let concurrent requests
//! against one `(dataset, WHERE selection)` pool their discovery work.
//!
//! `ShardedTable` is the natural serving store — cheap to clone by
//! `Arc`, shard-parallel to scan, streaming to (re)load — so the
//! registry holds every dataset as an `Arc<ShardedTable>` built once at
//! startup and handed out to request workers without copying. Lookups
//! are lock-free reads of an immutable vector; reports are
//! byte-identical to the monolithic layout by the PR-3 storage
//! invariant, so the shard size (`HYPDB_SHARD_ROWS` or the store's
//! default) is a pure performance knob.
//!
//! Oracle slots: every `/analyze`–`/detect` request resolves its WHERE
//! selection up front and asks the registry for the
//! [`OracleCache`](hypdb_core::OracleCache) keyed by `(dataset, exact
//! row set)`. In-flight and future requests over the same selection
//! share one cache, so their independence-statement batches hit one
//! another's contingency tables and entropies — the cross-request half
//! of the multi-query optimisation. Cache entries are pure functions of
//! the selected data (requests with different seeds, treatments, or
//! variable lists still share soundly), so sharing changes work, never
//! bytes.

use hypdb_core::{OracleCache, OracleStats};
use hypdb_store::{env_shard_rows, ShardedTable, DEFAULT_SHARD_ROWS};
use hypdb_table::{RowSet, Table};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// Upper bound on resident oracle-cache slots; beyond it the
/// least-recently-used slot (and its memoised tables) is dropped.
const MAX_ORACLE_SLOTS: usize = 64;

/// One shared oracle cache, bound to an exact `(dataset, selection)`.
struct OracleSlot {
    key: u64,
    /// The exact selection, compared on every probe: the 64-bit key is
    /// a hash and must never alias two different row sets into one
    /// cache (entries are pure functions of the *selection*).
    rows: RowSet,
    cache: Arc<OracleCache>,
    used: u64,
}

#[derive(Default)]
struct OracleSlots {
    slots: Vec<OracleSlot>,
    tick: u64,
    /// Counters of evicted slots, folded in at eviction time so the
    /// exported totals stay monotonic (a Prometheus counter that
    /// decreases reads as a reset and wrecks `rate()`).
    retired: OracleStats,
}

/// A name → table map, immutable once the server starts (the oracle
/// slots are interior-mutable and shared across clones).
#[derive(Clone, Default)]
pub struct Registry {
    entries: Vec<(String, Arc<ShardedTable>)>,
    oracles: Arc<Mutex<OracleSlots>>,
}

/// One row of `GET /datasets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Registry key (the `dataset` field of a request).
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Attribute names, schema order.
    pub attrs: Vec<String>,
    /// Number of storage shards.
    pub shards: usize,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The ambient shard size: `HYPDB_SHARD_ROWS` when set (> 0),
    /// otherwise the store's default.
    pub fn shard_rows() -> usize {
        env_shard_rows().unwrap_or(DEFAULT_SHARD_ROWS)
    }

    /// Registers `table` under `name`, re-sharding a monolithic table
    /// at the ambient shard size. Last insert wins on duplicate names.
    pub fn insert(&mut self, name: impl Into<String>, table: &Table) -> &mut Self {
        self.insert_sharded(name, ShardedTable::from_table(table, Self::shard_rows()))
    }

    /// Registers an already-sharded table under `name`.
    pub fn insert_sharded(&mut self, name: impl Into<String>, table: ShardedTable) -> &mut Self {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Arc::new(table)));
        self
    }

    /// Looks a dataset up by name (cheap `Arc` clone).
    pub fn get(&self, name: &str) -> Option<Arc<ShardedTable>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| Arc::clone(t))
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `GET /datasets` listing, registration order.
    pub fn infos(&self) -> Vec<DatasetInfo> {
        self.entries
            .iter()
            .map(|(name, t)| DatasetInfo {
                name: name.clone(),
                rows: t.nrows(),
                attrs: t.schema().attrs().iter().map(|a| a.name.clone()).collect(),
                shards: t.n_shards(),
            })
            .collect()
    }

    fn lock_oracles(&self) -> MutexGuard<'_, OracleSlots> {
        // Poisoning is ignored: slots hold pure cache state.
        self.oracles
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The shared [`OracleCache`] for one `(dataset, selection)` pair,
    /// created on first use. Concurrent requests that resolve to the
    /// same exact row set receive the same `Arc`, so their discovery
    /// phases coalesce statement batches and serve one another's
    /// contingency/entropy lookups. Slots are bounded: the
    /// least-recently-used one is evicted past [`MAX_ORACLE_SLOTS`].
    pub fn oracle_cache(&self, dataset: &str, rows: &RowSet) -> Arc<OracleCache> {
        let key = selection_fingerprint(dataset, rows);
        let mut inner = self.lock_oracles();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner
            .slots
            .iter_mut()
            .find(|s| s.key == key && s.rows == *rows)
        {
            slot.used = tick;
            return Arc::clone(&slot.cache);
        }
        let cache = Arc::new(OracleCache::new());
        inner.slots.push(OracleSlot {
            key,
            rows: rows.clone(),
            cache: Arc::clone(&cache),
            used: tick,
        });
        if inner.slots.len() > MAX_ORACLE_SLOTS {
            let victim = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.used)
                .map(|(i, _)| i);
            // `if let` instead of `expect`: an empty slot list (cannot
            // happen past the length guard) skips eviction rather than
            // panicking the request worker holding the lock.
            if let Some(victim) = victim {
                let evicted = inner.slots.swap_remove(victim);
                inner.retired = inner.retired.merge(&evicted.cache.stats());
            }
        }
        cache
    }

    /// Aggregated work counters: every resident oracle slot plus the
    /// retired totals of evicted ones — the `/metrics` export of
    /// [`OracleStats`] (scans, cache hits, marginalisations, entropies,
    /// and the batching counters), kept monotonic across slot eviction.
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle_snapshot().stats
    }

    /// Number of resident oracle-cache slots.
    pub fn oracle_slots(&self) -> usize {
        self.lock_oracles().slots.len()
    }

    /// Work counters *and* resident bytes from one pass under one lock
    /// — the snapshot `/metrics` and the CLI footer both render, so the
    /// two surfaces can never disagree (the old pair of
    /// [`Self::oracle_stats`]/[`Self::oracle_cache_bytes`] calls took
    /// the lock twice, and a request landing between them skewed bytes
    /// against counters).
    pub fn oracle_snapshot(&self) -> crate::metrics::OracleSnapshot {
        let inner = self.lock_oracles();
        crate::metrics::OracleSnapshot {
            stats: inner
                .slots
                .iter()
                .fold(inner.retired, |acc, s| acc.merge(&s.cache.stats())),
            cache_bytes: inner.slots.iter().map(|s| s.cache.cache_bytes()).sum(),
        }
    }

    /// Bytes pinned by contingency tables across every *resident*
    /// oracle slot — a gauge, not a counter: evicting a slot releases
    /// its tables, so the value falls with them (unlike the work
    /// counters, which fold into `retired` to stay monotonic).
    pub fn oracle_cache_bytes(&self) -> u64 {
        self.oracle_snapshot().cache_bytes
    }

    /// Names of the built-in demo datasets ([`Registry::builtin`]).
    pub const BUILTIN_NAMES: &'static [&'static str] = &["cancer", "adult", "berkeley"];

    /// Generates one built-in dataset by name at roughly `rows` rows
    /// (`None` for unknown names). Generation is seeded, so every
    /// process builds the identical table — what makes `hypdb analyze`
    /// byte-equal to a `hypdb serve` instance it never talked to.
    pub fn builtin_dataset(name: &str, rows: usize) -> Option<Table> {
        match name {
            "cancer" => Some(hypdb_datasets::cancer_data(rows, 1)),
            "adult" => Some(hypdb_datasets::adult_data(&hypdb_datasets::AdultConfig {
                rows,
                seed: 1994,
            })),
            "berkeley" => Some(hypdb_datasets::berkeley_data()),
            _ => None,
        }
    }

    /// All built-in demo datasets — what `hypdb serve` loads when no
    /// CSVs are given, and what the bench/CI smoke tests hammer.
    pub fn builtin(rows: usize) -> Registry {
        let mut reg = Registry::new();
        for name in Self::BUILTIN_NAMES {
            reg.insert(
                *name,
                // lint:allow(unwrap-in-request-path) — startup-only loading of BUILTIN_NAMES, every name is matched by builtin_dataset; no request is being served yet
                &Self::builtin_dataset(name, rows).expect("known builtin"),
            );
        }
        reg
    }
}

/// A stable 64-bit fingerprint of one `(dataset, exact selection)` —
/// the wire layer's FNV-1a over the name, folded with the row count
/// and every selected row id via the seed mixer. Probes still compare
/// the full row set (see [`OracleSlot::rows`]); the hash only routes.
fn selection_fingerprint(dataset: &str, rows: &RowSet) -> u64 {
    let mut h = hypdb_core::wire::fnv1a64(dataset.as_bytes());
    h = hypdb_exec::seed::mix(h, rows.len() as u64);
    for row in rows.iter() {
        h = hypdb_exec::seed::mix(h, u64::from(row));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::TableBuilder;

    fn tiny() -> Table {
        let mut b = TableBuilder::new(["T", "Y"]);
        b.push_row(["a", "0"]).unwrap();
        b.push_row(["b", "1"]).unwrap();
        b.finish()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.insert("tiny", &tiny());
        assert_eq!(reg.len(), 1);
        let t = reg.get("tiny").expect("registered");
        assert_eq!(t.nrows(), 2);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_last_wins() {
        let mut reg = Registry::new();
        reg.insert("d", &tiny());
        let mut b = TableBuilder::new(["T", "Y"]);
        b.push_row(["x", "9"]).unwrap();
        reg.insert("d", &b.finish());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("d").unwrap().nrows(), 1);
    }

    #[test]
    fn infos_describe_datasets() {
        let mut reg = Registry::new();
        reg.insert("tiny", &tiny());
        let infos = reg.infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "tiny");
        assert_eq!(infos[0].rows, 2);
        assert_eq!(infos[0].attrs, vec!["T", "Y"]);
        assert!(infos[0].shards >= 1);
        // The listing serializes (it backs `GET /datasets`).
        let json = serde_json::to_string(&infos).unwrap();
        let back: Vec<DatasetInfo> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, infos);
    }

    #[test]
    fn oracle_slots_are_shared_per_selection() {
        let mut reg = Registry::new();
        reg.insert("tiny", &tiny());
        let all = RowSet::All(2);
        let a = reg.oracle_cache("tiny", &all);
        let b = reg.oracle_cache("tiny", &all);
        assert!(Arc::ptr_eq(&a, &b), "same selection shares one cache");
        assert_eq!(reg.oracle_slots(), 1);
        // A different selection (or dataset) gets its own slot.
        let sub = RowSet::Ids(vec![0]);
        let c = reg.oracle_cache("tiny", &sub);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = reg.oracle_cache("other", &all);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(reg.oracle_slots(), 3);
        // Clones of the registry (the server shares it across workers)
        // see the same slots.
        let clone = reg.clone();
        assert!(Arc::ptr_eq(&a, &clone.oracle_cache("tiny", &all)));
        assert_eq!(clone.oracle_slots(), 3);
    }

    #[test]
    fn oracle_slots_are_bounded() {
        let reg = Registry::new();
        for i in 0..(MAX_ORACLE_SLOTS + 10) {
            reg.oracle_cache("d", &RowSet::Ids(vec![i as u32]));
        }
        assert_eq!(reg.oracle_slots(), MAX_ORACLE_SLOTS);
    }

    #[test]
    fn oracle_stats_aggregate_slots() {
        let reg = Registry::new();
        let rows = RowSet::All(4);
        let cache = reg.oracle_cache("d", &rows);
        assert_eq!(reg.oracle_stats(), OracleStats::default());
        // Counters accumulated through the shared cache surface in the
        // aggregate (reset via the cache handle works too).
        cache.reset_stats();
        assert_eq!(reg.oracle_stats().tests, 0);
    }

    #[test]
    fn oracle_cache_bytes_track_resident_slots() {
        let reg = Registry::new();
        assert_eq!(reg.oracle_cache_bytes(), 0);
        // Fresh slots hold no tables yet; the gauge stays zero until an
        // analysis materialises contingency tables through the cache
        // (exercised end-to-end by the server integration tests).
        reg.oracle_cache("d", &RowSet::All(4));
        assert_eq!(reg.oracle_cache_bytes(), 0);
    }

    #[test]
    fn builtin_has_the_demo_datasets() {
        let reg = Registry::builtin(200);
        for name in ["cancer", "adult", "berkeley"] {
            assert!(reg.get(name).is_some(), "missing builtin `{name}`");
        }
    }
}
