//! Record-and-replay: re-issue a captured `hypdb-journal/v1` journal
//! and verify byte-identical response bodies.
//!
//! The flight recorder's journal is a complete, replayable description
//! of served traffic: each report-lane record carries the canonical
//! request JSON and the FNV-1a fingerprint of the exact response body.
//! Because a report is a pure function of (dataset, base config,
//! canonical request bytes), replaying the same requests against the
//! same datasets must reproduce the same bytes — so replay doubles as
//! an end-to-end determinism check *and* a realistic load harness
//! (`hypdb replay`, the `replay_load` bench).
//!
//! Pass criterion: `fnv1a64(received body) == recorded body_fnv` for
//! every replayed record. Status drift also counts as a mismatch.
//! Records without an embedded request (GET endpoints, unparsable
//! submissions) are skipped and counted.

use crate::client;
use hypdb_obs::Tick;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One replayable journal record: the request to re-issue and the
/// recorded outcome to diff against.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayItem {
    /// Journal sequence number (for mismatch reporting).
    pub seq: u64,
    /// Request path (`/analyze` or `/detect`).
    pub path: String,
    /// The canonical request JSON to POST.
    pub request: String,
    /// Recorded HTTP status.
    pub status: u16,
    /// Recorded body fingerprint (16 hex digits).
    pub body_fnv: String,
    /// Recorded milliseconds since server start (the pacing clock).
    pub offset_ms: f64,
}

/// Journal parse summary: the replayable items plus how many lines
/// were skipped (non-POST records, records without a request).
#[derive(Debug, Default)]
pub struct ParsedJournal {
    /// Replayable records, journal order.
    pub items: Vec<ReplayItem>,
    /// Total lines seen (including skipped and malformed).
    pub lines: usize,
    /// Lines without a replayable request.
    pub skipped: usize,
}

/// Parses journal JSONL text into replayable items. Malformed lines
/// are counted as skipped, never fatal — a journal truncated by a
/// crash is still mostly replayable.
pub fn parse_journal(text: &str) -> ParsedJournal {
    let mut out = ParsedJournal::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        out.lines += 1;
        let Ok(v) = serde_json::parse(line) else {
            out.skipped += 1;
            continue;
        };
        let path = v.get("path").and_then(|p| p.as_str()).unwrap_or_default();
        let method = v.get("method").and_then(|m| m.as_str()).unwrap_or_default();
        let request = v.get("request").filter(|r| r.as_obj().is_some());
        let (Some(request), "POST") = (request, method) else {
            out.skipped += 1;
            continue;
        };
        let Ok(canonical) = serde_json::to_string(request) else {
            out.skipped += 1;
            continue;
        };
        let seq = match v.get("seq") {
            Some(&serde::Value::Int(i)) if i >= 0 => i as u64,
            Some(&serde::Value::UInt(u)) => u,
            _ => 0,
        };
        let status = match v.get("status") {
            Some(&serde::Value::Int(i)) if (0..=u16::MAX as i64).contains(&i) => i as u16,
            _ => 0,
        };
        let body_fnv = v
            .get("body_fnv")
            .and_then(|b| b.as_str())
            .unwrap_or_default()
            .to_string();
        let offset_ms = match v.get("timing").and_then(|t| t.get("offset_ms")) {
            Some(&serde::Value::Float(f)) => f,
            Some(&serde::Value::Int(i)) => i as f64,
            _ => 0.0,
        };
        out.items.push(ReplayItem {
            seq,
            path: path.to_string(),
            request: canonical,
            status,
            body_fnv,
            offset_ms,
        });
    }
    out
}

/// How fast to re-issue recorded traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pace {
    /// As fast as the concurrency allows (the load-harness mode).
    MaxRate,
    /// Follow the recorded `offset_ms` spacing scaled by this factor
    /// (`2.0` = twice as fast as recorded).
    Speed(f64),
}

/// One body mismatch: the record and what came back instead.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The journal record's sequence number.
    pub seq: u64,
    /// Request path.
    pub path: String,
    /// Recorded status → replayed status.
    pub status: (u16, u16),
    /// Recorded body fingerprint → replayed body fingerprint.
    pub body_fnv: (String, String),
}

/// Replay outcome: totals, mismatches, and latency/throughput figures.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Journal lines seen.
    pub lines: usize,
    /// Records skipped (not replayable).
    pub skipped: usize,
    /// Requests re-issued.
    pub replayed: usize,
    /// Requests whose transport failed (no response to compare).
    pub errors: usize,
    /// Body/status mismatches, journal order.
    pub mismatches: Vec<Mismatch>,
    /// Wall-clock seconds for the whole replay.
    pub wall_seconds: f64,
    /// Replayed requests per wall-clock second.
    pub requests_per_second: f64,
    /// Per-request latency percentiles, seconds: (p50, p90, p99, max).
    pub latency: (f64, f64, f64, f64),
}

impl ReplayOutcome {
    /// True when every replayed record reproduced its recorded bytes.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.errors == 0
    }

    /// The CLI/bench JSON summary.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"lines\":{},\"skipped\":{},\"replayed\":{},\"errors\":{},\"mismatches\":{},\
             \"passed\":{},\"wall_seconds\":{:.6},\"requests_per_second\":{:.1},\
             \"latency_seconds\":{{\"p50\":{:.6},\"p90\":{:.6},\"p99\":{:.6},\"max\":{:.6}}},\
             \"mismatch_detail\":[",
            self.lines,
            self.skipped,
            self.replayed,
            self.errors,
            self.mismatches.len(),
            self.passed(),
            self.wall_seconds,
            self.requests_per_second,
            self.latency.0,
            self.latency.1,
            self.latency.2,
            self.latency.3,
        );
        for (i, m) in self.mismatches.iter().take(16).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"path\":{:?},\"recorded_status\":{},\"replayed_status\":{},\
                 \"recorded_fnv\":{:?},\"replayed_fnv\":{:?}}}",
                m.seq, m.path, m.status.0, m.status.1, m.body_fnv.0, m.body_fnv.1
            );
        }
        out.push_str("]}");
        out
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays parsed journal items against a live server at `addr` with
/// `concurrency` client threads. Items are taken in journal order;
/// under [`Pace::Speed`] each item waits for its scaled recorded
/// offset before being issued (offsets are rebased to the first
/// replayable item).
pub fn replay(
    addr: SocketAddr,
    parsed: &ParsedJournal,
    concurrency: usize,
    pace: Pace,
) -> ReplayOutcome {
    let concurrency = concurrency.max(1);
    let base_offset = parsed.items.first().map(|i| i.offset_ms).unwrap_or(0.0);
    let next = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let mismatches: Mutex<Vec<Mismatch>> = Mutex::new(Vec::new());
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let start = Tick::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut local_lat = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = parsed.items.get(i) else {
                        break;
                    };
                    if let Pace::Speed(speed) = pace {
                        // The item is due at its recorded offset (rebased
                        // to the first item) scaled by the speed factor.
                        let due_ms = (item.offset_ms - base_offset) / speed.max(1e-9);
                        let due = std::time::Duration::from_secs_f64((due_ms / 1e3).max(0.0));
                        let elapsed = start.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                    }
                    let t = Tick::now();
                    match client::post_json(addr, &item.path, &item.request) {
                        Ok(resp) => {
                            local_lat.push(t.elapsed_secs());
                            let got_fnv = hypdb_core::wire::body_fnv_hex(&resp.body);
                            if resp.status != item.status || got_fnv != item.body_fnv {
                                let mut guard = mismatches
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                guard.push(Mismatch {
                                    seq: item.seq,
                                    path: item.path.clone(),
                                    status: (item.status, resp.status),
                                    body_fnv: (item.body_fnv.clone(), got_fnv),
                                });
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend(local_lat);
            });
        }
    });
    let wall_seconds = start.elapsed_secs();
    let mut lat = latencies.into_inner().unwrap_or_else(|p| p.into_inner());
    lat.sort_by(|a, b| a.total_cmp(b));
    let mut out = ReplayOutcome {
        lines: parsed.lines,
        skipped: parsed.skipped,
        replayed: lat.len(),
        errors: errors.load(Ordering::Relaxed) as usize,
        mismatches: mismatches.into_inner().unwrap_or_else(|p| p.into_inner()),
        wall_seconds,
        requests_per_second: if wall_seconds > 0.0 {
            lat.len() as f64 / wall_seconds
        } else {
            0.0
        },
        latency: (
            percentile(&lat, 0.50),
            percentile(&lat, 0.90),
            percentile(&lat, 0.99),
            lat.last().copied().unwrap_or(0.0),
        ),
    };
    out.mismatches.sort_by_key(|m| m.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, path: &str, fnv: &str, offset: f64) -> String {
        format!(
            "{{\"schema\":\"hypdb-journal/v1\",\"id\":\"req-{seq:08}\",\"seq\":{seq},\
             \"method\":\"POST\",\"path\":\"{path}\",\"dataset\":\"cancer\",\
             \"fingerprint\":\"abc\",\"cache\":\"miss\",\"status\":200,\
             \"body_fnv\":\"{fnv}\",\"body_bytes\":2,\
             \"request\":{{\"dataset\":\"cancer\",\"sql\":\"q\"}},\"planner\":null,\
             \"spans\":[],\"timing\":{{\"offset_ms\":{offset},\"queue_wait_ms\":0.0,\
             \"total_ms\":1.0,\"spans_ms\":[]}}}}"
        )
    }

    #[test]
    fn parse_extracts_replayable_records_and_skips_the_rest() {
        let text = format!(
            "{}\n{}\nnot json\n{}\n",
            line(1, "/analyze", "aa", 0.0),
            // A GET /metrics record: no request to replay.
            "{\"schema\":\"hypdb-journal/v1\",\"seq\":2,\"method\":\"GET\",\
             \"path\":\"/metrics\",\"request\":null,\"status\":200,\"body_fnv\":\"x\"}",
            line(3, "/detect", "bb", 12.5),
        );
        let parsed = parse_journal(&text);
        assert_eq!(parsed.lines, 4);
        assert_eq!(parsed.skipped, 2);
        assert_eq!(parsed.items.len(), 2);
        assert_eq!(parsed.items[0].seq, 1);
        assert_eq!(parsed.items[0].path, "/analyze");
        assert_eq!(
            parsed.items[0].request,
            "{\"dataset\":\"cancer\",\"sql\":\"q\"}"
        );
        assert_eq!(parsed.items[1].body_fnv, "bb");
        assert!((parsed.items[1].offset_ms - 12.5).abs() < 1e-9);
    }

    #[test]
    fn outcome_json_reports_pass_and_mismatches() {
        let mut out = ReplayOutcome {
            lines: 3,
            replayed: 2,
            wall_seconds: 0.5,
            requests_per_second: 4.0,
            ..Default::default()
        };
        assert!(out.passed());
        assert!(out.to_json().contains("\"passed\":true"));
        out.mismatches.push(Mismatch {
            seq: 7,
            path: "/analyze".into(),
            status: (200, 200),
            body_fnv: ("aa".into(), "bb".into()),
        });
        assert!(!out.passed());
        let json = out.to_json();
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("\"recorded_fnv\":\"aa\""));
        assert!(serde_json::parse(&json).is_ok());
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let lat = [0.001, 0.002, 0.003, 0.004, 0.100];
        assert_eq!(percentile(&lat, 0.50), 0.003);
        assert_eq!(percentile(&lat, 0.99), 0.100);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
